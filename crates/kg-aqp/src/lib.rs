//! # kg-aqp — approximate aggregate queries on knowledge graphs
//!
//! The paper's primary contribution (Algorithm 2): an online
//! "sampling–estimation" engine that answers aggregate queries
//! (COUNT / SUM / AVG, best-effort MAX / MIN) over a knowledge graph with an
//! accuracy guarantee, without evaluating the underlying factoid query.
//!
//! The engine composes the substrates of this workspace:
//!
//! * `kg-sampling` — semantic-aware random walk and continuous sampling (S1),
//! * `kg-estimate` — correctness validation and Horvitz–Thompson estimation
//!   (S2) plus CLT/BLB confidence intervals and Eq. 12 refinement (S3),
//! * `kg-query` — query model, filters, GROUP-BY and complex shapes.
//!
//! ```
//! use kg_aqp::{AqpEngine, EngineConfig};
//! use kg_datagen::{generate, DatasetScale, GeneratorConfig, domains};
//! use kg_query::{AggregateFunction, AggregateQuery, SimpleQuery};
//!
//! let dataset = generate(&GeneratorConfig::new(
//!     "demo", DatasetScale::tiny(), vec![domains::automotive(&["Germany", "China"])], 7));
//! let engine = AqpEngine::new(EngineConfig::default());
//! let query = AggregateQuery::simple(
//!     SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
//!     AggregateFunction::Count);
//! let answer = engine.execute(&dataset.graph, &query, &dataset.oracle).unwrap();
//! assert!(answer.estimate > 0.0);
//! assert!(answer.moe >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod engine;
pub mod remote;
pub mod result;
pub mod session;
pub mod sharded;
pub mod wire;

pub use batch::{latency_percentile, BatchEngine, BatchStats};
pub use config::EngineConfig;
pub use engine::AqpEngine;
pub use remote::{
    config_fingerprint, graph_fingerprint, FaultAction, FaultPlan, FleetPolicy, InProcessTransport,
    RemoteMetrics, RemoteMetricsSnapshot, ShardCallError, ShardFleet, ShardServerCore,
    ShardTransport, TcpTransport, TransportError,
};
pub use result::{QueryAnswer, RoundTrace, StepTimings};
pub use session::{InteractiveSession, RoundOutcome};
pub use sharded::{ShardedSession, ShardedStats};

/// Convenience re-exports for downstream users of the public API.
pub mod prelude {
    pub use crate::{
        AqpEngine, BatchEngine, BatchStats, EngineConfig, InteractiveSession, QueryAnswer,
    };
    pub use kg_core::{GraphBuilder, KnowledgeGraph};
    pub use kg_embed::{
        EmbeddingModelKind, PredicateSimilarity, PredicateVectorStore, TrainerConfig,
    };
    pub use kg_query::{
        AggregateFunction, AggregateQuery, ChainHop, ChainQuery, ComplexQuery, Filter, GroupBy,
        QueryShape, SimpleQuery,
    };
    pub use kg_sampling::SamplingStrategy;
}
