//! The shard-server execution core: deterministic, stateless-replayable
//! stratum advancement.
//!
//! A shard server loads the **same** graph as the coordinator, partitions it
//! identically (the partitioners are deterministic), and plans each query
//! with its own engine — planning is deterministic, so the server's
//! per-shard answer distribution, alias table and RNG seed are
//! bit-identical to what the in-process [`crate::ShardedSession`] builds.
//!
//! The protocol is *replay-based*: every [`ShardRequest::Step`] carries the
//! full history of per-round draw counts plus the number of completed
//! rounds, so any replica — warm or cold — can reconstruct the exact
//! stratum state. A warm server applies only the incremental tail; a cold
//! one replays from scratch, burning the identical RNG stream (draws via
//! the alias table, bootstrap index draws via dummy discarded estimates —
//! [`StratumEstimate::compute`] consumes RNG as a function of sample length
//! and replicate count only). Responses are therefore pure functions of
//! requests: retries, hedges and failovers all observe identical bytes.

use crate::config::EngineConfig;
use crate::engine::{AqpEngine, ComponentValidator, QueryPlan};
use crate::remote::protocol::{ShardRequest, ShardResponse};
use crate::session::{validate_entity, validation_config};
use crate::sharded::{validated_sample, Stratum};
use kg_core::{Codec, ShardedGraph};
use kg_embed::PredicateSimilarity;
use kg_estimate::{stratum_point_terms, StratumEstimate, ValidatedAnswer};
use kg_query::AggregateQuery;
use kg_sampling::ShardSamplerCache;
use kg_sampling::{BucketTerm, SamplerCache, ShardSampler, StratumReport, StratumTask};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// FNV-1a over a sequence of u64 words (little-endian byte order).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Digest of the graph + partitioning a process executes against. Two
/// processes with equal fingerprints built the same shards from the same
/// graph, so their per-shard plans and RNG streams line up.
///
/// Deliberately **content-based** — global and per-shard sizes plus the
/// partitioner's name (partitioners are deterministic, so equal inputs and
/// algorithm imply an equal assignment). The process-local
/// [`ShardedGraph::partition_id`] must NOT be hashed here: it is an
/// in-process cache-identity counter, so independently partitioned copies
/// of the same graph — the normal coordinator/shard deployment — would
/// never match.
pub fn graph_fingerprint(sharded: &ShardedGraph) -> u64 {
    let mut words = vec![
        sharded.global().entity_count() as u64,
        sharded.global().edge_count() as u64,
        sharded.shard_count() as u64,
    ];
    words.extend(
        sharded
            .partitioner()
            .as_bytes()
            .iter()
            .map(|&b| u64::from(b)),
    );
    for shard in sharded.shards() {
        words.push(shard.owned_count() as u64);
        words.push(shard.edge_count() as u64);
    }
    fnv1a(words)
}

/// Digest of every [`EngineConfig`] field that influences planning,
/// sampling, validation or estimation — a coordinator refuses to use a
/// shard server whose config fingerprint differs.
pub fn config_fingerprint(config: &EngineConfig) -> u64 {
    let (strategy_tag, strategy_p, strategy_q) = match config.strategy {
        kg_sampling::SamplingStrategy::SemanticAware => (0u64, 0, 0),
        kg_sampling::SamplingStrategy::Cnarw => (1, 0, 0),
        kg_sampling::SamplingStrategy::Node2Vec { p, q } => (2, p.to_bits(), q.to_bits()),
        kg_sampling::SamplingStrategy::Uniform => (3, 0, 0),
    };
    fnv1a([
        config.tau.to_bits(),
        config.error_bound.to_bits(),
        config.n_bound as u64,
        config.repeat_factor as u64,
        config.desired_sample_ratio.to_bits(),
        strategy_tag,
        strategy_p,
        strategy_q,
        config.bootstrap.resamples as u64,
        config.bootstrap.blb_subsamples as u64,
        config.bootstrap.blb_exponent.to_bits(),
        config.max_rounds as u64,
        config.max_sample_size as u64,
        config.validate as u64,
        config.fixed_increment.map(|v| v as u64 + 1).unwrap_or(0),
        config.aggregation as u64,
        config.chain_anchor_limit as u64,
        config.seed,
    ])
}

/// Session table keyed by `(query_key, shard)`; each entry is shared so a
/// retried request can re-serve the cached response without holding the map.
type SessionTable = Mutex<HashMap<(String, usize), Arc<Mutex<SessionState>>>>;

/// One cached stratum session: the replayable state plus the last response
/// for idempotent re-serving of duplicate (retried / hedged) requests.
struct SessionState {
    plan: Arc<QueryPlan>,
    stratum: Stratum,
    /// Draw counts applied so far, in order.
    applied: Vec<u64>,
    /// Validate+estimate rounds completed so far (including discarded
    /// replay rounds).
    steps: usize,
    /// `(is_snapshot, task)` of the last request served, with its response.
    last: Option<(bool, StratumTask, ShardResponse)>,
}

impl SessionState {
    /// Whether the cached state lies on the replay trajectory of a request
    /// targeting `(draws, replay_steps)` — i.e. the state an interleaved
    /// draw/estimate replay passes through. A state that is *ahead* of the
    /// target (e.g. the coordinator skipped a round this server completed,
    /// after a lost response) is off-trajectory and forces a cold rebuild.
    fn on_trajectory(&self, draws: &[u64], replay_steps: usize) -> bool {
        let d = self.applied.len();
        if d > draws.len() || self.applied[..] != draws[..d] {
            return false;
        }
        if self.steps < replay_steps {
            d == self.steps || d == self.steps + 1
        } else {
            self.steps == replay_steps && d >= self.steps
        }
    }
}

/// The in-process execution core of a shard server: everything `kg-shard`
/// does except listening on a socket. Tests and the fault-injection
/// transport drive it directly.
pub struct ShardServerCore {
    engine: AqpEngine,
    sharded: Arc<ShardedGraph>,
    similarity: Arc<dyn PredicateSimilarity + Send + Sync>,
    sampler_cache: SamplerCache,
    shard_cache: ShardSamplerCache,
    plans: Mutex<HashMap<String, Arc<QueryPlan>>>,
    sessions: SessionTable,
    graph_fp: u64,
    config_fp: u64,
}

impl ShardServerCore {
    /// Builds a core over an already-partitioned graph. `config` must match
    /// the coordinator's (enforced by the handshake fingerprint).
    pub fn new(
        config: EngineConfig,
        sharded: Arc<ShardedGraph>,
        similarity: Arc<dyn PredicateSimilarity + Send + Sync>,
    ) -> Self {
        let graph_fp = graph_fingerprint(&sharded);
        let config_fp = config_fingerprint(&config);
        let sampler_cache = SamplerCache::new(config.strategy, config.sampler_config());
        Self {
            engine: AqpEngine::new(config),
            sharded,
            similarity,
            sampler_cache,
            shard_cache: ShardSamplerCache::new(),
            plans: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            graph_fp,
            config_fp,
        }
    }

    /// The server's graph + partitioning fingerprint.
    pub fn graph_fp(&self) -> u64 {
        self.graph_fp
    }

    /// The server's engine-config fingerprint.
    pub fn config_fp(&self) -> u64 {
        self.config_fp
    }

    /// Serves one framed request payload, answering in the same codec.
    /// Never panics on malformed input: decode failures come back as
    /// [`ShardResponse::Error`].
    pub fn serve(&self, codec: Codec, payload: &[u8]) -> Vec<u8> {
        let response = match ShardRequest::decode(codec, payload) {
            Err(message) => ShardResponse::Error {
                code: "bad_request".to_string(),
                message,
            },
            Ok(request) => self.handle(request),
        };
        response.encode(codec)
    }

    /// Serves one already-decoded request.
    pub fn handle(&self, request: ShardRequest) -> ShardResponse {
        match request {
            ShardRequest::Ping {
                graph_fp,
                config_fp,
            } => {
                if graph_fp != self.graph_fp || config_fp != self.config_fp {
                    ShardResponse::Error {
                        code: "mismatch".to_string(),
                        message: format!(
                            "fingerprint mismatch: peer graph={graph_fp:#x} config={config_fp:#x}, \
                             local graph={:#x} config={:#x}",
                            self.graph_fp, self.config_fp
                        ),
                    }
                } else {
                    ShardResponse::Pong {
                        graph_fp: self.graph_fp,
                        config_fp: self.config_fp,
                        shards: self.sharded.shard_count(),
                    }
                }
            }
            ShardRequest::Step { query, task } => self
                .step(&query, &task)
                .unwrap_or_else(|(code, message)| ShardResponse::Error { code, message }),
            ShardRequest::Snapshot { query, task } => self
                .snapshot(&query, &task)
                .unwrap_or_else(|(code, message)| ShardResponse::Error { code, message }),
        }
    }

    /// Plans `query_text` (cached by its canonical text — the coordinator
    /// always sends the canonical encoding).
    fn plan_for(&self, query_text: &str) -> Result<Arc<QueryPlan>, (String, String)> {
        if let Some(plan) = self.plans.lock().unwrap().get(query_text) {
            return Ok(Arc::clone(plan));
        }
        let value: serde_json::Value = serde_json::from_str(query_text)
            .map_err(|e| ("bad_query".to_string(), e.to_string()))?;
        let query = AggregateQuery::from_json(&value)
            .map_err(|e| ("bad_query".to_string(), e.to_string()))?;
        let plan = self
            .engine
            .plan_with_cache(
                self.sharded.global(),
                &query,
                self.similarity.as_ref(),
                Some(&self.sampler_cache),
            )
            .map_err(|e| ("plan_failed".to_string(), e.to_string()))?;
        let plan = Arc::new(plan);
        self.plans
            .lock()
            .unwrap()
            .insert(query_text.to_string(), Arc::clone(&plan));
        Ok(plan)
    }

    fn session(
        &self,
        query_text: &str,
        task: &StratumTask,
    ) -> Result<Arc<Mutex<SessionState>>, (String, String)> {
        if task.shard >= self.sharded.shard_count() {
            return Err((
                "bad_task".to_string(),
                format!(
                    "shard {} out of range (K = {})",
                    task.shard,
                    self.sharded.shard_count()
                ),
            ));
        }
        let plan = self.plan_for(query_text)?;
        let mut sessions = self.sessions.lock().unwrap();
        let key = (query_text.to_string(), task.shard);
        if let Some(state) = sessions.get(&key) {
            return Ok(Arc::clone(state));
        }
        let state = Arc::new(Mutex::new(self.fresh_state(plan, task.shard)));
        sessions.insert(key, Arc::clone(&state));
        Ok(state)
    }

    fn fresh_state(&self, plan: Arc<QueryPlan>, shard: usize) -> SessionState {
        let sharded = &self.sharded;
        let owned = |e| sharded.shard_of(e) == shard;
        // Same single-simple-component memoisation as the coordinator: the
        // distribution (hence the stratum sampler) is a pure function of
        // the prepared component sampler.
        let component_key = match plan.components.as_slice() {
            [single] => match &single.validator {
                ComponentValidator::Simple { sampler, .. } => Some(Arc::as_ptr(sampler) as usize),
                ComponentValidator::Chain { .. } => None,
            },
            _ => None,
        };
        let sampler = match component_key {
            Some(key) => {
                self.shard_cache
                    .get_or_insert_with(key, sharded.partition_id(), shard, || {
                        ShardSampler::from_distribution(shard, &plan.distribution, owned)
                    })
            }
            None => Arc::new(ShardSampler::from_distribution(
                shard,
                &plan.distribution,
                owned,
            )),
        };
        SessionState {
            stratum: Stratum::new(shard, sampler, self.engine.config().seed),
            plan,
            applied: Vec::new(),
            steps: 0,
            last: None,
        }
    }

    /// Advances `state` along the replay trajectory to `(draws,
    /// replay_steps)`: interleaved draw/estimate rounds up to
    /// `replay_steps` (estimates discarded — they exist to burn the
    /// identical RNG stream), then any trailing draws. Rebuilds from
    /// scratch first if the cached state is off-trajectory.
    fn advance(&self, state: &mut SessionState, task: &StratumTask) {
        let replay_steps = task.steps;
        if !state.on_trajectory(&task.draws, replay_steps) {
            *state = self.fresh_state(Arc::clone(&state.plan), task.shard);
        }
        let resamples = task.resamples.max(2);
        while state.steps < replay_steps {
            if state.applied.len() == state.steps {
                Self::apply_draw(state, task.draws[state.applied.len()]);
            }
            // Discarded estimate: RNG consumption depends only on the
            // sample length and replicate count, so a dummy sample of the
            // right length reproduces the stream without validation work.
            let n = state.stratum.sample.len();
            let dummy = vec![
                ValidatedAnswer {
                    probability: 1.0,
                    value: None,
                    correct: false,
                    similarity: 0.0,
                };
                n
            ];
            let _ = StratumEstimate::compute(
                &state.plan.aggregate,
                &dummy,
                resamples,
                &mut state.stratum.rng,
            );
            state.steps += 1;
        }
        while state.applied.len() < task.draws.len() {
            Self::apply_draw(state, task.draws[state.applied.len()]);
        }
    }

    fn apply_draw(state: &mut SessionState, count: u64) {
        if count > 0 {
            let drawn = state
                .stratum
                .sampler
                .draw(&mut state.stratum.rng, count as usize);
            state
                .stratum
                .sample
                .extend(drawn.iter().map(|a| (a.entity, a.probability)));
        }
        state.applied.push(count);
    }

    /// Validates every not-yet-validated entity among the first
    /// `upto` draws, in draw order (validation consumes no RNG, so doing it
    /// lazily here matches the in-process incremental schedule exactly).
    fn validate_prefix(&self, state: &mut SessionState, upto: usize) {
        let validation = validation_config(self.engine.config());
        let global = self.sharded.global();
        for i in 0..upto.min(state.stratum.sample.len()) {
            let entity = state.stratum.sample[i].0;
            if state.stratum.validation.contains_key(&entity) {
                continue;
            }
            let outcome = validate_entity(
                &state.plan,
                self.engine.config().validate,
                &validation,
                global,
                self.similarity.as_ref(),
                entity,
                None,
            );
            state.stratum.validation.insert(entity, outcome);
        }
    }

    fn step(
        &self,
        query_text: &str,
        task: &StratumTask,
    ) -> Result<ShardResponse, (String, String)> {
        if task.draws.len() != task.steps + 1 {
            return Err((
                "bad_task".to_string(),
                format!(
                    "step task needs draws.len() == steps + 1, got {} and {}",
                    task.draws.len(),
                    task.steps
                ),
            ));
        }
        let session = self.session(query_text, task)?;
        let mut state = session.lock().unwrap();
        if let Some((false, last_task, response)) = &state.last {
            if last_task == task {
                return Ok(response.clone());
            }
        }
        self.advance(&mut state, task);
        let resamples = task.resamples.max(2);

        let validate_start = Instant::now();
        self.validate_prefix(&mut state, usize::MAX);
        let validated = validated_sample(&state.stratum, &state.plan, &self.sharded);
        let validate_ms = validate_start.elapsed().as_secs_f64() * 1e3;
        let bootstrap_start = Instant::now();
        let state = &mut *state;
        let summary = StratumEstimate::compute(
            &state.plan.aggregate,
            &validated,
            resamples,
            &mut state.stratum.rng,
        );
        let bootstrap_ms = bootstrap_start.elapsed().as_secs_f64() * 1e3;
        state.steps += 1;

        let response = ShardResponse::Estimate(StratumReport {
            primary: summary.primary,
            secondary: summary.secondary,
            replicates: summary.replicates,
            sample_size: summary.sample_size,
            correct: summary.correct,
            validate_ms,
            bootstrap_ms,
        });
        state.last = Some((false, task.clone(), response.clone()));
        Ok(response)
    }

    fn snapshot(
        &self,
        query_text: &str,
        task: &StratumTask,
    ) -> Result<ShardResponse, (String, String)> {
        if task.draws.len() < task.steps || task.draws.len() > task.steps + 1 {
            return Err((
                "bad_task".to_string(),
                format!(
                    "snapshot task needs draws.len() in [steps, steps + 1], got {} and {}",
                    task.draws.len(),
                    task.steps
                ),
            ));
        }
        let session = self.session(query_text, task)?;
        let mut state = session.lock().unwrap();
        if let Some((true, last_task, response)) = &state.last {
            if last_task == task {
                return Ok(response.clone());
            }
        }
        self.advance(&mut state, task);
        // Only the draws of *completed* rounds were validated by the
        // in-process session at this point; trailing draws default to
        // incorrect (the deadline-truncation contract).
        let validated_upto: usize = task.draws[..task.steps].iter().sum::<u64>() as usize;
        self.validate_prefix(&mut state, validated_upto);

        let (attr, width) = match state.plan.group_by {
            Some(group_by) => group_by,
            None => {
                // Not a GROUP-BY query: no buckets to report.
                let response = ShardResponse::Buckets(Vec::new());
                state.last = Some((true, task.clone(), response.clone()));
                return Ok(response);
            }
        };
        let shard_graph = self.sharded.shard(state.stratum.shard).graph();
        let validated = validated_sample(&state.stratum, &state.plan, &self.sharded);
        let keyed: Vec<(Option<i64>, ValidatedAnswer)> = validated
            .into_iter()
            .zip(&state.stratum.sample)
            .map(|(answer, (entity, _))| {
                let (_, local) = self.sharded.to_local(*entity);
                let key = shard_graph
                    .attribute_value(local, attr)
                    .map(|v| (v / width).floor() as i64);
                (key, answer)
            })
            .collect();
        let keys: BTreeSet<i64> = keyed
            .iter()
            .filter(|(_, a)| a.correct)
            .filter_map(|(k, _)| *k)
            .collect();
        let terms = keys
            .into_iter()
            .map(|key| {
                let bucket: Vec<ValidatedAnswer> = keyed
                    .iter()
                    .map(|(k, a)| ValidatedAnswer {
                        correct: a.correct && *k == Some(key),
                        ..*a
                    })
                    .collect();
                let (primary, secondary) = stratum_point_terms(&state.plan.aggregate, &bucket);
                BucketTerm {
                    key,
                    primary,
                    secondary,
                }
            })
            .collect();
        let response = ShardResponse::Buckets(terms);
        state.last = Some((true, task.clone(), response.clone()));
        Ok(response)
    }
}
