//! The coordinator half of distributed execution: a stratified session
//! whose per-shard refine steps are remote procedure calls.
//!
//! [`RemoteSession`] mirrors the in-process stratified session
//! operation-for-operation: it plans the query once against its own copy of
//! the graph, builds the identical per-shard samplers (for stratum weights
//! and the initial allocation — it never draws from them), and then runs
//! the same round loop, with each stratum's draw/validate/estimate step
//! executed by a shard server through the [`ShardFleet`]. On the
//! fault-free path the scattered round is bitwise-identical to
//! [`crate::ShardedSession`] over the same graph, config and seed — pinned
//! by `tests/remote_equivalence.rs`.
//!
//! **Degraded rounds.** When a shard stays unreachable past the fleet's
//! retry budget, the round merges the surviving strata only: the merged
//! estimate is still a valid stratified estimator of the reachable mass,
//! with a wider interval, and the answer is flagged with the missing shard
//! ids ([`crate::QueryAnswer::missing_shards`]) instead of erroring. The
//! coordinator's draw/step bookkeeping advances uniformly either way, so a
//! recovered shard replays the identical RNG stream (discarded-round
//! estimates burn the same draws) and later rounds pick it back up with no
//! special-casing.

use crate::config::EngineConfig;
use crate::engine::{AqpEngine, ComponentValidator, QueryPlan};
use crate::remote::fleet::ShardFleet;
use crate::remote::protocol::{ShardRequest, ShardResponse};
use crate::result::{QueryAnswer, RoundTrace, StepTimings};
use crate::session::{RoundOutcome, SharedValidationCache};
use crate::sharded::{open_sharded_inner, ShardedSession, EXPLORATION_FLOOR, MIN_STRATUM_DRAWS};
use kg_core::{EntityId, KgResult, ShardedGraph};
use kg_embed::PredicateSimilarity;
use kg_estimate::{
    additional_sample_size, allocate_proportional, combine_point_terms, merge_strata,
    neutral_point_terms, satisfies_error_bound, StratumEstimate,
};
use kg_query::AggregateQuery;
use kg_sampling::{BucketTerm, SamplerCache, ShardSampler, ShardSamplerCache, StratumTask};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One stratum's coordinator-side bookkeeping. The coordinator never draws
/// — the sampler exists for its weight and emptiness (identical to the
/// server's, both built deterministically from the same plan).
struct RemoteStratum {
    shard: usize,
    sampler: Arc<ShardSampler>,
    /// Per-round draw counts pushed so far (the replay history every
    /// request carries).
    draws: Vec<u64>,
    /// Rounds completed (advanced uniformly, reachable or not, so the
    /// replay trajectory stays identical for every replica).
    steps: usize,
}

impl RemoteStratum {
    fn total_draws(&self) -> usize {
        self.draws.iter().sum::<u64>() as usize
    }

    fn task(&self, resamples: usize) -> StratumTask {
        StratumTask {
            shard: self.shard,
            draws: self.draws.clone(),
            steps: self.steps,
            resamples,
        }
    }
}

/// A stratified session executing its per-shard steps on remote shard
/// servers; see the [module docs](self).
pub struct RemoteSession {
    config: EngineConfig,
    plan: QueryPlan,
    /// Canonical query JSON, shipped verbatim with every request (shard
    /// servers key their plan and session caches by this text).
    query_text: Arc<String>,
    fleet: Arc<ShardFleet>,
    strata: Vec<RemoteStratum>,
    timings: StepTimings,
    rounds: Vec<RoundTrace>,
    merge_ms: f64,
    last_variances: Vec<f64>,
    guarantee_met: bool,
    /// Shards unreachable in the most recent round (empty on the fault-free
    /// path).
    last_round_missing: Vec<usize>,
}

/// The canonical wire text of a query: compact JSON with sorted keys (the
/// shim's `Map` is a `BTreeMap`), so equal queries always hash to the same
/// server-side plan cache entry.
pub(crate) fn canonical_query_text(query: &AggregateQuery) -> String {
    serde_json::to_string(&query.to_json()).expect("query JSON serialises")
}

/// Opens a remote session: plan locally (the coordinator loads the same
/// graph), build the identical per-shard samplers for weights, and route
/// all sampling work through `fleet`.
pub(crate) fn open_remote<S: PredicateSimilarity + ?Sized>(
    engine: &AqpEngine,
    sharded: &ShardedGraph,
    query: &AggregateQuery,
    similarity: &S,
    fleet: Arc<ShardFleet>,
    cache: Option<&SamplerCache>,
    shard_cache: Option<&ShardSamplerCache>,
) -> KgResult<RemoteSession> {
    assert_eq!(
        fleet.shard_count(),
        sharded.shard_count(),
        "fleet endpoints must cover every shard"
    );
    let config = engine.config().clone();
    let plan = engine.plan_with_cache(sharded.global(), query, similarity, cache)?;
    let component_key = match plan.components.as_slice() {
        [single] => match &single.validator {
            ComponentValidator::Simple { sampler, .. } => Some(Arc::as_ptr(sampler) as usize),
            ComponentValidator::Chain { .. } => None,
        },
        _ => None,
    };
    let strata = (0..sharded.shard_count())
        .map(|shard| {
            let owned = |e: EntityId| sharded.shard_of(e) == shard;
            let sampler = match (shard_cache, component_key) {
                (Some(shard_cache), Some(key)) => {
                    shard_cache.get_or_insert_with(key, sharded.partition_id(), shard, || {
                        ShardSampler::from_distribution(shard, &plan.distribution, owned)
                    })
                }
                _ => Arc::new(ShardSampler::from_distribution(
                    shard,
                    &plan.distribution,
                    owned,
                )),
            };
            RemoteStratum {
                shard,
                sampler,
                draws: Vec::new(),
                steps: 0,
            }
        })
        .collect();
    let mut timings = StepTimings::default();
    timings.sampling_ms += plan.plan_ms;
    let query_text = Arc::new(canonical_query_text(query));
    Ok(RemoteSession {
        config,
        plan,
        query_text,
        fleet,
        strata,
        timings,
        rounds: Vec::new(),
        merge_ms: 0.0,
        last_variances: Vec::new(),
        guarantee_met: false,
        last_round_missing: Vec::new(),
    })
}

/// The outcome of one stratum's scattered step.
enum StratumRound {
    /// The shard answered (or the stratum is empty and was synthesised
    /// locally): its estimate plus server-reported timing.
    Report(StratumEstimate, f64, f64),
    /// The shard stayed unreachable (or answered nonsense) past the retry
    /// budget.
    Missing(String),
}

impl RemoteSession {
    pub(crate) fn candidate_count(&self) -> usize {
        self.plan.candidate_count
    }

    pub(crate) fn total_draws(&self) -> usize {
        self.strata.iter().map(RemoteStratum::total_draws).sum()
    }

    pub(crate) fn per_shard_samples(&self) -> Vec<usize> {
        self.strata.iter().map(RemoteStratum::total_draws).collect()
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.strata.len()
    }

    pub(crate) fn merge_ms(&self) -> f64 {
        self.merge_ms
    }

    pub(crate) fn rounds_completed(&self) -> usize {
        self.rounds.len()
    }

    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub(crate) fn refine_with(&mut self, error_bound: f64, confidence: f64) -> QueryAnswer {
        let wall = Instant::now();
        for _round in 0..self.config.max_rounds.max(1) {
            if self.step_with(error_bound, confidence) != RoundOutcome::Continue {
                break;
            }
        }
        let mut answer = self.snapshot_answer();
        answer.elapsed_ms = wall.elapsed().as_secs_f64() * 1e3 + self.plan.plan_ms;
        answer
    }

    /// Pushes this round's draw counts to every stratum's history (the
    /// remote analogue of [`StratifiedSession::draw`] — the actual drawing
    /// happens server-side during the scattered step).
    fn push_allocation(&mut self, allocation: &[usize]) {
        for (stratum, &count) in self.strata.iter_mut().zip(allocation) {
            stratum.draws.push(count as u64);
        }
    }

    /// One scattered refinement round, operation-for-operation the
    /// stratified `step_with`: allocate + push draws, scatter Step RPCs,
    /// merge the surviving strata, trace, then allocate the next round.
    pub(crate) fn step_with(&mut self, error_bound: f64, confidence: f64) -> RoundOutcome {
        self.config.confidence = confidence;
        // Scatter requires a pending allocation (`draws.len() == steps + 1`
        // on every stratum). Two cases have none: a fresh session (first
        // round draws the initial proportional allocation) and a session
        // resumed after a round that terminated without pushing — there the
        // in-process analogue re-estimates the existing sample, whose
        // remote counterpart is a zero-draw round.
        if self.strata.iter().all(|s| s.draws.len() == s.steps) {
            if self.strata.iter().all(|s| s.draws.is_empty()) {
                let initial = self.config.initial_sample_size(self.plan.candidate_count);
                let weights: Vec<f64> = self.strata.iter().map(|s| s.sampler.weight()).collect();
                let mut allocation = allocate_proportional(initial, &weights);
                for (alloc, stratum) in allocation.iter_mut().zip(&self.strata) {
                    if !stratum.sampler.is_empty() {
                        *alloc = (*alloc).max(MIN_STRATUM_DRAWS);
                    }
                }
                self.push_allocation(&allocation);
            } else {
                self.push_allocation(&vec![0; self.strata.len()]);
            }
        }
        let resamples = self.config.bootstrap.resamples.max(2);

        // Scatter: one OS thread per non-empty stratum (the work is
        // network-bound; a thread pool would serialise the round under
        // RAYON_NUM_THREADS=1). Empty strata are synthesised locally —
        // their estimate consumes no RNG, so skipping the RPC is exact.
        let fleet = &self.fleet;
        let query_text = &self.query_text;
        let aggregate = &self.plan.aggregate;
        let outcomes: Vec<StratumRound> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .strata
                .iter()
                .map(|stratum| {
                    if stratum.sampler.is_empty() {
                        return None;
                    }
                    let request = ShardRequest::Step {
                        query: (**query_text).clone(),
                        task: stratum.task(resamples),
                    };
                    let shard = stratum.shard;
                    Some(scope.spawn(move || fleet.call(shard, &request)))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle {
                    None => {
                        let mut unused = SmallRng::seed_from_u64(0);
                        let summary =
                            StratumEstimate::compute(aggregate, &[], resamples, &mut unused);
                        StratumRound::Report(summary, 0.0, 0.0)
                    }
                    Some(handle) => match handle.join().expect("scatter thread panicked") {
                        Ok(ShardResponse::Estimate(report)) => StratumRound::Report(
                            StratumEstimate {
                                primary: report.primary,
                                secondary: report.secondary,
                                replicates: report.replicates,
                                sample_size: report.sample_size,
                                correct: report.correct,
                            },
                            report.validate_ms,
                            report.bootstrap_ms,
                        ),
                        Ok(other) => {
                            StratumRound::Missing(format!("unexpected response: {other:?}"))
                        }
                        Err(error) => StratumRound::Missing(error.to_string()),
                    },
                })
                .collect()
        });

        // The round is over: advance every stratum's step counter whether
        // its report arrived or not — the *server-side* round either
        // happened identically or will be replayed identically (discarded
        // estimates burn the same RNG), so the trajectory stays uniform.
        for stratum in &mut self.strata {
            stratum.steps += 1;
        }

        let mut missing: Vec<usize> = Vec::new();
        let mut summaries: Vec<StratumEstimate> = Vec::new();
        let mut surviving: Vec<usize> = Vec::new();
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                StratumRound::Report(summary, validate_ms, bootstrap_ms) => {
                    self.timings.estimation_ms += validate_ms;
                    self.timings.guarantee_ms += bootstrap_ms;
                    summaries.push(summary);
                    surviving.push(idx);
                }
                StratumRound::Missing(reason) => {
                    kg_telemetry::point(
                        "aqp.remote.missing",
                        &[
                            ("round", (self.rounds.len() + 1).into()),
                            ("shard", idx.into()),
                            ("reason", reason.into()),
                        ],
                    );
                    missing.push(idx);
                }
            }
        }
        if !missing.is_empty() {
            self.fleet
                .metrics()
                .degraded_rounds
                .fetch_add(1, Ordering::Relaxed);
        }
        self.last_round_missing = missing;

        if summaries.is_empty() {
            // Total outage: no stratum reported, so this round produces no
            // estimate at all. Terminate refinement; the snapshot flags
            // every shard missing.
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }

        let merge_start = Instant::now();
        let merged = merge_strata(&self.plan.aggregate, &summaries, self.config.confidence);
        let estimate_value = merged.estimate;
        let moe = merged.moe;
        self.last_variances = vec![0.0; self.strata.len()];
        for (position, &idx) in surviving.iter().enumerate() {
            self.last_variances[idx] = merged.variances[position];
        }
        let satisfied = satisfies_error_bound(estimate_value, moe, error_bound);
        let merge_elapsed = merge_start.elapsed().as_secs_f64() * 1e3;
        self.merge_ms += merge_elapsed;
        self.timings.guarantee_ms += merge_elapsed;

        self.rounds.push(RoundTrace {
            round: self.rounds.len() + 1,
            estimate: estimate_value,
            moe,
            sample_size: merged.sample_size,
            correct_size: merged.correct,
        });
        kg_telemetry::point(
            "aqp.round",
            &[
                ("round", self.rounds.len().into()),
                ("estimate", estimate_value.into()),
                ("moe", moe.into()),
                ("sample_size", merged.sample_size.into()),
                ("correct_size", merged.correct.into()),
                ("shards", self.strata.len().into()),
                ("merge_ms", merge_elapsed.into()),
            ],
        );

        if satisfied || self.plan.distribution.is_empty() {
            self.guarantee_met = satisfied;
            return if satisfied {
                RoundOutcome::Satisfied
            } else {
                RoundOutcome::Exhausted
            };
        }
        let total = self.total_draws();
        if total >= self.config.max_sample_size {
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }
        let delta = match self.config.fixed_increment {
            Some(fixed) => fixed,
            None => additional_sample_size(
                total,
                moe,
                estimate_value,
                error_bound,
                self.config.bootstrap.blb_exponent,
                self.config.max_sample_size - total,
            ),
        };
        if delta == 0 {
            self.guarantee_met = true;
            return RoundOutcome::Satisfied;
        }
        let delta = delta.min(self.config.max_sample_size - total);
        let var_total: f64 = self.last_variances.iter().sum();
        let weights: Vec<f64> = self
            .strata
            .iter()
            .zip(&self.last_variances)
            .map(|(stratum, &var)| {
                let mass = stratum.sampler.weight();
                if var_total > 0.0 {
                    var / var_total + EXPLORATION_FLOOR * mass
                } else {
                    mass
                }
            })
            .collect();
        let allocation = allocate_proportional(delta, &weights);
        if kg_telemetry::enabled() {
            let per_shard = allocation
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            kg_telemetry::point(
                "aqp.allocation",
                &[
                    ("round", self.rounds.len().into()),
                    ("delta", delta.into()),
                    ("per_shard", per_shard.into()),
                ],
            );
        }
        if allocation.iter().sum::<usize>() == 0 {
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }
        self.push_allocation(&allocation);
        self.guarantee_met = false;
        RoundOutcome::Continue
    }

    /// Assembles the best-so-far answer. GROUP-BY buckets fan out one
    /// `Snapshot` RPC per reachable non-empty stratum and merge per-key
    /// terms in stratum order, substituting the neutral term for strata
    /// with no contribution — bitwise-identical to the in-process bucket
    /// merge (pinned by the neutral-term identity test in `kg-estimate`).
    pub(crate) fn snapshot_answer(&self) -> QueryAnswer {
        let (estimate_value, moe) = self
            .rounds
            .last()
            .map(|r| (r.estimate, r.moe))
            .unwrap_or((0.0, 0.0));
        let resamples = self.config.bootstrap.resamples.max(2);

        let mut missing: BTreeSet<usize> = self.last_round_missing.iter().copied().collect();
        let groups = match self.plan.group_by {
            None => BTreeMap::new(),
            Some(_) if self.rounds.is_empty() => BTreeMap::new(),
            Some(_) => {
                // Scatter snapshot requests. Strata already missing from the
                // last merged round are skipped outright: their draws did
                // not contribute to the top-level estimate, so their bucket
                // terms must not contribute either.
                let fleet = &self.fleet;
                let query_text = &self.query_text;
                let per_stratum: Vec<Option<Result<Vec<BucketTerm>, String>>> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .strata
                            .iter()
                            .map(|stratum| {
                                if stratum.sampler.is_empty() || missing.contains(&stratum.shard) {
                                    return None;
                                }
                                let request = ShardRequest::Snapshot {
                                    query: (**query_text).clone(),
                                    task: stratum.task(resamples),
                                };
                                let shard = stratum.shard;
                                Some(scope.spawn(move || fleet.call(shard, &request)))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|handle| {
                                handle.map(|h| match h.join().expect("snapshot thread panicked") {
                                    Ok(ShardResponse::Buckets(terms)) => Ok(terms),
                                    Ok(other) => Err(format!("unexpected response: {other:?}")),
                                    Err(error) => Err(error.to_string()),
                                })
                            })
                            .collect()
                    });
                let mut per_shard_terms: Vec<BTreeMap<i64, (f64, f64)>> =
                    vec![BTreeMap::new(); self.strata.len()];
                for (idx, outcome) in per_stratum.into_iter().enumerate() {
                    match outcome {
                        None => {}
                        Some(Ok(terms)) => {
                            per_shard_terms[idx] = terms
                                .into_iter()
                                .map(|t| (t.key, (t.primary, t.secondary)))
                                .collect();
                        }
                        Some(Err(reason)) => {
                            kg_telemetry::point(
                                "aqp.remote.missing",
                                &[
                                    ("round", self.rounds.len().into()),
                                    ("shard", idx.into()),
                                    ("reason", reason.into()),
                                ],
                            );
                            missing.insert(idx);
                        }
                    }
                }
                let keys: BTreeSet<i64> = per_shard_terms
                    .iter()
                    .flat_map(|terms| terms.keys().copied())
                    .collect();
                let neutral = neutral_point_terms(&self.plan.aggregate);
                keys.into_iter()
                    .map(|key| {
                        // Stratum order matters: float addition is not
                        // associative, and the in-process merge folds the
                        // strata in index order.
                        let value = combine_point_terms(
                            &self.plan.aggregate,
                            per_shard_terms
                                .iter()
                                .map(|terms| terms.get(&key).copied().unwrap_or(neutral)),
                        );
                        (key, value)
                    })
                    .collect()
            }
        };

        QueryAnswer {
            estimate: estimate_value,
            moe,
            confidence: self.config.confidence,
            guarantee_met: self.guarantee_met,
            rounds: self.rounds.clone(),
            groups,
            timings: self.timings,
            sample_size: self.total_draws(),
            candidate_count: self.plan.candidate_count,
            elapsed_ms: self.timings.total_ms(),
            missing_shards: missing.into_iter().collect(),
        }
    }
}

impl AqpEngine {
    /// Opens a [`ShardedSession`] whose per-shard work executes on the
    /// remote shard fleet: the distributed counterpart of
    /// [`AqpEngine::open_sharded_session`]. The coordinator plans against
    /// its own (identical) copy of the graph; `fleet` must route to servers
    /// whose fingerprints match (checked via [`ShardFleet::ping_all`] at
    /// topology setup, not per session).
    pub fn open_remote_session<S: PredicateSimilarity + ?Sized>(
        &self,
        sharded: &ShardedGraph,
        query: &AggregateQuery,
        similarity: &S,
        fleet: Arc<ShardFleet>,
    ) -> KgResult<ShardedSession> {
        self.open_remote_session_cached(sharded, query, similarity, fleet, None, None, None)
    }

    /// [`Self::open_remote_session`] with planner and shard-sampler caches
    /// (the batch/service entry point).
    #[allow(clippy::too_many_arguments)]
    pub fn open_remote_session_cached<S: PredicateSimilarity + ?Sized>(
        &self,
        sharded: &ShardedGraph,
        query: &AggregateQuery,
        similarity: &S,
        fleet: Arc<ShardFleet>,
        cache: Option<&SamplerCache>,
        shard_cache: Option<&ShardSamplerCache>,
        _shared_validation: Option<SharedValidationCache>,
    ) -> KgResult<ShardedSession> {
        let session = open_remote(self, sharded, query, similarity, fleet, cache, shard_cache)?;
        Ok(open_sharded_inner(session))
    }
}
