//! Shard transports: real TCP and a deterministic in-process fake with
//! scripted fault injection.
//!
//! A [`ShardTransport`] carries one framed request to one endpoint and
//! returns the decoded response payload. The fleet layer above it owns all
//! policy (deadlines are passed down; retries, hedging and failover happen
//! above), which keeps the transports dumb enough that the in-process fake
//! and the TCP implementation are interchangeable in tests.
//!
//! [`FaultPlan`] scripts per-endpoint failure schedules — delays, drops,
//! disconnects, garbage bytes, and whole-endpoint kills — so every failure
//! mode the fleet must survive is driven deterministically by tests rather
//! than by timing luck. Garbage frames are run through the real
//! `kg_core::read_frame` decoder, exercising the same error path a hostile
//! or corrupted peer would hit on the wire.

use crate::remote::server::ShardServerCore;
use kg_core::{read_frame, write_frame, Codec, FrameError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a transport call failed. Every variant is retryable from the
/// fleet's perspective; the distinction feeds metrics and tests.
#[derive(Clone, Debug)]
pub enum TransportError {
    /// Could not connect (refused, unreachable, endpoint unknown).
    Connect(String),
    /// The per-request deadline elapsed before a full response arrived.
    TimedOut,
    /// The connection dropped mid-exchange.
    Disconnected(String),
    /// The peer sent bytes that failed frame decoding.
    Garbage(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Connect(e) => write!(f, "connect failed: {e}"),
            Self::TimedOut => write!(f, "request deadline elapsed"),
            Self::Disconnected(e) => write!(f, "connection dropped: {e}"),
            Self::Garbage(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

fn classify(err: FrameError) -> TransportError {
    match err {
        FrameError::Io(e) => {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                TransportError::TimedOut
            } else {
                TransportError::Disconnected(e.to_string())
            }
        }
        FrameError::Truncated { .. } => TransportError::Disconnected(err.to_string()),
        other => TransportError::Garbage(other.to_string()),
    }
}

/// One request/response exchange with a shard endpoint.
pub trait ShardTransport: Send + Sync {
    /// Sends `payload` (already protocol-encoded in `codec`) to `endpoint`
    /// and returns the response payload with its codec. Must return — not
    /// block past — `deadline`.
    fn call(
        &self,
        endpoint: &str,
        codec: Codec,
        payload: &[u8],
        deadline: Instant,
    ) -> Result<(Codec, Vec<u8>), TransportError>;
}

/// Real TCP transport: one connection per request (the per-round payloads
/// are small and the coordinator fans out to K endpoints, so connection
/// reuse buys little next to the simplicity of a crash-safe stateless
/// exchange).
pub struct TcpTransport;

impl ShardTransport for TcpTransport {
    fn call(
        &self,
        endpoint: &str,
        codec: Codec,
        payload: &[u8],
        deadline: Instant,
    ) -> Result<(Codec, Vec<u8>), TransportError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(TransportError::TimedOut)?;
        let addr = endpoint
            .parse::<std::net::SocketAddr>()
            .map_err(|e| TransportError::Connect(format!("bad endpoint {endpoint}: {e}")))?;
        let stream = TcpStream::connect_timeout(&addr, remaining)
            .map_err(|e| TransportError::Connect(e.to_string()))?;
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(TransportError::TimedOut)?;
        stream
            .set_write_timeout(Some(remaining))
            .and_then(|()| stream.set_read_timeout(Some(remaining)))
            .map_err(|e| TransportError::Connect(e.to_string()))?;
        let mut stream = stream;
        write_frame(&mut stream, codec, payload).map_err(classify)?;
        stream.flush().map_err(|e| classify(FrameError::Io(e)))?;
        read_frame(&mut stream).map_err(classify)
    }
}

/// A scripted fault for one future request to one endpoint.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Delay the response by this many milliseconds (still answering if
    /// the deadline allows; a delay past the deadline becomes a timeout).
    Delay(u64),
    /// Swallow the request: the caller observes a deadline timeout.
    Drop,
    /// Sever the connection mid-response.
    Disconnect,
    /// Answer with garbage bytes (fed through the real frame decoder).
    Garbage,
}

/// Deterministic per-endpoint fault schedules, injectable into
/// [`InProcessTransport`]. Each request to an endpoint pops the next
/// scheduled action (no action → healthy service). Killed endpoints fail
/// every request until revived — the in-process analogue of a dead shard
/// process.
#[derive(Default)]
pub struct FaultPlan {
    schedules: Mutex<HashMap<String, VecDeque<FaultAction>>>,
    killed: Mutex<HashSet<String>>,
}

impl FaultPlan {
    /// An empty plan: every request is served healthily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `action` to `endpoint`'s schedule (FIFO; one action is
    /// consumed per request).
    pub fn push(&self, endpoint: &str, action: FaultAction) {
        self.schedules
            .lock()
            .unwrap()
            .entry(endpoint.to_string())
            .or_default()
            .push_back(action);
    }

    /// Marks `endpoint` dead: every request fails with a connect error
    /// until [`Self::revive`].
    pub fn kill(&self, endpoint: &str) {
        self.killed.lock().unwrap().insert(endpoint.to_string());
    }

    /// Brings a killed endpoint back to life.
    pub fn revive(&self, endpoint: &str) {
        self.killed.lock().unwrap().remove(endpoint);
    }

    fn is_killed(&self, endpoint: &str) -> bool {
        self.killed.lock().unwrap().contains(endpoint)
    }

    fn next_action(&self, endpoint: &str) -> Option<FaultAction> {
        self.schedules
            .lock()
            .unwrap()
            .get_mut(endpoint)
            .and_then(VecDeque::pop_front)
    }
}

/// In-process transport: endpoints map straight onto [`ShardServerCore`]s,
/// with a shared [`FaultPlan`] interposed. Requests and responses still
/// pass through real frame encode/decode so the garbage and truncation
/// paths exercise production code.
pub struct InProcessTransport {
    endpoints: HashMap<String, Arc<ShardServerCore>>,
    faults: Arc<FaultPlan>,
}

impl InProcessTransport {
    /// Builds a transport over named endpoint → server-core bindings.
    pub fn new(endpoints: HashMap<String, Arc<ShardServerCore>>, faults: Arc<FaultPlan>) -> Self {
        Self { endpoints, faults }
    }
}

impl ShardTransport for InProcessTransport {
    fn call(
        &self,
        endpoint: &str,
        codec: Codec,
        payload: &[u8],
        deadline: Instant,
    ) -> Result<(Codec, Vec<u8>), TransportError> {
        if self.faults.is_killed(endpoint) {
            return Err(TransportError::Connect(format!(
                "{endpoint}: connection refused (killed)"
            )));
        }
        let core = self
            .endpoints
            .get(endpoint)
            .ok_or_else(|| TransportError::Connect(format!("{endpoint}: unknown endpoint")))?;
        match self.faults.next_action(endpoint) {
            Some(FaultAction::Delay(ms)) => {
                let wake = Instant::now() + Duration::from_millis(ms);
                if wake > deadline {
                    // Sleep only to the deadline: the caller's read would
                    // have timed out there.
                    let until = deadline.saturating_duration_since(Instant::now());
                    std::thread::sleep(until);
                    return Err(TransportError::TimedOut);
                }
                std::thread::sleep(Duration::from_millis(ms));
            }
            Some(FaultAction::Drop) => {
                let until = deadline.saturating_duration_since(Instant::now());
                std::thread::sleep(until);
                return Err(TransportError::TimedOut);
            }
            Some(FaultAction::Disconnect) => {
                return Err(TransportError::Disconnected(format!(
                    "{endpoint}: connection reset by peer"
                )));
            }
            Some(FaultAction::Garbage) => {
                // Hand hostile bytes to the *real* frame decoder, same as a
                // corrupted TCP stream would.
                let garbage = b"\xDE\xAD\xBE\xEF not a frame at all";
                let result = read_frame(&mut &garbage[..]);
                return Err(classify(result.expect_err("garbage must not decode")));
            }
            None => {}
        }
        if Instant::now() >= deadline {
            return Err(TransportError::TimedOut);
        }
        // Round-trip through real framing so oversized/truncated handling
        // stays on the production path.
        let mut wire = Vec::new();
        write_frame(&mut wire, codec, payload).map_err(classify)?;
        let (codec, request) = read_frame(&mut wire.as_slice()).map_err(classify)?;
        let response = core.serve(codec, &request);
        let mut wire = Vec::new();
        write_frame(&mut wire, codec, &response).map_err(classify)?;
        read_frame(&mut wire.as_slice()).map_err(classify)
    }
}
