//! The coordinator ↔ shard-server request/response envelope.
//!
//! Every message travels inside a `kg_core::frame` (magic + codec byte +
//! length prefix) and is available in both codecs: **JSON** for the
//! handshake and debuggability, **binary** for the latency-sensitive
//! per-round fan-out. A server always answers in the codec of the request.
//!
//! Responses are pure functions of their requests — the server replays a
//! stratum to the requested `(draws, steps)` point deterministically — so a
//! hedged or retried request returns byte-identical payloads, which is what
//! lets the fleet layer race duplicates without affecting results.

use kg_core::{ByteReader, ByteWriter, Codec, DecodeError};
use kg_query::wire::{as_array, as_str, as_usize, get_field, object, WireError};
use kg_sampling::{BucketTerm, StratumReport, StratumTask};
use serde_json::Value;

/// A coordinator → shard-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRequest {
    /// Handshake: verify the server hosts the same graph, partitioning and
    /// engine configuration as the coordinator (fingerprints are FNV-1a
    /// digests; see `fingerprint` helpers in the server module).
    Ping {
        /// Coordinator's graph + partitioning fingerprint.
        graph_fp: u64,
        /// Coordinator's engine-config fingerprint.
        config_fp: u64,
    },
    /// Advance one stratum by one validate+estimate round and return its
    /// [`StratumReport`]. `query` is the canonical JSON encoding of the
    /// `AggregateQuery` (the server plans it locally and deterministically).
    Step {
        /// Canonical query JSON.
        query: String,
        /// Replay point + new round draws for the addressed stratum.
        task: StratumTask,
    },
    /// Replay one stratum to the requested point **without** running a new
    /// estimate round and return its GROUP-BY bucket terms (empty for a
    /// query without GROUP-BY; the bucketing attribute and width come from
    /// the server's own — deterministic, identical — plan).
    Snapshot {
        /// Canonical query JSON.
        query: String,
        /// Replay point for the addressed stratum.
        task: StratumTask,
    },
}

/// A shard-server → coordinator message.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardResponse {
    /// Handshake accepted: the server's own fingerprints.
    Pong {
        /// Server's graph + partitioning fingerprint.
        graph_fp: u64,
        /// Server's engine-config fingerprint.
        config_fp: u64,
        /// Number of shards the server partitioned into.
        shards: usize,
    },
    /// A completed [`ShardRequest::Step`].
    Estimate(StratumReport),
    /// A completed [`ShardRequest::Snapshot`]: per-bucket terms, sorted by
    /// key, only for buckets this stratum contributes to.
    Buckets(Vec<BucketTerm>),
    /// The server could not serve the request (bad query, fingerprint
    /// mismatch, malformed task). Carried as data, not a transport failure,
    /// so the coordinator can distinguish "shard unreachable" from "shard
    /// rejected".
    Error {
        /// Stable machine-readable code (e.g. `bad_request`, `mismatch`).
        code: String,
        /// Human-oriented detail.
        message: String,
    },
}

const REQ_PING: u8 = 0;
const REQ_STEP: u8 = 1;
const REQ_SNAPSHOT: u8 = 2;
const RESP_PONG: u8 = 0;
const RESP_ESTIMATE: u8 = 1;
const RESP_BUCKETS: u8 = 2;
const RESP_ERROR: u8 = 3;

fn u64_to_json(v: u64) -> Value {
    // Fingerprints exceed 2^53; carry them as decimal strings in JSON.
    Value::String(v.to_string())
}

fn u64_from_json(value: &Value, path: &str) -> Result<u64, WireError> {
    as_str(value, path)?
        .parse::<u64>()
        .map_err(|_| WireError::new(path, "a decimal u64 string"))
}

impl ShardRequest {
    /// Encodes into the payload bytes for `codec`.
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::Json => self.to_json().to_string().into_bytes(),
            Codec::Binary => {
                let mut w = ByteWriter::new();
                match self {
                    Self::Ping {
                        graph_fp,
                        config_fp,
                    } => {
                        w.put_u8(REQ_PING);
                        w.put_u64(*graph_fp);
                        w.put_u64(*config_fp);
                    }
                    Self::Step { query, task } => {
                        w.put_u8(REQ_STEP);
                        w.put_str(query);
                        task.encode(&mut w);
                    }
                    Self::Snapshot { query, task } => {
                        w.put_u8(REQ_SNAPSHOT);
                        w.put_str(query);
                        task.encode(&mut w);
                    }
                }
                w.into_bytes()
            }
        }
    }

    /// Decodes payload bytes in `codec`; errors are structured strings
    /// suitable for a `ShardResponse::Error`.
    pub fn decode(codec: Codec, payload: &[u8]) -> Result<Self, String> {
        match codec {
            Codec::Json => {
                let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
                let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
                Self::from_json(&value).map_err(|e| e.to_string())
            }
            Codec::Binary => {
                let mut r = ByteReader::new(payload);
                let decoded = Self::decode_binary(&mut r).map_err(|e| e.to_string())?;
                r.finish().map_err(|e| e.to_string())?;
                Ok(decoded)
            }
        }
    }

    fn decode_binary(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            REQ_PING => Ok(Self::Ping {
                graph_fp: r.u64()?,
                config_fp: r.u64()?,
            }),
            REQ_STEP => Ok(Self::Step {
                query: r.str()?,
                task: StratumTask::decode(r)?,
            }),
            REQ_SNAPSHOT => Ok(Self::Snapshot {
                query: r.str()?,
                task: StratumTask::decode(r)?,
            }),
            tag => Err(DecodeError {
                offset: 0,
                message: format!("unknown request tag {tag}"),
            }),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            Self::Ping {
                graph_fp,
                config_fp,
            } => object(vec![
                ("kind", Value::String("ping".to_string())),
                ("graph_fp", u64_to_json(*graph_fp)),
                ("config_fp", u64_to_json(*config_fp)),
            ]),
            Self::Step { query, task } => object(vec![
                ("kind", Value::String("step".to_string())),
                ("query", Value::String(query.clone())),
                ("task", task.to_json()),
            ]),
            Self::Snapshot { query, task } => object(vec![
                ("kind", Value::String("snapshot".to_string())),
                ("query", Value::String(query.clone())),
                ("task", task.to_json()),
            ]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, WireError> {
        let kind = as_str(get_field(value, "request", "kind")?, "request.kind")?;
        match kind.as_str() {
            "ping" => Ok(Self::Ping {
                graph_fp: u64_from_json(
                    get_field(value, "request", "graph_fp")?,
                    "request.graph_fp",
                )?,
                config_fp: u64_from_json(
                    get_field(value, "request", "config_fp")?,
                    "request.config_fp",
                )?,
            }),
            "step" => Ok(Self::Step {
                query: as_str(get_field(value, "request", "query")?, "request.query")?,
                task: StratumTask::from_json(get_field(value, "request", "task")?, "request.task")?,
            }),
            "snapshot" => Ok(Self::Snapshot {
                query: as_str(get_field(value, "request", "query")?, "request.query")?,
                task: StratumTask::from_json(get_field(value, "request", "task")?, "request.task")?,
            }),
            _ => Err(WireError::new("request.kind", "ping|step|snapshot")),
        }
    }
}

impl ShardResponse {
    /// Encodes into the payload bytes for `codec`.
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::Json => self.to_json().to_string().into_bytes(),
            Codec::Binary => {
                let mut w = ByteWriter::new();
                match self {
                    Self::Pong {
                        graph_fp,
                        config_fp,
                        shards,
                    } => {
                        w.put_u8(RESP_PONG);
                        w.put_u64(*graph_fp);
                        w.put_u64(*config_fp);
                        w.put_u64(*shards as u64);
                    }
                    Self::Estimate(report) => {
                        w.put_u8(RESP_ESTIMATE);
                        report.encode(&mut w);
                    }
                    Self::Buckets(terms) => {
                        w.put_u8(RESP_BUCKETS);
                        w.put_len(terms.len());
                        for term in terms {
                            term.encode(&mut w);
                        }
                    }
                    Self::Error { code, message } => {
                        w.put_u8(RESP_ERROR);
                        w.put_str(code);
                        w.put_str(message);
                    }
                }
                w.into_bytes()
            }
        }
    }

    /// Decodes payload bytes in `codec`.
    pub fn decode(codec: Codec, payload: &[u8]) -> Result<Self, String> {
        match codec {
            Codec::Json => {
                let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
                let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
                Self::from_json(&value).map_err(|e| e.to_string())
            }
            Codec::Binary => {
                let mut r = ByteReader::new(payload);
                let decoded = Self::decode_binary(&mut r).map_err(|e| e.to_string())?;
                r.finish().map_err(|e| e.to_string())?;
                Ok(decoded)
            }
        }
    }

    fn decode_binary(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            RESP_PONG => Ok(Self::Pong {
                graph_fp: r.u64()?,
                config_fp: r.u64()?,
                shards: r.u64()? as usize,
            }),
            RESP_ESTIMATE => Ok(Self::Estimate(StratumReport::decode(r)?)),
            RESP_BUCKETS => {
                let n = r.len(24, "bucket terms")?;
                let mut terms = Vec::with_capacity(n);
                for _ in 0..n {
                    terms.push(BucketTerm::decode(r)?);
                }
                Ok(Self::Buckets(terms))
            }
            RESP_ERROR => Ok(Self::Error {
                code: r.str()?,
                message: r.str()?,
            }),
            tag => Err(DecodeError {
                offset: 0,
                message: format!("unknown response tag {tag}"),
            }),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            Self::Pong {
                graph_fp,
                config_fp,
                shards,
            } => object(vec![
                ("kind", Value::String("pong".to_string())),
                ("graph_fp", u64_to_json(*graph_fp)),
                ("config_fp", u64_to_json(*config_fp)),
                ("shards", Value::Number(*shards as f64)),
            ]),
            Self::Estimate(report) => object(vec![
                ("kind", Value::String("estimate".to_string())),
                ("report", report.to_json()),
            ]),
            Self::Buckets(terms) => object(vec![
                ("kind", Value::String("buckets".to_string())),
                (
                    "terms",
                    Value::Array(terms.iter().map(BucketTerm::to_json).collect()),
                ),
            ]),
            Self::Error { code, message } => object(vec![
                ("kind", Value::String("error".to_string())),
                ("code", Value::String(code.clone())),
                ("message", Value::String(message.clone())),
            ]),
        }
    }

    fn from_json(value: &Value) -> Result<Self, WireError> {
        let kind = as_str(get_field(value, "response", "kind")?, "response.kind")?;
        match kind.as_str() {
            "pong" => Ok(Self::Pong {
                graph_fp: u64_from_json(
                    get_field(value, "response", "graph_fp")?,
                    "response.graph_fp",
                )?,
                config_fp: u64_from_json(
                    get_field(value, "response", "config_fp")?,
                    "response.config_fp",
                )?,
                shards: as_usize(get_field(value, "response", "shards")?, "response.shards")?,
            }),
            "estimate" => Ok(Self::Estimate(StratumReport::from_json(
                get_field(value, "response", "report")?,
                "response.report",
            )?)),
            "buckets" => {
                let terms = as_array(get_field(value, "response", "terms")?, "response.terms")?
                    .iter()
                    .enumerate()
                    .map(|(i, v)| BucketTerm::from_json(v, &format!("response.terms[{i}]")))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(Self::Buckets(terms))
            }
            "error" => Ok(Self::Error {
                code: as_str(get_field(value, "response", "code")?, "response.code")?,
                message: as_str(get_field(value, "response", "message")?, "response.message")?,
            }),
            _ => Err(WireError::new(
                "response.kind",
                "pong|estimate|buckets|error",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<ShardRequest> {
        vec![
            ShardRequest::Ping {
                graph_fp: u64::MAX - 3,
                config_fp: 0x1234_5678_9ABC_DEF0,
            },
            ShardRequest::Step {
                query: "{\"agg\":\"count\"}".to_string(),
                task: StratumTask {
                    shard: 2,
                    draws: vec![64, 0, 31],
                    steps: 2,
                    resamples: 50,
                },
            },
            ShardRequest::Snapshot {
                query: "{}".to_string(),
                task: StratumTask {
                    shard: 0,
                    draws: vec![16],
                    steps: 1,
                    resamples: 2,
                },
            },
        ]
    }

    fn responses() -> Vec<ShardResponse> {
        vec![
            ShardResponse::Pong {
                graph_fp: 1,
                config_fp: u64::MAX,
                shards: 4,
            },
            ShardResponse::Estimate(StratumReport {
                primary: f64::NAN,
                secondary: -0.0,
                replicates: vec![(0.5, 1.5)],
                sample_size: 10,
                correct: 7,
                validate_ms: 0.5,
                bootstrap_ms: 0.25,
            }),
            ShardResponse::Buckets(vec![BucketTerm {
                key: -9,
                primary: 2.5,
                secondary: 0.0,
            }]),
            ShardResponse::Error {
                code: "mismatch".to_string(),
                message: "graph fingerprint differs".to_string(),
            },
        ]
    }

    fn assert_response_eq(a: &ShardResponse, b: &ShardResponse) {
        // PartialEq on f64 treats NaN != NaN; compare via encoded bytes,
        // which carry floats bitwise in the binary codec.
        assert_eq!(a.encode(Codec::Binary), b.encode(Codec::Binary));
    }

    #[test]
    fn requests_round_trip_both_codecs() {
        for req in requests() {
            for codec in [Codec::Json, Codec::Binary] {
                let bytes = req.encode(codec);
                assert_eq!(ShardRequest::decode(codec, &bytes).unwrap(), req);
            }
        }
    }

    #[test]
    fn responses_round_trip_both_codecs() {
        for resp in responses() {
            for codec in [Codec::Json, Codec::Binary] {
                let bytes = resp.encode(codec);
                let decoded = ShardResponse::decode(codec, &bytes).unwrap();
                assert_response_eq(&decoded, &resp);
            }
        }
    }

    #[test]
    fn garbage_payloads_are_structured_errors() {
        for codec in [Codec::Json, Codec::Binary] {
            assert!(ShardRequest::decode(codec, b"\xFF\xFE\x00garbage").is_err());
            assert!(ShardResponse::decode(codec, b"").is_err());
        }
        // Unknown binary tag.
        assert!(ShardRequest::decode(Codec::Binary, &[9]).is_err());
        // Trailing bytes after a valid binary message are rejected.
        let mut bytes = requests()[0].encode(Codec::Binary);
        bytes.push(0);
        assert!(ShardRequest::decode(Codec::Binary, &bytes).is_err());
    }
}
