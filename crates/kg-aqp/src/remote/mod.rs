//! Distributed shard execution: coordinator, protocol, transports, fleet.
//!
//! The distributed path splits one [`crate::ShardedSession`] across
//! processes: a coordinator plans the query and runs the round loop; shard
//! servers (the `kg-shard` binary, built on [`ShardServerCore`]) own the
//! per-stratum draw/validate/estimate work. The protocol is stateless by
//! replay — every request carries the full per-round draw history — so any
//! replica can serve any request and responses are pure functions of
//! requests. That purity is what makes the robustness layer safe: retries,
//! hedges and failovers can never change an answer, only its latency, and
//! the fault-free distributed round is bitwise-identical to in-process
//! execution.
//!
//! Layering, bottom-up:
//!
//! * [`protocol`] — request/response envelopes over the pinned frame
//!   format, JSON and compact binary codecs.
//! * [`transport`] — one request/response exchange: real TCP, plus an
//!   in-process fake with scripted [`FaultPlan`] injection for tests.
//! * [`fleet`] — per-shard replica routing with deadlines, retries,
//!   hedging and health-tracked failover.
//! * [`server`] — the deterministic replay core a shard server executes.
//! * [`session`] — the coordinator's scatter-gather session, including the
//!   degraded-answer contract for unreachable strata.

pub mod fleet;
pub mod protocol;
pub mod server;
pub mod session;
pub mod transport;

pub use fleet::{FleetPolicy, RemoteMetrics, RemoteMetricsSnapshot, ShardCallError, ShardFleet};
pub use protocol::{ShardRequest, ShardResponse};
pub use server::{config_fingerprint, graph_fingerprint, ShardServerCore};
pub use session::RemoteSession;
pub use transport::{
    FaultAction, FaultPlan, InProcessTransport, ShardTransport, TcpTransport, TransportError,
};
