//! Replica fleet management: retries, hedging, failover, health tracking.
//!
//! A [`ShardFleet`] owns, per shard, an ordered list of replica endpoints
//! and routes every shard request through a robustness pipeline:
//!
//! * **Per-attempt deadlines** — each attempt gets `request_timeout_ms`.
//! * **Hedged requests** — if the chosen endpoint hasn't answered within
//!   `hedge_after_ms`, the identical request is raced against the next
//!   healthy replica; the first success wins and the loser's (identical —
//!   responses are pure functions of requests) bytes are dropped, so
//!   hedging can never change a result, only its latency.
//! * **Retries with jittered exponential backoff** under a per-call
//!   `retry_budget`; each retry rotates to the next replica (failover).
//! * **Health tracking** — `eject_after` consecutive failures eject an
//!   endpoint from selection; after `probe_after_ms` it becomes a half-open
//!   probe candidate and a success re-admits it.
//!
//! The fleet is deliberately ignorant of what the requests mean: all
//! statistics semantics (degraded rounds, stratum bookkeeping) live in the
//! remote session above it.

use crate::remote::protocol::{ShardRequest, ShardResponse};
use crate::remote::transport::{ShardTransport, TransportError};
use kg_core::Codec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fleet robustness knobs. Defaults are tuned for LAN-local shards.
#[derive(Clone, Debug)]
pub struct FleetPolicy {
    /// Wire codec for shard requests ([`Codec::Binary`] unless debugging).
    pub codec: Codec,
    /// Per-attempt deadline, milliseconds.
    pub request_timeout_ms: u64,
    /// Hedge a straggler after this many milliseconds (0 disables hedging).
    pub hedge_after_ms: u64,
    /// Additional attempts after the first, per call.
    pub retry_budget: u32,
    /// Exponential backoff base, milliseconds (doubles per retry).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
    /// Consecutive failures that eject an endpoint.
    pub eject_after: u32,
    /// How long an ejected endpoint sits out before half-open probing.
    pub probe_after_ms: u64,
    /// Seed for backoff jitter (deterministic in tests).
    pub jitter_seed: u64,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        Self {
            codec: Codec::Binary,
            request_timeout_ms: 2_000,
            hedge_after_ms: 150,
            retry_budget: 2,
            backoff_base_ms: 25,
            backoff_max_ms: 1_000,
            eject_after: 3,
            probe_after_ms: 1_000,
            jitter_seed: 0x0005_EEDF_1EE7,
        }
    }
}

/// Monotonic counters for the remote execution path, shared between the
/// fleet and the service `/metrics` endpoints.
#[derive(Default)]
pub struct RemoteMetrics {
    /// Logical shard calls issued.
    pub requests: AtomicU64,
    /// Transport attempts beyond the first per call.
    pub retries: AtomicU64,
    /// Hedge requests launched.
    pub hedges: AtomicU64,
    /// Hedge requests that answered before the primary.
    pub hedge_wins: AtomicU64,
    /// Successful responses served by a non-primary replica.
    pub failovers: AtomicU64,
    /// Endpoints ejected after consecutive failures.
    pub ejections: AtomicU64,
    /// Ejected endpoints re-admitted by a successful half-open probe.
    pub readmissions: AtomicU64,
    /// Attempts that hit the per-attempt deadline.
    pub timeouts: AtomicU64,
    /// Attempts that failed with a malformed frame.
    pub garbage: AtomicU64,
    /// Refine rounds that completed without at least one stratum.
    pub degraded_rounds: AtomicU64,
}

/// A plain-value copy of [`RemoteMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteMetricsSnapshot {
    /// Logical shard calls issued.
    pub requests: u64,
    /// Transport attempts beyond the first per call.
    pub retries: u64,
    /// Hedge requests launched.
    pub hedges: u64,
    /// Hedge requests that answered before the primary.
    pub hedge_wins: u64,
    /// Successful responses served by a non-primary replica.
    pub failovers: u64,
    /// Endpoints ejected after consecutive failures.
    pub ejections: u64,
    /// Ejected endpoints re-admitted by a successful half-open probe.
    pub readmissions: u64,
    /// Attempts that hit the per-attempt deadline.
    pub timeouts: u64,
    /// Attempts that failed with a malformed frame.
    pub garbage: u64,
    /// Refine rounds that completed without at least one stratum.
    pub degraded_rounds: u64,
}

impl RemoteMetrics {
    /// Reads every counter (relaxed; counters are advisory).
    pub fn snapshot(&self) -> RemoteMetricsSnapshot {
        RemoteMetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            garbage: self.garbage.load(Ordering::Relaxed),
            degraded_rounds: self.degraded_rounds.load(Ordering::Relaxed),
        }
    }
}

/// Why a shard call ultimately failed after the fleet exhausted its
/// options. `Unreachable` marks the stratum for a degraded round;
/// `Rejected` means the server answered but refused (deterministic — not
/// retried).
#[derive(Clone, Debug)]
pub enum ShardCallError {
    /// Every attempt failed at the transport layer.
    Unreachable {
        /// The shard addressed.
        shard: usize,
        /// Attempts made (including hedges).
        attempts: u32,
        /// The last transport error observed.
        last: String,
    },
    /// The server answered with a protocol-level rejection.
    Rejected {
        /// The shard addressed.
        shard: usize,
        /// Machine-readable rejection code.
        code: String,
        /// Human-oriented detail.
        message: String,
    },
}

impl fmt::Display for ShardCallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unreachable {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} unreachable after {attempts} attempts: {last}"
            ),
            Self::Rejected {
                shard,
                code,
                message,
            } => write!(f, "shard {shard} rejected request ({code}): {message}"),
        }
    }
}

impl std::error::Error for ShardCallError {}

#[derive(Clone, Copy, Debug, Default)]
struct EndpointHealth {
    consecutive_failures: u32,
    ejected_at: Option<Instant>,
}

/// Health-tracked, hedging, failing-over routing layer over a
/// [`ShardTransport`]; see the [module docs](self).
pub struct ShardFleet {
    transport: Arc<dyn ShardTransport>,
    /// Per shard: ordered replica endpoints (index 0 is the primary).
    replicas: Vec<Vec<String>>,
    policy: FleetPolicy,
    health: Mutex<HashMap<String, EndpointHealth>>,
    jitter: Mutex<SmallRng>,
    metrics: Arc<RemoteMetrics>,
}

impl ShardFleet {
    /// Builds a fleet over `replicas[shard] = [endpoint, ...]` lists. Every
    /// shard must have at least one endpoint.
    pub fn new(
        transport: Arc<dyn ShardTransport>,
        replicas: Vec<Vec<String>>,
        policy: FleetPolicy,
    ) -> Self {
        assert!(
            replicas.iter().all(|r| !r.is_empty()),
            "every shard needs at least one endpoint"
        );
        let jitter = SmallRng::seed_from_u64(policy.jitter_seed);
        Self {
            transport,
            replicas,
            policy,
            health: Mutex::new(HashMap::new()),
            jitter: Mutex::new(jitter),
            metrics: Arc::new(RemoteMetrics::default()),
        }
    }

    /// Number of shards this fleet routes to.
    pub fn shard_count(&self) -> usize {
        self.replicas.len()
    }

    /// The fleet's shared metric counters.
    pub fn metrics(&self) -> Arc<RemoteMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The fleet's policy.
    pub fn policy(&self) -> &FleetPolicy {
        &self.policy
    }

    /// Picks the endpoint for `attempt` (0-based) on `shard`: rotates
    /// through replicas starting at the attempt index, skipping ejected
    /// endpoints unless their probe timer expired (half-open). Falls back
    /// to plain rotation when everything is ejected.
    fn select(&self, shard: usize, attempt: u32) -> (usize, String) {
        let replicas = &self.replicas[shard];
        let n = replicas.len();
        let start = attempt as usize % n;
        let health = self.health.lock().unwrap();
        for i in 0..n {
            let idx = (start + i) % n;
            let endpoint = &replicas[idx];
            match health.get(endpoint) {
                None => return (idx, endpoint.clone()),
                Some(h) => match h.ejected_at {
                    None => return (idx, endpoint.clone()),
                    Some(at) => {
                        if at.elapsed() >= Duration::from_millis(self.policy.probe_after_ms) {
                            // Half-open probe.
                            return (idx, endpoint.clone());
                        }
                    }
                },
            }
        }
        (start, replicas[start].clone())
    }

    fn on_success(&self, endpoint: &str) {
        let mut health = self.health.lock().unwrap();
        let entry = health.entry(endpoint.to_string()).or_default();
        if entry.ejected_at.take().is_some() {
            self.metrics.readmissions.fetch_add(1, Ordering::Relaxed);
        }
        entry.consecutive_failures = 0;
    }

    fn on_failure(&self, endpoint: &str, error: &TransportError) {
        match error {
            TransportError::TimedOut => {
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            TransportError::Garbage(_) => {
                self.metrics.garbage.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let mut health = self.health.lock().unwrap();
        let entry = health.entry(endpoint.to_string()).or_default();
        entry.consecutive_failures += 1;
        if entry.consecutive_failures >= self.policy.eject_after && entry.ejected_at.is_none() {
            entry.ejected_at = Some(Instant::now());
            self.metrics.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One hedged attempt: launch the primary; if it hasn't answered after
    /// `hedge_after_ms` and a distinct replica exists, race the identical
    /// request there; first success wins. Responses are pure functions of
    /// the request, so whichever copy wins carries identical bytes.
    fn attempt(
        &self,
        shard: usize,
        attempt: u32,
        payload: &Arc<Vec<u8>>,
    ) -> Result<(Codec, Vec<u8>), TransportError> {
        let deadline = Instant::now() + Duration::from_millis(self.policy.request_timeout_ms);
        let (primary_idx, primary) = self.select(shard, attempt);
        let (tx, rx) = mpsc::channel();
        let spawn = |endpoint: String, tag: usize, tx: mpsc::Sender<_>| {
            let transport = Arc::clone(&self.transport);
            let payload = Arc::clone(payload);
            let codec = self.policy.codec;
            std::thread::spawn(move || {
                let result = transport.call(&endpoint, codec, &payload, deadline);
                let _ = tx.send((tag, endpoint, result));
            });
        };
        spawn(primary.clone(), 0, tx.clone());

        let mut outcome = None;
        let hedge_wait = Duration::from_millis(self.policy.hedge_after_ms);
        let first = if self.policy.hedge_after_ms > 0 {
            rx.recv_timeout(hedge_wait)
        } else {
            Err(mpsc::RecvTimeoutError::Timeout)
        };
        let mut in_flight = 1u32;
        match first {
            Ok(done) => outcome = Some(done),
            Err(_) => {
                // Primary is straggling (or hedging is disabled and we just
                // fall through to the deadline wait below). Hedge against
                // the next distinct, non-ejected replica if one exists.
                if self.policy.hedge_after_ms > 0 {
                    let (hedge_idx, hedge) = self.select(shard, attempt + 1);
                    if hedge_idx != primary_idx {
                        self.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                        spawn(hedge, 1, tx.clone());
                        in_flight += 1;
                    }
                }
            }
        }
        drop(tx);

        // Wait for a winner: first success, or all in-flight copies failed.
        let mut last_error = None;
        loop {
            let (tag, endpoint, result) = match outcome.take() {
                Some(done) => done,
                None => {
                    let remaining = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_millis(1));
                    match rx.recv_timeout(remaining + Duration::from_millis(50)) {
                        Ok(done) => done,
                        Err(_) => {
                            return Err(last_error.unwrap_or(TransportError::TimedOut));
                        }
                    }
                }
            };
            match result {
                Ok(response) => {
                    self.on_success(&endpoint);
                    if tag == 1 {
                        self.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    let served_by_primary_replica = if tag == 0 { primary_idx == 0 } else { false };
                    if !served_by_primary_replica {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(response);
                }
                Err(error) => {
                    self.on_failure(&endpoint, &error);
                    last_error = Some(error);
                    in_flight -= 1;
                    if in_flight == 0 {
                        return Err(last_error.unwrap_or(TransportError::TimedOut));
                    }
                }
            }
        }
    }

    /// Issues one shard call with the full robustness pipeline. A
    /// [`ShardResponse::Error`] from the server is surfaced as
    /// [`ShardCallError::Rejected`] without retrying (server rejections are
    /// deterministic).
    pub fn call(
        &self,
        shard: usize,
        request: &ShardRequest,
    ) -> Result<ShardResponse, ShardCallError> {
        assert!(shard < self.replicas.len(), "shard {shard} out of range");
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let payload = Arc::new(request.encode(self.policy.codec));
        let mut last = String::new();
        let mut attempts = 0u32;
        for attempt in 0..=self.policy.retry_budget {
            if attempt > 0 {
                self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = self
                    .policy
                    .backoff_base_ms
                    .saturating_mul(1u64 << (attempt - 1).min(16))
                    .min(self.policy.backoff_max_ms);
                let jitter = self
                    .jitter
                    .lock()
                    .unwrap()
                    .gen_range(0..=self.policy.backoff_base_ms.max(1));
                std::thread::sleep(Duration::from_millis(backoff + jitter));
            }
            attempts += 1;
            match self.attempt(shard, attempt, &payload) {
                Ok((codec, bytes)) => match ShardResponse::decode(codec, &bytes) {
                    Ok(ShardResponse::Error { code, message }) => {
                        return Err(ShardCallError::Rejected {
                            shard,
                            code,
                            message,
                        });
                    }
                    Ok(response) => return Ok(response),
                    Err(message) => {
                        // Undecodable response payload: treat as a transport
                        // garbage failure and retry.
                        self.metrics.garbage.fetch_add(1, Ordering::Relaxed);
                        last = format!("undecodable response: {message}");
                    }
                },
                Err(error) => {
                    last = error.to_string();
                }
            }
        }
        Err(ShardCallError::Unreachable {
            shard,
            attempts,
            last,
        })
    }

    /// Handshakes every shard: each must answer a [`ShardRequest::Ping`]
    /// with matching fingerprints. Returns the first failure.
    pub fn ping_all(&self, graph_fp: u64, config_fp: u64) -> Result<(), ShardCallError> {
        let request = ShardRequest::Ping {
            graph_fp,
            config_fp,
        };
        for shard in 0..self.replicas.len() {
            match self.call(shard, &request)? {
                ShardResponse::Pong { .. } => {}
                other => {
                    return Err(ShardCallError::Rejected {
                        shard,
                        code: "bad_handshake".to_string(),
                        message: format!("expected pong, got {other:?}"),
                    });
                }
            }
        }
        Ok(())
    }
}
