//! Result types returned by the engine: estimate, confidence interval,
//! per-round traces and per-step timings.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One refinement round (Table IX's case-study rows).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Round number (1-based).
    pub round: usize,
    /// The estimate V̂ after this round.
    pub estimate: f64,
    /// The margin of error ε after this round.
    pub moe: f64,
    /// Total sample size |S_A| used in this round.
    pub sample_size: usize,
    /// Size of the validated subset |S⁺_A|.
    pub correct_size: usize,
}

/// Wall-clock time spent in each of the three steps of the online phase
/// (Table XII): S1 semantic-aware sampling, S2 approximate estimation
/// (including correctness validation), S3 accuracy guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepTimings {
    /// Sampling time in milliseconds (transition matrix + convergence + draws).
    pub sampling_ms: f64,
    /// Estimation time in milliseconds (validation + estimators).
    pub estimation_ms: f64,
    /// Accuracy-guarantee time in milliseconds (bootstrap CIs + Eq. 12).
    pub guarantee_ms: f64,
}

impl StepTimings {
    /// Total time across the three steps.
    pub fn total_ms(&self) -> f64 {
        self.sampling_ms + self.estimation_ms + self.guarantee_ms
    }
}

/// The answer to an approximate aggregate query.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The approximate aggregate V̂.
    pub estimate: f64,
    /// Margin of error ε of the confidence interval V̂ ± ε.
    pub moe: f64,
    /// The confidence level 1 − α of the interval.
    pub confidence: f64,
    /// Whether the error-bound guarantee of Theorem 2 was met before the
    /// round/sample caps were hit.
    pub guarantee_met: bool,
    /// Per-round refinement trace.
    pub rounds: Vec<RoundTrace>,
    /// GROUP-BY results (bucket index → estimate); empty without GROUP-BY.
    pub groups: BTreeMap<i64, f64>,
    /// Per-step timings.
    pub timings: StepTimings,
    /// Final sample size |S_A|.
    pub sample_size: usize,
    /// Number of candidate answers |A| seen by the sampler.
    pub candidate_count: usize,
    /// Total wall-clock time in milliseconds.
    pub elapsed_ms: f64,
    /// Shards whose strata could not contribute to this answer (remote
    /// execution only; always empty in-process). Non-empty means the
    /// estimate covers the surviving strata — a *degraded* answer with a
    /// wider interval rather than an error.
    pub missing_shards: Vec<usize>,
}

impl QueryAnswer {
    /// Whether any stratum was unreachable when this answer was assembled
    /// (see [`Self::missing_shards`]).
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }
    /// The confidence interval as a `(low, high)` pair.
    pub fn confidence_interval(&self) -> (f64, f64) {
        (self.estimate - self.moe, self.estimate + self.moe)
    }

    /// Relative error of the estimate against a known ground truth.
    pub fn relative_error(&self, ground_truth: f64) -> f64 {
        if ground_truth == 0.0 {
            if self.estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimate - ground_truth).abs() / ground_truth.abs()
        }
    }

    /// Number of refinement rounds executed.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(estimate: f64, moe: f64) -> QueryAnswer {
        QueryAnswer {
            estimate,
            moe,
            confidence: 0.95,
            guarantee_met: true,
            rounds: vec![RoundTrace {
                round: 1,
                estimate,
                moe,
                sample_size: 100,
                correct_size: 90,
            }],
            groups: BTreeMap::new(),
            timings: StepTimings {
                sampling_ms: 1.0,
                estimation_ms: 2.0,
                guarantee_ms: 3.0,
            },
            sample_size: 100,
            candidate_count: 500,
            elapsed_ms: 6.5,
            missing_shards: Vec::new(),
        }
    }

    #[test]
    fn interval_and_errors() {
        let a = answer(100.0, 5.0);
        assert_eq!(a.confidence_interval(), (95.0, 105.0));
        assert!((a.relative_error(104.0) - 4.0 / 104.0).abs() < 1e-12);
        assert_eq!(a.relative_error(0.0), f64::INFINITY);
        assert_eq!(answer(0.0, 0.0).relative_error(0.0), 0.0);
        assert_eq!(a.round_count(), 1);
        assert_eq!(a.timings.total_ms(), 6.0);
    }
}
