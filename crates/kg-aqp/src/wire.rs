//! JSON wire format for engine results, mirroring `kg_query::wire`.
//!
//! Answers cross process boundaries in the service layer, so
//! [`QueryAnswer`], [`RoundTrace`] and [`StepTimings`] get the same pinned
//! encoding treatment as the query types: field names match the struct
//! fields verbatim (what `serde`'s derive would emit), GROUP-BY keys are
//! stringified integers (serde's map-key convention), and decoding reports
//! the path of the first malformed field.

use crate::result::{QueryAnswer, RoundTrace, StepTimings};
use kg_query::wire::{as_bool, as_f64, as_usize, get_field, object};
use kg_query::WireError;
use serde_json::{Map, Value};
use std::collections::BTreeMap;

impl StepTimings {
    /// Encodes as `{"sampling_ms":..,"estimation_ms":..,"guarantee_ms":..}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("sampling_ms", Value::Number(self.sampling_ms)),
            ("estimation_ms", Value::Number(self.estimation_ms)),
            ("guarantee_ms", Value::Number(self.guarantee_ms)),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        let path = "timings";
        Ok(Self {
            sampling_ms: as_f64(
                get_field(value, path, "sampling_ms")?,
                &format!("{path}.sampling_ms"),
            )?,
            estimation_ms: as_f64(
                get_field(value, path, "estimation_ms")?,
                &format!("{path}.estimation_ms"),
            )?,
            guarantee_ms: as_f64(
                get_field(value, path, "guarantee_ms")?,
                &format!("{path}.guarantee_ms"),
            )?,
        })
    }
}

impl RoundTrace {
    /// Encodes as an object with the struct's field names.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("round", Value::Number(self.round as f64)),
            ("estimate", Value::Number(self.estimate)),
            ("moe", Value::Number(self.moe)),
            ("sample_size", Value::Number(self.sample_size as f64)),
            ("correct_size", Value::Number(self.correct_size as f64)),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        let path = "round";
        Ok(Self {
            round: as_usize(get_field(value, path, "round")?, &format!("{path}.round"))?,
            estimate: as_f64(
                get_field(value, path, "estimate")?,
                &format!("{path}.estimate"),
            )?,
            moe: as_f64(get_field(value, path, "moe")?, &format!("{path}.moe"))?,
            sample_size: as_usize(
                get_field(value, path, "sample_size")?,
                &format!("{path}.sample_size"),
            )?,
            correct_size: as_usize(
                get_field(value, path, "correct_size")?,
                &format!("{path}.correct_size"),
            )?,
        })
    }
}

impl QueryAnswer {
    /// Encodes as an object with the struct's field names; GROUP-BY keys are
    /// stringified bucket indices (serde's integer-map-key convention).
    pub fn to_json(&self) -> Value {
        let groups: Map<String, Value> = self
            .groups
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Number(*v)))
            .collect();
        object(vec![
            ("estimate", Value::Number(self.estimate)),
            ("moe", Value::Number(self.moe)),
            ("confidence", Value::Number(self.confidence)),
            ("guarantee_met", Value::Bool(self.guarantee_met)),
            // `degraded` is derived from `missing_shards` — emitted
            // separately so consumers can branch on one boolean without
            // knowing the shard topology.
            ("degraded", Value::Bool(self.is_degraded())),
            (
                "missing_shards",
                Value::Array(
                    self.missing_shards
                        .iter()
                        .map(|s| Value::Number(*s as f64))
                        .collect(),
                ),
            ),
            (
                "rounds",
                Value::Array(self.rounds.iter().map(RoundTrace::to_json).collect()),
            ),
            ("groups", Value::Object(groups)),
            ("timings", self.timings.to_json()),
            ("sample_size", Value::Number(self.sample_size as f64)),
            (
                "candidate_count",
                Value::Number(self.candidate_count as f64),
            ),
            ("elapsed_ms", Value::Number(self.elapsed_ms)),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        let path = "answer";
        let rounds = get_field(value, path, "rounds")?
            .as_array()
            .ok_or_else(|| WireError {
                path: format!("{path}.rounds"),
                expected: "an array".to_string(),
            })?
            .iter()
            .map(RoundTrace::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let groups_value = get_field(value, path, "groups")?
            .as_object()
            .ok_or_else(|| WireError {
                path: format!("{path}.groups"),
                expected: "an object".to_string(),
            })?;
        let mut groups = BTreeMap::new();
        for (key, v) in groups_value {
            let bucket: i64 = key.parse().map_err(|_| WireError {
                path: format!("{path}.groups.{key}"),
                expected: "an integer bucket key".to_string(),
            })?;
            groups.insert(bucket, as_f64(v, &format!("{path}.groups.{key}"))?);
        }
        let missing_shards = get_field(value, path, "missing_shards")?
            .as_array()
            .ok_or_else(|| WireError {
                path: format!("{path}.missing_shards"),
                expected: "an array".to_string(),
            })?
            .iter()
            .enumerate()
            .map(|(i, v)| as_usize(v, &format!("{path}.missing_shards[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            estimate: as_f64(
                get_field(value, path, "estimate")?,
                &format!("{path}.estimate"),
            )?,
            moe: as_f64(get_field(value, path, "moe")?, &format!("{path}.moe"))?,
            confidence: as_f64(
                get_field(value, path, "confidence")?,
                &format!("{path}.confidence"),
            )?,
            guarantee_met: as_bool(
                get_field(value, path, "guarantee_met")?,
                &format!("{path}.guarantee_met"),
            )?,
            rounds,
            groups,
            timings: StepTimings::from_json(get_field(value, path, "timings")?)?,
            sample_size: as_usize(
                get_field(value, path, "sample_size")?,
                &format!("{path}.sample_size"),
            )?,
            candidate_count: as_usize(
                get_field(value, path, "candidate_count")?,
                &format!("{path}.candidate_count"),
            )?,
            elapsed_ms: as_f64(
                get_field(value, path, "elapsed_ms")?,
                &format!("{path}.elapsed_ms"),
            )?,
            missing_shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer() -> QueryAnswer {
        let mut groups = BTreeMap::new();
        groups.insert(-2_i64, 12.5);
        groups.insert(3_i64, 40.0);
        QueryAnswer {
            estimate: 578.25,
            moe: 5.5,
            confidence: 0.95,
            guarantee_met: true,
            rounds: vec![
                RoundTrace {
                    round: 1,
                    estimate: 560.0,
                    moe: 21.0,
                    sample_size: 100,
                    correct_size: 88,
                },
                RoundTrace {
                    round: 2,
                    estimate: 578.25,
                    moe: 5.5,
                    sample_size: 240,
                    correct_size: 210,
                },
            ],
            groups,
            timings: StepTimings {
                sampling_ms: 1.25,
                estimation_ms: 2.5,
                guarantee_ms: 0.75,
            },
            sample_size: 240,
            candidate_count: 1900,
            elapsed_ms: 4.75,
            missing_shards: Vec::new(),
        }
    }

    #[test]
    fn answer_round_trips_through_json_text() {
        let a = answer();
        let text = serde_json::to_string(&a.to_json()).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let back = QueryAnswer::from_json(&parsed).unwrap();
        assert_eq!(back.estimate, a.estimate);
        assert_eq!(back.moe, a.moe);
        assert_eq!(back.confidence, a.confidence);
        assert_eq!(back.guarantee_met, a.guarantee_met);
        assert_eq!(back.rounds, a.rounds);
        assert_eq!(back.groups, a.groups);
        assert_eq!(back.timings, a.timings);
        assert_eq!(back.sample_size, a.sample_size);
        assert_eq!(back.candidate_count, a.candidate_count);
        assert_eq!(back.elapsed_ms, a.elapsed_ms);
        assert_eq!(back.missing_shards, a.missing_shards);
    }

    #[test]
    fn degraded_answers_flag_and_round_trip_the_missing_shards() {
        let mut a = answer();
        a.missing_shards = vec![1, 3];
        assert!(a.is_degraded());
        let json = a.to_json();
        assert_eq!(json["degraded"].as_bool(), Some(true));
        let back = QueryAnswer::from_json(&json).unwrap();
        assert_eq!(back.missing_shards, vec![1, 3]);
        assert!(back.is_degraded());
        assert_eq!(answer().to_json()["degraded"].as_bool(), Some(false));
    }

    /// Pins the wire field names so a service consumer can rely on them.
    #[test]
    fn answer_field_names_are_pinned() {
        let json = answer().to_json();
        let obj = json.as_object().unwrap();
        let keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            [
                "candidate_count",
                "confidence",
                "degraded",
                "elapsed_ms",
                "estimate",
                "groups",
                "guarantee_met",
                "missing_shards",
                "moe",
                "rounds",
                "sample_size",
                "timings",
            ]
        );
        let round = &json["rounds"][0];
        for field in ["round", "estimate", "moe", "sample_size", "correct_size"] {
            assert!(round.get(field).is_some(), "missing round field {field}");
        }
        for field in ["sampling_ms", "estimation_ms", "guarantee_ms"] {
            assert!(
                json["timings"].get(field).is_some(),
                "missing timing field {field}"
            );
        }
        assert_eq!(json["groups"]["-2"].as_f64(), Some(12.5));
    }

    #[test]
    fn malformed_answers_fail_with_paths() {
        let mut json = answer().to_json();
        if let Value::Object(map) = &mut json {
            map.remove("moe");
        }
        let err = QueryAnswer::from_json(&json).unwrap_err();
        assert_eq!(err.path, "answer.moe");

        let mut json = answer().to_json();
        if let Value::Object(map) = &mut json {
            map.insert("guarantee_met".to_string(), Value::Number(1.0));
        }
        let err = QueryAnswer::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("boolean"), "{err}");
    }
}
