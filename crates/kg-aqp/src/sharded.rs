//! Shard-parallel execution of the sampling–estimation loop.
//!
//! A [`ShardedSession`] runs one query against a [`ShardedGraph`]:
//!
//! * **Plan once, globally.** Decomposition, sampler preparation and the
//!   assembled answer distribution are exactly the unsharded plan — the
//!   random walk converges once against the full graph.
//! * **Sample per shard.** The answer distribution is split by shard
//!   ownership into strata ([`ShardSampler`]); each stratum draws from its
//!   re-normalised distribution with its **own RNG stream** (seeded from
//!   the engine seed and the shard id, so runs are reproducible per shard
//!   and independent across shards) and validates its draws — these
//!   per-shard refine steps fan out on the rayon pool. Attribute and
//!   filter reads of a stratum's answers go through the shard's local CSR
//!   graph; only the n-hop path validation reads the global graph (a
//!   matching path may cross shards).
//! * **Merge stratified.** Per-shard Horvitz–Thompson estimates and
//!   bootstrap replicates combine by stratified summation
//!   ([`kg_estimate::merge_strata`]): estimates add, variances add, and
//!   Theorem 2's termination test applies to the merged interval
//!   unchanged. Refinement budget for the next round goes to shards
//!   proportionally to their variance contribution (Neyman-style
//!   allocation) — samples are spent where the interval is widest.
//!
//! **K = 1 is the identity refactor**: a sharded session over a
//! single-shard graph *is* an [`InteractiveSession`] (same plan, same RNG
//! stream, same BLB interval), so its answers are bitwise-identical to the
//! unsharded engine — pinned by `tests/shard_equivalence.rs`.

use crate::config::EngineConfig;
use crate::engine::{AqpEngine, ComponentValidator, QueryPlan};
use crate::remote::session::RemoteSession;
use crate::result::{QueryAnswer, RoundTrace, StepTimings};
use crate::session::{
    validate_entity, validation_config, InteractiveSession, RoundOutcome, SharedValidationCache,
};
use kg_core::{EntityId, KgResult, ShardedGraph};
use kg_embed::PredicateSimilarity;
use kg_estimate::{
    additional_sample_size, allocate_proportional, merge_strata, satisfies_error_bound,
    stratified_point, StratumEstimate, ValidatedAnswer,
};
use kg_query::{matches_all, AggregateQuery};
use kg_sampling::{SamplerCache, ShardSampler, ShardSamplerCache};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Derives shard `k`'s RNG seed from the engine seed: distinct per shard,
/// deterministic run-to-run (shard membership itself is deterministic — the
/// partitioners tie-break by entity id), and equal to the engine seed for
/// shard 0 so the K=1 stream lines up with the unsharded one.
pub(crate) fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Minimum initial draws per non-empty stratum. A stratum sampled only a
/// handful of times can report zero observed variance (e.g. every draw
/// validated incorrect) even though its estimator is highly uncertain —
/// pure variance-proportional allocation would then starve it forever and
/// the merged interval would be overconfident about a biased estimate.
/// Matches the 16-draw floor of [`EngineConfig::initial_sample_size`].
pub(crate) const MIN_STRATUM_DRAWS: usize = 16;

/// Fraction of stratum mass blended into the Neyman weights each
/// refinement round, so every stratum keeps receiving a trickle of draws
/// and zero-observed-variance strata can reveal their true variance.
pub(crate) const EXPLORATION_FLOOR: f64 = 0.25;

/// Per-shard observability of one sharded session: how many draws each
/// shard performed and how long stratified merging took — the numbers that
/// make shard imbalance visible in `BatchStats` and the service `/metrics`.
#[derive(Clone, Debug, Default)]
pub struct ShardedStats {
    /// Cumulative sample draws per shard (indexed by shard id).
    pub per_shard_samples: Vec<usize>,
    /// Milliseconds spent combining per-shard estimates into the merged
    /// interval (the coordination overhead sharding adds).
    pub merge_ms: f64,
}

/// One stratum's mutable sampling state (shared with the remote shard
/// server, which replays the identical draw/validate/estimate sequence).
pub(crate) struct Stratum {
    pub(crate) shard: usize,
    pub(crate) sampler: Arc<ShardSampler>,
    pub(crate) rng: SmallRng,
    /// Draws so far: global entity id plus within-stratum probability π'_k.
    pub(crate) sample: Vec<(EntityId, f64)>,
    /// Validation outcomes per distinct entity (strata own disjoint
    /// candidates, so these caches never overlap across strata).
    pub(crate) validation: HashMap<EntityId, (bool, f64)>,
}

impl Stratum {
    /// A fresh stratum for `shard`, RNG-anchored at the engine seed exactly
    /// like [`open_sharded`] builds them.
    pub(crate) fn new(shard: usize, sampler: Arc<ShardSampler>, engine_seed: u64) -> Self {
        Self {
            shard,
            sampler,
            rng: SmallRng::seed_from_u64(shard_seed(engine_seed, shard)),
            sample: Vec::new(),
            validation: HashMap::new(),
        }
    }
}

/// Builds the validated sample of one stratum, reading attributes and
/// filters through the shard-local graph; entities absent from the
/// stratum's validation cache default to incorrect (the deadline-truncation
/// contract: drawn-but-not-yet-validated answers never contribute).
pub(crate) fn validated_sample(
    stratum: &Stratum,
    plan: &QueryPlan,
    sharded: &ShardedGraph,
) -> Vec<ValidatedAnswer> {
    let shard_graph = sharded.shard(stratum.shard).graph();
    stratum
        .sample
        .iter()
        .map(|(entity, probability)| {
            let (valid, similarity) = stratum
                .validation
                .get(entity)
                .copied()
                .unwrap_or((false, 0.0));
            let (_, local) = sharded.to_local(*entity);
            let passes_filters = matches_all(shard_graph, local, &plan.filters);
            ValidatedAnswer {
                probability: *probability,
                value: plan.aggregate.value_of(shard_graph, local),
                correct: valid && passes_filters,
                similarity,
            }
        })
        .collect()
}

/// The stratified counterpart of [`InteractiveSession`] (K ≥ 2).
struct StratifiedSession {
    config: EngineConfig,
    plan: QueryPlan,
    strata: Vec<Stratum>,
    shared_validation: Option<SharedValidationCache>,
    timings: StepTimings,
    rounds: Vec<RoundTrace>,
    merge_ms: f64,
    /// Per-stratum variance contributions from the last merge, driving the
    /// next round's Neyman allocation.
    last_variances: Vec<f64>,
    /// Whether the most recent round met the requested bound (Theorem 2).
    guarantee_met: bool,
}

enum Inner {
    /// K = 1: the identity refactor — the unsharded session, verbatim.
    Single(Box<InteractiveSession>),
    /// K ≥ 2: stratified execution.
    Stratified(Box<StratifiedSession>),
    /// Strata executed by remote shard servers (any K).
    Remote(Box<RemoteSession>),
}

/// Wraps a [`RemoteSession`] in the public session type (the remote module
/// cannot name [`Inner`] directly).
pub(crate) fn open_sharded_inner(session: RemoteSession) -> ShardedSession {
    ShardedSession {
        inner: Inner::Remote(Box::new(session)),
    }
}

/// An interactive query session over a sharded graph; see the
/// [module docs](self). Obtained from [`AqpEngine::open_sharded_session`]
/// or the sharded batch entry points; refined with [`Self::refine_to`] /
/// [`Self::refine_with`] exactly like an [`InteractiveSession`].
pub struct ShardedSession {
    inner: Inner,
}

/// Opens a session: plan once globally, then split into strata (or wrap the
/// unsharded session when K = 1).
pub(crate) fn open_sharded<S: PredicateSimilarity + ?Sized>(
    engine: &AqpEngine,
    sharded: &ShardedGraph,
    query: &AggregateQuery,
    similarity: &S,
    cache: Option<&SamplerCache>,
    shard_cache: Option<&ShardSamplerCache>,
    shared_validation: Option<SharedValidationCache>,
) -> KgResult<ShardedSession> {
    let config = engine.config().clone();
    let plan = engine.plan_with_cache(sharded.global(), query, similarity, cache)?;
    if sharded.shard_count() == 1 {
        return Ok(ShardedSession {
            inner: Inner::Single(Box::new(InteractiveSession::with_shared_validation(
                config,
                plan,
                shared_validation,
            ))),
        });
    }

    // A plan with exactly one simple component has a distribution that is a
    // pure (deterministic) function of that component, so its per-shard
    // restrictions can be memoised across the queries of a batch keyed by
    // the prepared sampler's identity.
    let component_key = match plan.components.as_slice() {
        [single] => match &single.validator {
            ComponentValidator::Simple { sampler, .. } => Some(Arc::as_ptr(sampler) as usize),
            ComponentValidator::Chain { .. } => None,
        },
        _ => None,
    };
    let strata = (0..sharded.shard_count())
        .map(|shard| {
            let owned = |e: EntityId| sharded.shard_of(e) == shard;
            let sampler = match (shard_cache, component_key) {
                (Some(shard_cache), Some(key)) => {
                    shard_cache.get_or_insert_with(key, sharded.partition_id(), shard, || {
                        ShardSampler::from_distribution(shard, &plan.distribution, owned)
                    })
                }
                _ => Arc::new(ShardSampler::from_distribution(
                    shard,
                    &plan.distribution,
                    owned,
                )),
            };
            Stratum::new(shard, sampler, config.seed)
        })
        .collect();
    let mut timings = StepTimings::default();
    timings.sampling_ms += plan.plan_ms;
    let shard_count = sharded.shard_count();
    Ok(ShardedSession {
        inner: Inner::Stratified(Box::new(StratifiedSession {
            config,
            plan,
            strata,
            shared_validation,
            timings,
            rounds: Vec::new(),
            merge_ms: 0.0,
            last_variances: vec![0.0; shard_count],
            guarantee_met: false,
        })),
    })
}

impl ShardedSession {
    /// Number of candidate answers the plan found.
    pub fn candidate_count(&self) -> usize {
        match &self.inner {
            Inner::Single(s) => s.candidate_count(),
            Inner::Stratified(s) => s.plan.candidate_count,
            Inner::Remote(s) => s.candidate_count(),
        }
    }

    /// Current total sample size across all shards.
    pub fn sample_size(&self) -> usize {
        match &self.inner {
            Inner::Single(s) => s.sample_size(),
            Inner::Stratified(s) => s.total_sample(),
            Inner::Remote(s) => s.total_draws(),
        }
    }

    /// Number of shards this session executes over.
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Stratified(s) => s.strata.len(),
            Inner::Remote(s) => s.shard_count(),
        }
    }

    /// Per-shard sample counts and merge overhead accumulated so far.
    pub fn sharded_stats(&self) -> ShardedStats {
        match &self.inner {
            Inner::Single(s) => ShardedStats {
                per_shard_samples: vec![s.sample_size()],
                merge_ms: 0.0,
            },
            Inner::Stratified(s) => ShardedStats {
                per_shard_samples: s.per_shard_samples(),
                merge_ms: s.merge_ms,
            },
            Inner::Remote(s) => ShardedStats {
                per_shard_samples: s.per_shard_samples(),
                merge_ms: s.merge_ms(),
            },
        }
    }

    /// Runs (or continues) refinement until Theorem 2 holds for
    /// `error_bound` at the session's configured confidence.
    pub fn refine_to<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
    ) -> QueryAnswer {
        let confidence = match &self.inner {
            Inner::Single(s) => s.confidence(),
            Inner::Stratified(s) => s.config.confidence,
            Inner::Remote(s) => s.config().confidence,
        };
        self.refine_with(sharded, similarity, error_bound, confidence)
    }

    /// [`Self::refine_to`] with a per-call confidence level (the sharded
    /// counterpart of [`InteractiveSession::refine_with`]).
    pub fn refine_with<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> QueryAnswer {
        match &mut self.inner {
            Inner::Single(s) => {
                s.refine_with(sharded.global(), similarity, error_bound, confidence)
            }
            Inner::Stratified(s) => s.refine_with(sharded, similarity, error_bound, confidence),
            Inner::Remote(s) => s.refine_with(error_bound, confidence),
        }
    }

    /// Runs exactly one refinement round (the sharded counterpart of
    /// [`InteractiveSession::step_with`]): driving this in a loop of up to
    /// `max_rounds` iterations is operation-for-operation identical to one
    /// [`Self::refine_with`] call, so a deadline scheduler that stops at a
    /// round boundary observes exactly the estimate a full refinement would
    /// have produced at that round.
    pub fn step_with<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> RoundOutcome {
        match &mut self.inner {
            Inner::Single(s) => s.step_with(sharded.global(), similarity, error_bound, confidence),
            Inner::Stratified(s) => s.step_with(sharded, similarity, error_bound, confidence),
            Inner::Remote(s) => s.step_with(error_bound, confidence),
        }
    }

    /// The best-so-far answer at the current round boundary (estimate,
    /// merged interval, trace, GROUP-BY buckets), without running any
    /// further rounds. `guarantee_met` reflects the last completed round.
    pub fn snapshot_answer(&self, sharded: &ShardedGraph) -> QueryAnswer {
        match &self.inner {
            Inner::Single(s) => s.snapshot_answer(sharded.global()),
            Inner::Stratified(s) => s.snapshot_answer(sharded),
            Inner::Remote(s) => s.snapshot_answer(),
        }
    }

    /// Number of refinement rounds completed so far on this session.
    pub fn rounds_completed(&self) -> usize {
        match &self.inner {
            Inner::Single(s) => s.rounds_completed(),
            Inner::Stratified(s) => s.rounds.len(),
            Inner::Remote(s) => s.rounds_completed(),
        }
    }

    /// Deadline-aware refinement driver: steps rounds exactly like
    /// [`Self::refine_with`] but stops at the first round boundary at or
    /// past `deadline`, returning the best-so-far answer and whether the
    /// deadline truncated refinement (`true` iff more rounds would have
    /// run). Because the check happens only *between* rounds, a truncated
    /// answer is bitwise-identical to what a fresh refinement produces at
    /// the same round count — anytime semantics with no new code path
    /// through the estimators.
    pub fn refine_deadline<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
        deadline: Instant,
    ) -> (QueryAnswer, bool) {
        let mut truncated = false;
        for _round in 0..self.max_rounds() {
            if self.step_with(sharded, similarity, error_bound, confidence)
                != RoundOutcome::Continue
            {
                break;
            }
            if Instant::now() >= deadline {
                truncated = true;
                break;
            }
        }
        (self.snapshot_answer(sharded), truncated)
    }

    /// The configured per-request round cap (`max_rounds`, at least 1).
    pub fn max_rounds(&self) -> usize {
        let config = match &self.inner {
            Inner::Single(s) => s.engine_config(),
            Inner::Stratified(s) => &s.config,
            Inner::Remote(s) => s.config(),
        };
        config.max_rounds.max(1)
    }
}

impl StratifiedSession {
    fn total_sample(&self) -> usize {
        self.strata.iter().map(|s| s.sample.len()).sum()
    }

    fn per_shard_samples(&self) -> Vec<usize> {
        self.strata.iter().map(|s| s.sample.len()).collect()
    }

    /// Draws `allocation[i]` answers into stratum `i`.
    fn draw(&mut self, allocation: &[usize]) {
        let start = Instant::now();
        for (stratum, &count) in self.strata.iter_mut().zip(allocation) {
            if count == 0 {
                continue;
            }
            let drawn = stratum.sampler.draw(&mut stratum.rng, count);
            stratum
                .sample
                .extend(drawn.iter().map(|a| (a.entity, a.probability)));
        }
        self.timings.sampling_ms += start.elapsed().as_secs_f64() * 1e3;
    }

    fn refine_with<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> QueryAnswer {
        let wall = Instant::now();
        for _round in 0..self.config.max_rounds.max(1) {
            if self.step_with(sharded, similarity, error_bound, confidence)
                != RoundOutcome::Continue
            {
                break;
            }
        }
        let mut answer = self.snapshot_answer(sharded);
        answer.elapsed_ms = wall.elapsed().as_secs_f64() * 1e3 + self.plan.plan_ms;
        answer
    }

    /// One round of the stratified loop: per-shard validate + estimate +
    /// bootstrap fanned out on the rayon pool, stratified merge, round
    /// trace, then the Neyman-allocated draw for the next round (unless
    /// done). The stratified counterpart of
    /// [`InteractiveSession::step_with`] — identical operation and RNG
    /// sequence to one iteration of the old monolithic refine loop.
    fn step_with<S: PredicateSimilarity + ?Sized + Sync>(
        &mut self,
        sharded: &ShardedGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> RoundOutcome {
        self.config.confidence = confidence;
        if self.total_sample() == 0 {
            let initial = self.config.initial_sample_size(self.plan.candidate_count);
            let weights: Vec<f64> = self.strata.iter().map(|s| s.sampler.weight()).collect();
            let mut allocation = allocate_proportional(initial, &weights);
            for (alloc, stratum) in allocation.iter_mut().zip(&self.strata) {
                if !stratum.sampler.is_empty() {
                    *alloc = (*alloc).max(MIN_STRATUM_DRAWS);
                }
            }
            self.draw(&allocation);
        }

        let validation = validation_config(&self.config);
        // Stratified intervals use a plain per-stratum bootstrap (resample
        // size n_k): replicates merge across strata replicate-wise, so the
        // merged interval needs no subsample machinery — and the guarantee
        // step costs `resamples`·n draws instead of BLB's t·`resamples`·n.
        let resamples = self.config.bootstrap.resamples.max(2);

        // Fan the per-shard refine step (validate, estimate, bootstrap)
        // out across the rayon pool; strata are mutually disjoint.
        let plan = &self.plan;
        let config = &self.config;
        let shared = self.shared_validation.as_ref();
        let per_stratum: Vec<(StratumEstimate, f64, f64)> = self
            .strata
            .par_iter_mut()
            .map(|stratum| {
                let global = sharded.global();
                let validate_start = Instant::now();
                for i in 0..stratum.sample.len() {
                    let entity = stratum.sample[i].0;
                    if stratum.validation.contains_key(&entity) {
                        continue;
                    }
                    let outcome = validate_entity(
                        plan,
                        config.validate,
                        &validation,
                        global,
                        similarity,
                        entity,
                        shared,
                    );
                    stratum.validation.insert(entity, outcome);
                }
                let validated = validated_sample(stratum, plan, sharded);
                let validate_ms = validate_start.elapsed().as_secs_f64() * 1e3;
                let bootstrap_start = Instant::now();
                let summary = StratumEstimate::compute(
                    &plan.aggregate,
                    &validated,
                    resamples,
                    &mut stratum.rng,
                );
                let bootstrap_ms = bootstrap_start.elapsed().as_secs_f64() * 1e3;
                (summary, validate_ms, bootstrap_ms)
            })
            .collect();

        self.timings.estimation_ms += per_stratum.iter().map(|(_, v, _)| v).sum::<f64>();
        self.timings.guarantee_ms += per_stratum.iter().map(|(_, _, b)| b).sum::<f64>();
        let summaries: Vec<StratumEstimate> = per_stratum.into_iter().map(|(s, _, _)| s).collect();

        let merge_start = Instant::now();
        let merged = merge_strata(&self.plan.aggregate, &summaries, self.config.confidence);
        let estimate_value = merged.estimate;
        let moe = merged.moe;
        self.last_variances = merged.variances;
        let satisfied = satisfies_error_bound(estimate_value, moe, error_bound);
        let merge_elapsed = merge_start.elapsed().as_secs_f64() * 1e3;
        self.merge_ms += merge_elapsed;
        self.timings.guarantee_ms += merge_elapsed;

        self.rounds.push(RoundTrace {
            round: self.rounds.len() + 1,
            estimate: estimate_value,
            moe,
            sample_size: merged.sample_size,
            correct_size: merged.correct,
        });
        kg_telemetry::point(
            "aqp.round",
            &[
                ("round", self.rounds.len().into()),
                ("estimate", estimate_value.into()),
                ("moe", moe.into()),
                ("sample_size", merged.sample_size.into()),
                ("correct_size", merged.correct.into()),
                ("shards", self.strata.len().into()),
                ("merge_ms", merge_elapsed.into()),
            ],
        );

        if satisfied || self.plan.distribution.is_empty() {
            self.guarantee_met = satisfied;
            return if satisfied {
                RoundOutcome::Satisfied
            } else {
                RoundOutcome::Exhausted
            };
        }
        let total = self.total_sample();
        if total >= self.config.max_sample_size {
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }
        let delta = match self.config.fixed_increment {
            Some(fixed) => fixed,
            None => additional_sample_size(
                total,
                moe,
                estimate_value,
                error_bound,
                self.config.bootstrap.blb_exponent,
                self.config.max_sample_size - total,
            ),
        };
        if delta == 0 {
            self.guarantee_met = true;
            return RoundOutcome::Satisfied;
        }
        let delta = delta.min(self.config.max_sample_size - total);
        // Neyman-style allocation: draws go to shards proportionally to
        // their variance contribution, blended with a small fraction of
        // stratum mass (see [`EXPLORATION_FLOOR`]); when every stratum
        // reports zero variance (degenerate round), fall back to mass
        // alone.
        let var_total: f64 = self.last_variances.iter().sum();
        let weights: Vec<f64> = self
            .strata
            .iter()
            .zip(&self.last_variances)
            .map(|(stratum, &var)| {
                let mass = stratum.sampler.weight();
                if var_total > 0.0 {
                    var / var_total + EXPLORATION_FLOOR * mass
                } else {
                    mass
                }
            })
            .collect();
        let allocation = allocate_proportional(delta, &weights);
        if kg_telemetry::enabled() {
            let per_shard = allocation
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            kg_telemetry::point(
                "aqp.allocation",
                &[
                    ("round", self.rounds.len().into()),
                    ("delta", delta.into()),
                    ("per_shard", per_shard.into()),
                ],
            );
        }
        if allocation.iter().sum::<usize>() == 0 {
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }
        self.draw(&allocation);
        self.guarantee_met = false;
        RoundOutcome::Continue
    }

    /// Assembles a [`QueryAnswer`] from the current merged state (the
    /// stratified counterpart of [`InteractiveSession::snapshot_answer`]).
    fn snapshot_answer(&self, sharded: &ShardedGraph) -> QueryAnswer {
        let (estimate_value, moe) = self
            .rounds
            .last()
            .map(|r| (r.estimate, r.moe))
            .unwrap_or((0.0, 0.0));

        // Merged GROUP-BY: per bucket, each stratum contributes its HT terms
        // over the full stratum draw list with out-of-bucket draws marked
        // incorrect (the stratified analogue of the unsharded per-bucket
        // estimator — per-bucket COUNT/SUM still sum to the top-level
        // estimate, up to answers missing the grouping attribute).
        let groups = match self.plan.group_by {
            None => BTreeMap::new(),
            Some((attr, width)) => {
                let keyed: Vec<Vec<(Option<i64>, ValidatedAnswer)>> = self
                    .strata
                    .iter()
                    .map(|stratum| {
                        let shard_graph = sharded.shard(stratum.shard).graph();
                        validated_sample(stratum, &self.plan, sharded)
                            .into_iter()
                            .zip(&stratum.sample)
                            .map(|(answer, (entity, _))| {
                                let (_, local) = sharded.to_local(*entity);
                                let key = shard_graph
                                    .attribute_value(local, attr)
                                    .map(|v| (v / width).floor() as i64);
                                (key, answer)
                            })
                            .collect()
                    })
                    .collect();
                let keys: BTreeSet<i64> = keyed
                    .iter()
                    .flatten()
                    .filter(|(_, a)| a.correct)
                    .filter_map(|(k, _)| *k)
                    .collect();
                keys.into_iter()
                    .map(|key| {
                        let bucket_strata: Vec<Vec<ValidatedAnswer>> = keyed
                            .iter()
                            .map(|stratum| {
                                stratum
                                    .iter()
                                    .map(|(k, a)| ValidatedAnswer {
                                        correct: a.correct && *k == Some(key),
                                        ..*a
                                    })
                                    .collect()
                            })
                            .collect();
                        let refs: Vec<&[ValidatedAnswer]> =
                            bucket_strata.iter().map(Vec::as_slice).collect();
                        (key, stratified_point(&self.plan.aggregate, &refs))
                    })
                    .collect()
            }
        };

        QueryAnswer {
            estimate: estimate_value,
            moe,
            confidence: self.config.confidence,
            guarantee_met: self.guarantee_met,
            rounds: self.rounds.clone(),
            groups,
            timings: self.timings,
            sample_size: self.total_sample(),
            candidate_count: self.plan.candidate_count,
            elapsed_ms: self.timings.total_ms(),
            missing_shards: Vec::new(),
        }
    }
}

// Sharded sessions cross worker threads in the service result cache.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ShardedSession>();
};

impl AqpEngine {
    /// Opens a [`ShardedSession`]: the sharded counterpart of
    /// [`AqpEngine::open_session`]. With a single-shard graph the session
    /// *is* the unsharded session (bitwise-identical answers).
    pub fn open_sharded_session<S: PredicateSimilarity + ?Sized>(
        &self,
        sharded: &ShardedGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<ShardedSession> {
        open_sharded(self, sharded, query, similarity, None, None, None)
    }

    /// Executes one query over a sharded graph until the Theorem-2
    /// guarantee holds for the merged interval: the sharded counterpart of
    /// [`AqpEngine::execute`].
    pub fn execute_sharded<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        sharded: &ShardedGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<QueryAnswer> {
        let mut session = self.open_sharded_session(sharded, query, similarity)?;
        Ok(session.refine_to(sharded, similarity, self.config().error_bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_are_distinct_and_anchor_at_the_engine_seed() {
        let seed = 0xA96_5EED;
        assert_eq!(shard_seed(seed, 0), seed);
        let seeds: std::collections::HashSet<u64> = (0..16).map(|k| shard_seed(seed, k)).collect();
        assert_eq!(seeds.len(), 16);
    }
}
