//! Batch execution: answer many aggregate queries over one graph in a
//! single call, amortising planning work across the batch.
//!
//! Much of the per-query cost of [`AqpEngine::execute`] is per-component,
//! not per-query: preparing a sampler (building the n-bounded scope and
//! iterating the random walk of Eq. 6 to convergence) and validating each
//! sampled answer. Realistic workloads repeat components — a plain query
//! and its filtered / GROUP-BY / aggregate variants all share one
//! underlying simple query, chain planning re-anchors the same hop
//! queries, and dashboards re-issue the same shapes with different
//! operators. [`BatchEngine`] plans the whole batch against a shared
//! [`SamplerCache`] (each distinct component is prepared exactly once),
//! shares a validation cache across the batch's sessions, and fans the
//! per-query sampling–estimation loops out on the rayon pool.
//!
//! Batched answers are **bitwise-identical** to the serial per-query loop
//! for a fixed seed: every query still runs its own
//! [`InteractiveSession`] seeded from the engine configuration, and the
//! only shared state — prepared samplers and validation outcomes — is the
//! result of deterministic computation, so sharing changes who computes a
//! value, never the value.
//!
//! ```
//! use kg_aqp::{BatchEngine, EngineConfig};
//! use kg_datagen::{generate, domains, DatasetScale, GeneratorConfig};
//! use kg_query::{AggregateFunction, AggregateQuery, Filter, SimpleQuery};
//!
//! let dataset = generate(&GeneratorConfig::new(
//!     "batch-demo", DatasetScale::tiny(), vec![domains::automotive(&["Germany", "China"])], 7));
//! let simple = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
//! let queries = vec![
//!     AggregateQuery::simple(simple.clone(), AggregateFunction::Count),
//!     AggregateQuery::simple(simple.clone(), AggregateFunction::Avg("price".into()))
//!         .with_filter(Filter::range("price", 10_000.0, 80_000.0)),
//! ];
//! let batch = BatchEngine::new(EngineConfig::default());
//! let (answers, stats) = batch.execute_with_stats(&dataset.graph, &queries, &dataset.oracle);
//! assert_eq!(answers.len(), 2);
//! assert!(answers.iter().all(|a| a.is_ok()));
//! // Both queries share one component: it is prepared once and reused.
//! assert_eq!(stats.sampler_cache.misses, 1);
//! assert_eq!(stats.sampler_cache.hits, 1);
//! ```

use crate::config::EngineConfig;
use crate::engine::AqpEngine;
use crate::result::QueryAnswer;
use crate::session::{InteractiveSession, SharedValidationCache};
use crate::sharded::{ShardedSession, ShardedStats};
use kg_core::{KgResult, KnowledgeGraph, ShardedGraph};
use kg_embed::PredicateSimilarity;
use kg_query::AggregateQuery;
use kg_sampling::{CacheStats, SamplerCache, ShardSamplerCache};
use rayon::prelude::*;
use std::sync::Arc;

/// Exact nearest-rank percentile over latency samples (`q` in `[0, 1]`),
/// tolerant of unsorted input and returning 0 for an empty set.
///
/// Retained as the *reference implementation*: production call sites
/// ([`BatchStats`], the service metrics snapshot, the load-generator
/// report) now go through [`kg_telemetry::Histogram`], which records
/// lock-free and answers quantiles from fixed buckets instead of sorting
/// the whole `Vec` per call. The histogram parity test in this module
/// pins that both agree up to bucket resolution, which is why this exact
/// path sticks around.
pub fn latency_percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// What the batch planner did, for reporting and regression tests.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of queries whose planning failed (their slot holds an `Err`).
    pub failures: usize,
    /// Sampler-cache hit/miss counters: `misses` is the number of distinct
    /// simple components actually prepared, `hits` the preparations saved
    /// relative to the serial per-query loop.
    pub sampler_cache: CacheStats,
    /// Wall-clock milliseconds per query, in input order (planning plus the
    /// sampling–estimation loop). Queries whose planning failed hold `NaN`
    /// so the slot-to-query alignment survives without zeros dragging the
    /// percentiles down. Filled by [`BatchEngine::execute_with_stats`];
    /// empty when only sessions were opened.
    pub per_query_ms: Vec<f64>,
    /// Cumulative sample draws per shard across the batch (indexed by shard
    /// id), making shard imbalance observable. Empty for unsharded
    /// execution; filled by [`BatchEngine::execute_sharded_with_stats`].
    pub shard_samples: Vec<u64>,
    /// Total milliseconds spent merging per-shard estimates into one
    /// interval across the batch (the coordination overhead sharded
    /// execution adds on top of the per-shard refine work). 0 when
    /// unsharded.
    pub merge_overhead_ms: f64,
}

impl BatchStats {
    /// Nearest-rank percentile of the per-query latencies (`q` in `[0, 1]`),
    /// over successful queries only (failure slots hold `NaN`), resolved on
    /// the shared log2 latency ladder (no per-call sort; quantiles report
    /// the upper edge of the bucket holding the rank).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.latency_histogram().quantile(q)
    }

    /// The per-query latencies bucketed on the shared
    /// [`kg_telemetry::Histogram::latency_log2`] ladder (failure slots
    /// hold `NaN` and are skipped).
    pub fn latency_histogram(&self) -> kg_telemetry::Histogram {
        let hist = kg_telemetry::Histogram::latency_log2();
        hist.observe_finite(self.per_query_ms.iter().copied());
        hist
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries ({} failed), sampler cache {} hits / {} misses ({:.0}% hit rate)",
            self.queries,
            self.failures,
            self.sampler_cache.hits,
            self.sampler_cache.misses,
            self.sampler_cache.hit_rate() * 100.0,
        )?;
        if !self.per_query_ms.is_empty() {
            write!(
                f,
                ", latency ms p50={:.2} p95={:.2} p99={:.2}",
                self.percentile_ms(0.50),
                self.percentile_ms(0.95),
                self.percentile_ms(0.99),
            )?;
        }
        if !self.shard_samples.is_empty() {
            write!(
                f,
                ", shard samples {:?}, merge overhead {:.2} ms",
                self.shard_samples, self.merge_overhead_ms,
            )?;
        }
        Ok(())
    }
}

/// Executes slices of aggregate queries with shared planning.
///
/// See the [module documentation](self) for the amortisation model and the
/// determinism guarantee relative to [`AqpEngine::execute`].
#[derive(Clone, Debug)]
pub struct BatchEngine {
    engine: AqpEngine,
}

impl BatchEngine {
    /// Creates a batch engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            engine: AqpEngine::new(config),
        }
    }

    /// Wraps an existing engine (same configuration, batched surface).
    pub fn from_engine(engine: AqpEngine) -> Self {
        Self { engine }
    }

    /// The wrapped per-query engine.
    pub fn engine(&self) -> &AqpEngine {
        &self.engine
    }

    /// Executes every query in `queries`, returning one result per query in
    /// input order. Equivalent to calling [`AqpEngine::execute`] in a loop,
    /// but each distinct simple component is prepared once and the per-query
    /// sampling–estimation loops run on the rayon pool.
    pub fn execute<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> Vec<KgResult<QueryAnswer>> {
        self.execute_with_stats(graph, queries, similarity).0
    }

    /// [`Self::execute`] plus the planner's cache statistics.
    pub fn execute_with_stats<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> (Vec<KgResult<QueryAnswer>>, BatchStats) {
        let config = self.engine.config();
        let cache = SamplerCache::new(config.strategy, config.sampler_config());
        self.execute_with_stats_cached(graph, queries, similarity, &cache)
    }

    /// [`Self::execute_with_stats`] against a caller-owned [`SamplerCache`],
    /// so prepared components survive beyond one batch (the service keeps a
    /// cache alive for its whole lifetime). The reported cache stats cover
    /// only this call, not the cache's history. Answers are identical to the
    /// fresh-cache path: sampler preparation is deterministic, so a cache
    /// carried across batches changes who prepares a sampler, never its
    /// value.
    pub fn execute_with_stats_cached<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
        cache: &SamplerCache,
    ) -> (Vec<KgResult<QueryAnswer>>, BatchStats) {
        let (sessions, mut stats) =
            self.open_sessions_with_stats(graph, queries, similarity, cache);
        let error_bound = self.engine.config().error_bound;
        let answers: Vec<KgResult<QueryAnswer>> = sessions
            .into_par_iter()
            .map(|session| session.map(|mut s| s.refine_to(graph, similarity, error_bound)))
            .collect();
        stats.per_query_ms = answers
            .iter()
            .map(|a| {
                a.as_ref()
                    .map(|answer| answer.elapsed_ms)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        (answers, stats)
    }

    /// Opens one interactive session per query with shared planning, so a
    /// caller can refine the error bound of each query incrementally (the
    /// batched counterpart of [`AqpEngine::open_session`]).
    pub fn open_sessions<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> Vec<KgResult<InteractiveSession>> {
        let config = self.engine.config();
        let cache = SamplerCache::new(config.strategy, config.sampler_config());
        self.open_sessions_with_stats(graph, queries, similarity, &cache)
            .0
    }

    /// [`Self::open_sessions`] against a caller-owned [`SamplerCache`] (see
    /// [`Self::execute_with_stats_cached`] for why sharing is sound).
    pub fn open_sessions_cached<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
        cache: &SamplerCache,
    ) -> (Vec<KgResult<InteractiveSession>>, BatchStats) {
        self.open_sessions_with_stats(graph, queries, similarity, cache)
    }

    fn open_sessions_with_stats<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
        cache: &SamplerCache,
    ) -> (Vec<KgResult<InteractiveSession>>, BatchStats) {
        let config = self.engine.config();
        let cache_before = cache.stats();
        // One validation cache for the whole batch: queries sharing a
        // component (hence a cached sampler) validate each sampled entity
        // once instead of once per query.
        let shared_validation = SharedValidationCache::default();
        let sessions: Vec<KgResult<InteractiveSession>> = queries
            .iter()
            .map(|query| {
                self.engine
                    .plan_with_cache(graph, query, similarity, Some(cache))
                    .map(|plan| {
                        InteractiveSession::with_shared_validation(
                            config.clone(),
                            plan,
                            Some(Arc::clone(&shared_validation)),
                        )
                    })
            })
            .collect();
        let cache_after = cache.stats();
        let stats = BatchStats {
            queries: queries.len(),
            failures: sessions.iter().filter(|s| s.is_err()).count(),
            sampler_cache: CacheStats {
                hits: cache_after.hits - cache_before.hits,
                misses: cache_after.misses - cache_before.misses,
            },
            ..BatchStats::default()
        };
        (sessions, stats)
    }

    // ------------------------------------------------------------------
    // Sharded execution
    // ------------------------------------------------------------------

    /// Executes every query against a sharded graph, one merged answer per
    /// query in input order: the sharded counterpart of [`Self::execute`].
    /// With a single-shard graph the answers are bitwise-identical to
    /// [`Self::execute`].
    pub fn execute_sharded<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        sharded: &ShardedGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> Vec<KgResult<QueryAnswer>> {
        self.execute_sharded_with_stats(sharded, queries, similarity)
            .0
    }

    /// [`Self::execute_sharded`] plus batch statistics, including the
    /// per-shard sample counts and stratified-merge overhead.
    pub fn execute_sharded_with_stats<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        sharded: &ShardedGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> (Vec<KgResult<QueryAnswer>>, BatchStats) {
        let config = self.engine.config();
        let cache = SamplerCache::new(config.strategy, config.sampler_config());
        let shard_cache = ShardSamplerCache::new();
        self.execute_sharded_with_stats_cached(sharded, queries, similarity, &cache, &shard_cache)
    }

    /// [`Self::execute_sharded_with_stats`] against caller-owned caches (the
    /// service keeps both alive for its lifetime; see
    /// [`Self::execute_with_stats_cached`] for why sharing is sound).
    pub fn execute_sharded_with_stats_cached<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        sharded: &ShardedGraph,
        queries: &[AggregateQuery],
        similarity: &S,
        cache: &SamplerCache,
        shard_cache: &ShardSamplerCache,
    ) -> (Vec<KgResult<QueryAnswer>>, BatchStats) {
        let (sessions, mut stats) =
            self.open_sharded_sessions_cached(sharded, queries, similarity, cache, shard_cache);
        let error_bound = self.engine.config().error_bound;
        let results: Vec<KgResult<(QueryAnswer, ShardedStats)>> = sessions
            .into_par_iter()
            .map(|session| {
                session.map(|mut s| {
                    let answer = s.refine_to(sharded, similarity, error_bound);
                    let sharded_stats = s.sharded_stats();
                    (answer, sharded_stats)
                })
            })
            .collect();
        let mut shard_samples = vec![0u64; sharded.shard_count()];
        let mut merge_overhead_ms = 0.0;
        let mut answers = Vec::with_capacity(results.len());
        let mut per_query_ms = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok((answer, sharded_stats)) => {
                    for (shard, &n) in sharded_stats.per_shard_samples.iter().enumerate() {
                        shard_samples[shard] += n as u64;
                    }
                    merge_overhead_ms += sharded_stats.merge_ms;
                    per_query_ms.push(answer.elapsed_ms);
                    answers.push(Ok(answer));
                }
                Err(e) => {
                    per_query_ms.push(f64::NAN);
                    answers.push(Err(e));
                }
            }
        }
        stats.per_query_ms = per_query_ms;
        stats.shard_samples = shard_samples;
        stats.merge_overhead_ms = merge_overhead_ms;
        (answers, stats)
    }

    /// Opens one [`ShardedSession`] per query with shared planning, a shared
    /// validation cache, and shared per-shard restrictions: the sharded
    /// counterpart of [`Self::open_sessions_cached`].
    pub fn open_sharded_sessions_cached<S: PredicateSimilarity + ?Sized>(
        &self,
        sharded: &ShardedGraph,
        queries: &[AggregateQuery],
        similarity: &S,
        cache: &SamplerCache,
        shard_cache: &ShardSamplerCache,
    ) -> (Vec<KgResult<ShardedSession>>, BatchStats) {
        let cache_before = cache.stats();
        let shared_validation = SharedValidationCache::default();
        let sessions: Vec<KgResult<ShardedSession>> = queries
            .iter()
            .map(|query| {
                crate::sharded::open_sharded(
                    &self.engine,
                    sharded,
                    query,
                    similarity,
                    Some(cache),
                    Some(shard_cache),
                    Some(Arc::clone(&shared_validation)),
                )
            })
            .collect();
        let cache_after = cache.stats();
        let stats = BatchStats {
            queries: queries.len(),
            failures: sessions.iter().filter(|s| s.is_err()).count(),
            sampler_cache: CacheStats {
                hits: cache_after.hits - cache_before.hits,
                misses: cache_after.misses - cache_before.misses,
            },
            ..BatchStats::default()
        };
        (sessions, stats)
    }
}

impl AqpEngine {
    /// Executes a slice of queries with shared planning; see [`BatchEngine`].
    pub fn execute_batch<S: PredicateSimilarity + ?Sized + Sync>(
        &self,
        graph: &KnowledgeGraph,
        queries: &[AggregateQuery],
        similarity: &S,
    ) -> Vec<KgResult<QueryAnswer>> {
        BatchEngine::from_engine(self.clone()).execute(graph, queries, similarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
    use kg_query::{
        AggregateFunction, ChainHop, ChainQuery, ComplexQuery, Filter, GroupBy, SimpleQuery,
    };

    fn dataset() -> kg_datagen::GeneratedDataset {
        generate(&GeneratorConfig::new(
            "batch-test",
            DatasetScale::tiny(),
            vec![domains::automotive(&["Germany", "China"])],
            17,
        ))
    }

    fn workload() -> Vec<AggregateQuery> {
        let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
        let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
        vec![
            AggregateQuery::simple(de.clone(), AggregateFunction::Count),
            AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
            AggregateQuery::simple(de.clone(), AggregateFunction::Count)
                .with_filter(Filter::range("price", 15_000.0, 60_000.0)),
            AggregateQuery::simple(de.clone(), AggregateFunction::Count)
                .with_group_by(GroupBy::new("price", 30_000.0)),
            AggregateQuery::simple(cn.clone(), AggregateFunction::Count),
            AggregateQuery::simple(cn, AggregateFunction::Sum("price".into())),
            AggregateQuery::complex(
                ComplexQuery::chain(ChainQuery::new(
                    "Germany",
                    &["Country"],
                    vec![
                        ChainHop::new("country", &["Company"]),
                        ChainHop::new("manufacturer", &["Automobile"]),
                    ],
                )),
                AggregateFunction::Count,
            ),
        ]
    }

    #[test]
    fn batched_answers_are_bitwise_identical_to_the_serial_loop() {
        let d = dataset();
        let config = EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        };
        let queries = workload();

        let engine = AqpEngine::new(config.clone());
        let serial: Vec<_> = queries
            .iter()
            .map(|q| engine.execute(&d.graph, q, &d.oracle).unwrap())
            .collect();
        let batched = BatchEngine::new(config).execute(&d.graph, &queries, &d.oracle);

        assert_eq!(serial.len(), batched.len());
        for (s, b) in serial.iter().zip(&batched) {
            let b = b.as_ref().unwrap();
            assert_eq!(s.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(s.moe.to_bits(), b.moe.to_bits());
            assert_eq!(s.sample_size, b.sample_size);
            assert_eq!(s.candidate_count, b.candidate_count);
            assert_eq!(s.rounds.len(), b.rounds.len());
            assert_eq!(s.groups.len(), b.groups.len());
            for (key, value) in &s.groups {
                assert_eq!(value.to_bits(), b.groups[key].to_bits());
            }
        }
    }

    #[test]
    fn shared_components_are_prepared_once() {
        let d = dataset();
        let queries = workload();
        let batch = BatchEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let (answers, stats) = batch.execute_with_stats(&d.graph, &queries, &d.oracle);
        assert_eq!(stats.queries, queries.len());
        assert_eq!(stats.failures, 0);
        assert!(answers.iter().all(|a| a.is_ok()));
        // Six simple-component plans over two distinct components; the chain
        // query adds one cached sampler per distinct hop anchor. The four
        // repeated simple components are served from the cache.
        assert!(stats.sampler_cache.hits >= 4);
        assert!(stats.sampler_cache.misses >= 2);
        assert!(stats.sampler_cache.hits + stats.sampler_cache.misses >= queries.len());
    }

    #[test]
    fn failing_queries_keep_their_slot_without_poisoning_the_batch() {
        let d = dataset();
        let mut queries = workload();
        queries.insert(
            2,
            AggregateQuery::simple(
                SimpleQuery::new("Atlantis", &["Country"], "product", &["Automobile"]),
                AggregateFunction::Count,
            ),
        );
        let batch = BatchEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let (answers, stats) = batch.execute_with_stats(&d.graph, &queries, &d.oracle);
        assert_eq!(answers.len(), queries.len());
        assert!(answers[2].is_err());
        assert_eq!(stats.failures, 1);
        assert!(answers.iter().filter(|a| a.is_ok()).count() == queries.len() - 1);
        // The failed slot is NaN (keeps alignment) and excluded from the
        // percentiles: the median reflects only real executions.
        assert!(stats.per_query_ms[2].is_nan());
        assert!(stats.percentile_ms(0.0) > 0.0);
    }

    #[test]
    fn stats_carry_per_query_timings_and_render() {
        let d = dataset();
        let queries = workload();
        let batch = BatchEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let (answers, stats) = batch.execute_with_stats(&d.graph, &queries, &d.oracle);
        assert_eq!(stats.per_query_ms.len(), queries.len());
        for (answer, ms) in answers.iter().zip(&stats.per_query_ms) {
            assert_eq!(*ms, answer.as_ref().unwrap().elapsed_ms);
            assert!(*ms >= 0.0);
        }
        assert!(stats.percentile_ms(0.95) >= stats.percentile_ms(0.50));
        let rendered = stats.to_string();
        assert!(rendered.contains("7 queries (0 failed)"), "{rendered}");
        assert!(rendered.contains("p50="), "{rendered}");
        assert!(rendered.contains("p99="), "{rendered}");
    }

    #[test]
    fn latency_percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(latency_percentile(&samples, 0.0), 1.0);
        assert_eq!(latency_percentile(&samples, 0.5), 3.0);
        assert_eq!(latency_percentile(&samples, 1.0), 5.0);
        assert_eq!(latency_percentile(&samples, 0.95), 5.0);
        assert_eq!(latency_percentile(&[], 0.5), 0.0);
    }

    /// Parity between the exact sorted reference and the shared telemetry
    /// histogram: for every quantile, the histogram must report exactly
    /// the upper edge of the bucket the exact nearest-rank value falls in
    /// (bucketing groups the sorted order, so the rank lands in the same
    /// bucket either way).
    #[test]
    fn histogram_percentiles_agree_with_exact_reference_up_to_bucket_resolution() {
        let mut samples = Vec::new();
        let mut x = 0.37_f64;
        for i in 0..500 {
            // Deterministic spread over ~0.05..5000 ms without an RNG.
            x = (x * 997.0 + i as f64).rem_euclid(1.0);
            samples.push(0.05 * (1.0 + x * 99_999.0));
        }
        let hist = kg_telemetry::Histogram::latency_log2();
        hist.observe_finite(samples.iter().copied());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = latency_percentile(&samples, q);
            let snap = hist.snapshot();
            let expected_edge = snap.edge_value(hist.bucket_index(exact));
            assert_eq!(
                hist.quantile(q),
                expected_edge,
                "q={q}: exact {exact} must resolve to its bucket edge"
            );
            assert!(
                exact <= hist.quantile(q),
                "bucket edge bounds the exact value"
            );
        }
        // BatchStats::percentile_ms routes through the same ladder and
        // skips NaN failure slots exactly like the old filter did.
        let stats = BatchStats {
            queries: samples.len() + 1,
            per_query_ms: {
                let mut with_failure = samples.clone();
                with_failure.push(f64::NAN);
                with_failure
            },
            ..BatchStats::default()
        };
        assert_eq!(stats.percentile_ms(0.95), hist.quantile(0.95));
        assert_eq!(stats.latency_histogram().count(), samples.len() as u64);
    }

    #[test]
    fn long_lived_cache_reuses_components_across_batches_without_changing_answers() {
        let d = dataset();
        let queries = workload();
        let config = EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        };
        let batch = BatchEngine::new(config.clone());
        let cache = kg_sampling::SamplerCache::new(config.strategy, config.sampler_config());

        let (first, stats_first) =
            batch.execute_with_stats_cached(&d.graph, &queries, &d.oracle, &cache);
        let (second, stats_second) =
            batch.execute_with_stats_cached(&d.graph, &queries, &d.oracle, &cache);
        // Second pass over the same workload prepares nothing new...
        assert_eq!(stats_second.sampler_cache.misses, 0);
        assert!(stats_second.sampler_cache.hits >= queries.len());
        assert!(stats_first.sampler_cache.misses > 0);
        // ...and the answers stay bitwise-identical to the first pass.
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.moe.to_bits(), b.moe.to_bits());
        }
    }

    #[test]
    fn batched_sessions_support_interactive_refinement() {
        let d = dataset();
        let queries = workload();
        let batch = BatchEngine::new(EngineConfig::default());
        let sessions = batch.open_sessions(&d.graph, &queries, &d.oracle);
        assert_eq!(sessions.len(), queries.len());
        let mut session = sessions.into_iter().next().unwrap().unwrap();
        let coarse = session.refine_to(&d.graph, &d.oracle, 0.10);
        let fine = session.refine_to(&d.graph, &d.oracle, 0.02);
        assert!(fine.sample_size >= coarse.sample_size);
    }
}
