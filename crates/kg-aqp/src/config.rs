//! Engine configuration (the parameters of §VII-A).

use kg_estimate::BootstrapConfig;
use kg_query::PathAggregation;
use kg_sampling::{SamplerConfig, SamplingStrategy};

/// Configuration of the approximate aggregate query engine.
///
/// Defaults follow the paper's default parameters: error bound eb = 1%,
/// confidence 95%, repeat factor r = 3, desired sample ratio λ = 0.3,
/// n-bounded subgraph with n = 3 and τ = 0.85.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Semantic-similarity threshold τ.
    pub tau: f64,
    /// User error bound eb (relative error target).
    pub error_bound: f64,
    /// Confidence level 1 − α of the returned interval.
    pub confidence: f64,
    /// Hop bound n of the n-bounded subgraph.
    pub n_bound: u32,
    /// Repeat factor r of correctness validation.
    pub repeat_factor: usize,
    /// Desired sample ratio λ: the initial sample targets λ·|A| answers.
    pub desired_sample_ratio: f64,
    /// Sampling strategy (semantic-aware by default; others for ablations).
    pub strategy: SamplingStrategy,
    /// Bootstrap / BLB parameters.
    pub bootstrap: BootstrapConfig,
    /// Maximum refinement rounds (N_e ≤ 10 in practice).
    pub max_rounds: usize,
    /// Hard cap on the total sample size.
    pub max_sample_size: usize,
    /// Whether to run correctness validation (disabled only for the
    /// Fig. 5(b) ablation).
    pub validate: bool,
    /// When set, refinement adds this fixed number of answers per round
    /// instead of the error-based Eq. 12 (the Fig. 5(c) ablation).
    pub fixed_increment: Option<usize>,
    /// Path-similarity aggregation used during validation.
    pub aggregation: PathAggregation,
    /// How many intermediate anchors a chain query keeps per hop
    /// (§V-B; the second-level samplings run in parallel).
    pub chain_anchor_limit: usize,
    /// RNG seed for sampling (results are deterministic given the seed).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            tau: 0.85,
            error_bound: 0.01,
            confidence: 0.95,
            n_bound: 3,
            repeat_factor: 3,
            desired_sample_ratio: 0.3,
            strategy: SamplingStrategy::SemanticAware,
            bootstrap: BootstrapConfig::default(),
            max_rounds: 10,
            max_sample_size: 20_000,
            validate: true,
            fixed_increment: None,
            aggregation: PathAggregation::GeometricMean,
            chain_anchor_limit: 48,
            seed: 0xA96_5EED,
        }
    }
}

impl EngineConfig {
    /// Builder-style override of the error bound.
    pub fn with_error_bound(mut self, eb: f64) -> Self {
        self.error_bound = eb;
        self
    }

    /// Builder-style override of the confidence level.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Builder-style override of τ.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Builder-style override of the sampling strategy.
    pub fn with_strategy(mut self, strategy: SamplingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The sampler configuration implied by this engine configuration.
    pub fn sampler_config(&self) -> SamplerConfig {
        SamplerConfig {
            n_bound: self.n_bound,
            ..SamplerConfig::default()
        }
    }

    /// The initial sample size for a candidate set of size `candidates`:
    /// `t · N^m` with `N = λ·|A|` (§IV-C), at least 16 answers.
    pub fn initial_sample_size(&self, candidates: usize) -> usize {
        let n = (self.desired_sample_ratio * candidates as f64).max(1.0);
        let per_subsample = n.powf(self.bootstrap.blb_exponent);
        ((self.bootstrap.blb_subsamples as f64 * per_subsample).ceil() as usize)
            .clamp(16, self.max_sample_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = EngineConfig::default();
        assert_eq!(c.tau, 0.85);
        assert_eq!(c.error_bound, 0.01);
        assert_eq!(c.confidence, 0.95);
        assert_eq!(c.n_bound, 3);
        assert_eq!(c.repeat_factor, 3);
        assert!((c.desired_sample_ratio - 0.3).abs() < 1e-12);
        assert!(c.validate);
        assert!(c.fixed_increment.is_none());
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::default()
            .with_error_bound(0.05)
            .with_confidence(0.9)
            .with_tau(0.8)
            .with_strategy(SamplingStrategy::Uniform);
        assert_eq!(c.error_bound, 0.05);
        assert_eq!(c.confidence, 0.9);
        assert_eq!(c.tau, 0.8);
        assert_eq!(c.strategy, SamplingStrategy::Uniform);
        assert_eq!(c.sampler_config().n_bound, 3);
    }

    #[test]
    fn initial_sample_size_grows_with_candidates_and_lambda() {
        let c = EngineConfig::default();
        let small = c.initial_sample_size(100);
        let large = c.initial_sample_size(10_000);
        assert!(large > small);
        assert!(small >= 16);
        let c_bigger_lambda = EngineConfig {
            desired_sample_ratio: 0.5,
            ..EngineConfig::default()
        };
        assert!(c_bigger_lambda.initial_sample_size(10_000) > large);
        assert!(c.initial_sample_size(0) >= 16);
    }
}
