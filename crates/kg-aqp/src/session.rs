//! The iterative sampling–estimation loop (Algorithm 2 lines 2–14) and the
//! interactive error-bound refinement of §IV-C.

use crate::config::EngineConfig;
use crate::engine::{ComponentValidator, QueryPlan};
use crate::result::{QueryAnswer, RoundTrace, StepTimings};
use kg_core::{EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use kg_estimate::{
    additional_sample_size, blb_moe, estimate, satisfies_error_bound, validate_answer,
    ValidatedAnswer, ValidationConfig,
};
use kg_query::matches_all;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A validation cache shared by the sessions of one batch: maps a simple
/// component (identified by its prepared sampler's address, stable for the
/// lifetime of the batch) and an entity to the validation outcome.
/// Sound to share because `validate_answer` is deterministic — whichever
/// session computes an entry first, the value is the same.
pub(crate) type SharedValidationCache = Arc<Mutex<HashMap<(usize, EntityId), (bool, f64)>>>;

/// The [`ValidationConfig`] implied by an engine configuration (one code
/// path for the serial, batched and sharded sessions).
pub(crate) fn validation_config(config: &EngineConfig) -> ValidationConfig {
    ValidationConfig {
        tau: config.tau,
        repeat_factor: config.repeat_factor,
        max_path_len: config.n_bound as usize,
        aggregation: config.aggregation,
        ..ValidationConfig::default()
    }
}

/// Validates one sampled entity against every component of a plan: the
/// greedy π-guided search per component, with outcomes AND-ed and the
/// weakest similarity kept. Shared by [`InteractiveSession`] and the
/// sharded session so the two execution paths cannot drift. `validate:
/// false` is the Fig. 5(b) ablation (trust every sampled answer).
pub(crate) fn validate_entity<S: PredicateSimilarity + ?Sized>(
    plan: &QueryPlan,
    validate: bool,
    validation: &ValidationConfig,
    graph: &KnowledgeGraph,
    similarity: &S,
    entity: EntityId,
    shared_validation: Option<&SharedValidationCache>,
) -> (bool, f64) {
    if !validate {
        return (true, 1.0);
    }
    let mut correct = true;
    let mut sim = 1.0_f64;
    for component in &plan.components {
        let (c, s) = match &component.validator {
            ComponentValidator::Simple { query, sampler } => {
                let key = (Arc::as_ptr(sampler) as usize, entity);
                let cached = shared_validation
                    .as_ref()
                    .and_then(|shared| shared.lock().unwrap().get(&key).copied());
                match cached {
                    Some(outcome) => outcome,
                    None => {
                        let out =
                            validate_answer(graph, query, entity, sampler, similarity, validation);
                        let outcome = (out.correct, out.best_similarity);
                        if let Some(shared) = shared_validation {
                            shared.lock().unwrap().insert(key, outcome);
                        }
                        outcome
                    }
                }
            }
            ComponentValidator::Chain {
                final_queries,
                samplers,
            } => match final_queries.get(&entity) {
                None => (false, 0.0),
                Some((query, sampler_index)) => {
                    let out = validate_answer(
                        graph,
                        query,
                        entity,
                        &samplers[*sampler_index],
                        similarity,
                        validation,
                    );
                    (out.correct, out.best_similarity)
                }
            },
        };
        correct &= c;
        sim = sim.min(s);
        if !correct {
            break;
        }
    }
    (correct, sim)
}

/// Outcome of one refinement round of the sampling–estimation loop: did the
/// round settle the query, exhaust its budget, or leave more work to do?
/// Returned by [`InteractiveSession::step_with`] and
/// [`crate::ShardedSession::step_with`] so a driver (the deadline-aware
/// service scheduler, or [`InteractiveSession::refine_with`] itself) can
/// decide round-by-round whether to keep going.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The Theorem-2 guarantee holds for the requested error bound (or no
    /// further draw can change the interval): refinement is complete and
    /// `guarantee_met` is true.
    Satisfied,
    /// A budget cap (max sample size, or an empty answer distribution with
    /// an unsatisfied bound) stops refinement short of the guarantee:
    /// further rounds cannot help and `guarantee_met` is false.
    Exhausted,
    /// The guarantee is not yet met and more sample has been drawn: another
    /// round would refine the interval further.
    Continue,
}

/// An interactive query session: keeps the plan, the drawn sample and the
/// validation cache so that the user can tighten the error bound at runtime
/// and pay only the incremental cost (Fig. 6(a)).
pub struct InteractiveSession {
    config: EngineConfig,
    plan: QueryPlan,
    rng: SmallRng,
    /// The drawn sample: entity plus its combined sampling probability.
    sample: Vec<(EntityId, f64)>,
    /// Validation cache: entity → (correct, similarity).
    validation_cache: HashMap<EntityId, (bool, f64)>,
    /// Batch-shared per-component validation cache, when this session was
    /// opened by a [`crate::BatchEngine`].
    shared_validation: Option<SharedValidationCache>,
    timings: StepTimings,
    rounds: Vec<RoundTrace>,
    /// Whether the most recent round met the requested bound (Theorem 2).
    guarantee_met: bool,
}

impl InteractiveSession {
    pub(crate) fn new(config: EngineConfig, plan: QueryPlan) -> Self {
        Self::with_shared_validation(config, plan, None)
    }

    pub(crate) fn with_shared_validation(
        config: EngineConfig,
        plan: QueryPlan,
        shared_validation: Option<SharedValidationCache>,
    ) -> Self {
        let seed = config.seed;
        let mut timings = StepTimings::default();
        timings.sampling_ms += plan.plan_ms;
        Self {
            config,
            plan,
            rng: SmallRng::seed_from_u64(seed),
            sample: Vec::new(),
            validation_cache: HashMap::new(),
            shared_validation,
            timings,
            rounds: Vec::new(),
            guarantee_met: false,
        }
    }

    /// Number of candidate answers the plan found.
    pub fn candidate_count(&self) -> usize {
        self.plan.candidate_count
    }

    /// The confidence level currently configured for this session (the
    /// engine default, or the last [`Self::refine_with`] override).
    pub fn confidence(&self) -> f64 {
        self.config.confidence
    }

    /// Current total sample size.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// The session's engine configuration.
    pub(crate) fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of refinement rounds completed so far (across all
    /// `refine_*`/`step_with` calls on this session).
    pub fn rounds_completed(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the most recently completed round met its requested error
    /// bound (false before any round has run).
    pub fn guarantee_met(&self) -> bool {
        self.guarantee_met
    }

    fn draw(&mut self, count: usize) {
        // The plan's alias table makes each draw expected O(1) and
        // bit-identical to the binary search it replaced.
        let Some(table) = &self.plan.table else {
            return;
        };
        let start = Instant::now();
        for _ in 0..count {
            let idx = table.sample(&mut self.rng);
            self.sample.push(self.plan.distribution[idx]);
        }
        self.timings.sampling_ms += start.elapsed().as_secs_f64() * 1e3;
    }

    fn validate(
        &mut self,
        graph: &KnowledgeGraph,
        similarity: &(impl PredicateSimilarity + ?Sized),
    ) {
        let start = Instant::now();
        let validation = validation_config(&self.config);
        let entities: Vec<EntityId> = self
            .sample
            .iter()
            .map(|(e, _)| *e)
            .filter(|e| !self.validation_cache.contains_key(e))
            .collect();
        for entity in entities {
            let outcome = validate_entity(
                &self.plan,
                self.config.validate,
                &validation,
                graph,
                similarity,
                entity,
                self.shared_validation.as_ref(),
            );
            self.validation_cache.insert(entity, outcome);
        }
        self.timings.estimation_ms += start.elapsed().as_secs_f64() * 1e3;
    }

    fn validated_sample(&self, graph: &KnowledgeGraph) -> Vec<(EntityId, ValidatedAnswer)> {
        self.sample
            .iter()
            .map(|(entity, probability)| {
                let (valid, similarity) = self
                    .validation_cache
                    .get(entity)
                    .copied()
                    .unwrap_or((false, 0.0));
                let passes_filters = matches_all(graph, *entity, &self.plan.filters);
                (
                    *entity,
                    ValidatedAnswer {
                        probability: *probability,
                        value: self.plan.aggregate.value_of(graph, *entity),
                        correct: valid && passes_filters,
                        similarity,
                    },
                )
            })
            .collect()
    }

    /// Runs (or continues) the sampling–estimation loop until the guarantee
    /// of Theorem 2 holds for `error_bound` or the caps are reached, reusing
    /// any sample already drawn in this session.
    pub fn refine_to<S: PredicateSimilarity + ?Sized>(
        &mut self,
        graph: &KnowledgeGraph,
        similarity: &S,
        error_bound: f64,
    ) -> QueryAnswer {
        self.refine_with(graph, similarity, error_bound, self.config.confidence)
    }

    /// [`Self::refine_to`] with a per-call confidence level: the margin of
    /// error is recomputed at `confidence` from this call on, overriding the
    /// engine configuration. This is how the service layer honours
    /// per-request (error bound, confidence) targets while resuming a cached
    /// session that may have been opened under different targets.
    pub fn refine_with<S: PredicateSimilarity + ?Sized>(
        &mut self,
        graph: &KnowledgeGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> QueryAnswer {
        let wall = Instant::now();
        for _round in 0..self.config.max_rounds.max(1) {
            if self.step_with(graph, similarity, error_bound, confidence) != RoundOutcome::Continue
            {
                break;
            }
        }
        let mut answer = self.snapshot_answer(graph);
        answer.elapsed_ms = wall.elapsed().as_secs_f64() * 1e3 + self.plan.plan_ms;
        answer
    }

    /// Runs exactly one round of the sampling–estimation loop: draw the
    /// initial sample if none exists yet, validate, estimate, compute the
    /// BLB interval, record a [`RoundTrace`], and (unless done) draw the
    /// Eq.-12 increment for the next round. This is [`Self::refine_with`]
    /// at round granularity: driving it in a loop performs the identical
    /// operation and RNG sequence, so a driver that stops early (a deadline
    /// scheduler) observes exactly the estimates a full refinement would
    /// have produced at the same round boundary.
    pub fn step_with<S: PredicateSimilarity + ?Sized>(
        &mut self,
        graph: &KnowledgeGraph,
        similarity: &S,
        error_bound: f64,
        confidence: f64,
    ) -> RoundOutcome {
        self.config.confidence = confidence;
        if self.sample.is_empty() {
            let initial = self.config.initial_sample_size(self.plan.candidate_count);
            self.draw(initial);
        }

        self.validate(graph, similarity);
        let validated: Vec<ValidatedAnswer> = self
            .validated_sample(graph)
            .into_iter()
            .map(|(_, v)| v)
            .collect();

        let est_start = Instant::now();
        let estimate_value = estimate(&self.plan.aggregate, &validated);
        self.timings.estimation_ms += est_start.elapsed().as_secs_f64() * 1e3;

        let guar_start = Instant::now();
        let moe = blb_moe(
            &self.plan.aggregate,
            &validated,
            self.config.confidence,
            &self.config.bootstrap,
            &mut self.rng,
        );
        let satisfied = satisfies_error_bound(estimate_value, moe, error_bound);
        self.timings.guarantee_ms += guar_start.elapsed().as_secs_f64() * 1e3;

        let correct_size = validated.iter().filter(|v| v.correct).count();
        self.rounds.push(RoundTrace {
            round: self.rounds.len() + 1,
            estimate: estimate_value,
            moe,
            sample_size: self.sample.len(),
            correct_size,
        });
        kg_telemetry::point(
            "aqp.round",
            &[
                ("round", self.rounds.len().into()),
                ("estimate", estimate_value.into()),
                ("moe", moe.into()),
                ("sample_size", self.sample.len().into()),
                ("validated", validated.len().into()),
                ("correct_size", correct_size.into()),
            ],
        );

        if satisfied || self.plan.distribution.is_empty() {
            self.guarantee_met = satisfied;
            return if satisfied {
                RoundOutcome::Satisfied
            } else {
                RoundOutcome::Exhausted
            };
        }
        if self.sample.len() >= self.config.max_sample_size {
            self.guarantee_met = false;
            return RoundOutcome::Exhausted;
        }
        let delta = match self.config.fixed_increment {
            Some(fixed) => fixed,
            None => additional_sample_size(
                self.sample.len(),
                moe,
                estimate_value,
                error_bound,
                self.config.bootstrap.blb_exponent,
                self.config.max_sample_size - self.sample.len(),
            ),
        };
        if delta == 0 {
            self.guarantee_met = true;
            return RoundOutcome::Satisfied;
        }
        self.draw(delta.min(self.config.max_sample_size - self.sample.len()));
        self.guarantee_met = false;
        RoundOutcome::Continue
    }

    /// Assembles a [`QueryAnswer`] from the session's current state — the
    /// last round's estimate and interval, the full round trace, and the
    /// GROUP-BY buckets over the validated sample. Used by step drivers to
    /// materialise the best-so-far answer at any round boundary (e.g. when
    /// a deadline fires); `elapsed_ms` is the accumulated step time, since
    /// the session does not know its driver's wall-clock window.
    pub fn snapshot_answer(&self, graph: &KnowledgeGraph) -> QueryAnswer {
        let (estimate_value, moe) = self
            .rounds
            .last()
            .map(|r| (r.estimate, r.moe))
            .unwrap_or((0.0, 0.0));

        // GROUP-BY: estimate per bucket over the validated sample. Each
        // bucket is the subpopulation "correct AND in bucket", so its HT
        // estimator runs over the *full* draw list with out-of-bucket draws
        // marked incorrect — keeping the |S_A| normaliser of Eq. 7–8 intact
        // (per-bucket COUNT/SUM then sum to the top-level estimate, up to
        // answers missing the grouping attribute).
        let groups = match self.plan.group_by {
            None => BTreeMap::new(),
            Some((attr, width)) => {
                let validated = self.validated_sample(graph);
                let keyed: Vec<(Option<i64>, ValidatedAnswer)> = validated
                    .into_iter()
                    .map(|(entity, answer)| {
                        let key = graph
                            .attribute_value(entity, attr)
                            .map(|v| (v / width).floor() as i64);
                        (key, answer)
                    })
                    .collect();
                let keys: std::collections::BTreeSet<i64> = keyed
                    .iter()
                    .filter(|(_, a)| a.correct)
                    .filter_map(|(k, _)| *k)
                    .collect();
                keys.into_iter()
                    .map(|key| {
                        let bucket_sample: Vec<ValidatedAnswer> = keyed
                            .iter()
                            .map(|(k, a)| ValidatedAnswer {
                                correct: a.correct && *k == Some(key),
                                ..*a
                            })
                            .collect();
                        (key, estimate(&self.plan.aggregate, &bucket_sample))
                    })
                    .collect()
            }
        };

        QueryAnswer {
            estimate: estimate_value,
            moe,
            confidence: self.config.confidence,
            guarantee_met: self.guarantee_met,
            rounds: self.rounds.clone(),
            groups,
            timings: self.timings,
            sample_size: self.sample.len(),
            candidate_count: self.plan.candidate_count,
            elapsed_ms: self.timings.total_ms(),
            missing_shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AqpEngine;
    use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
    use kg_query::{AggregateFunction, AggregateQuery, Filter, GroupBy, SimpleQuery};

    fn dataset() -> kg_datagen::GeneratedDataset {
        generate(&GeneratorConfig::new(
            "session-test",
            DatasetScale::tiny(),
            vec![domains::automotive(&["Germany", "China"])],
            31,
        ))
    }

    #[test]
    fn interactive_refinement_reuses_the_sample() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig::default());
        let query = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let mut session = engine.open_session(&d.graph, &query, &d.oracle).unwrap();
        let coarse = session.refine_to(&d.graph, &d.oracle, 0.10);
        let coarse_sample = session.sample_size();
        let fine = session.refine_to(&d.graph, &d.oracle, 0.02);
        assert!(session.sample_size() >= coarse_sample);
        assert!(
            fine.moe <= coarse.moe * 1.5,
            "tightening should not blow up the MoE"
        );
        assert!(session.candidate_count() > 0);
        assert!(fine.rounds.len() >= coarse.rounds.len());
    }

    #[test]
    fn refine_with_overrides_the_confidence_level() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig::default());
        let query = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let mut session = engine.open_session(&d.graph, &query, &d.oracle).unwrap();
        let tight = session.refine_with(&d.graph, &d.oracle, 0.10, 0.99);
        assert_eq!(tight.confidence, 0.99);
        // Dropping the confidence over the (at least as large) sample cannot
        // widen the interval: the 80% bootstrap quantile sits inside the 99%
        // one (small tolerance for bootstrap resampling noise).
        let loose = session.refine_with(&d.graph, &d.oracle, 0.10, 0.80);
        assert_eq!(loose.confidence, 0.80);
        assert!(loose.sample_size >= tight.sample_size);
        assert!(
            loose.moe <= tight.moe * 1.05,
            "{} vs {}",
            loose.moe,
            tight.moe
        );
    }

    #[test]
    fn filters_and_group_by_are_applied() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let plain = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let filtered = plain
            .clone()
            .with_filter(Filter::range("price", 15_000.0, 60_000.0));
        let grouped = plain.clone().with_group_by(GroupBy::new("price", 30_000.0));

        let all = engine.execute(&d.graph, &plain, &d.oracle).unwrap();
        let some = engine.execute(&d.graph, &filtered, &d.oracle).unwrap();
        assert!(some.estimate <= all.estimate * 1.1);
        let with_groups = engine.execute(&d.graph, &grouped, &d.oracle).unwrap();
        assert!(!with_groups.groups.is_empty());
        let group_total: f64 = with_groups.groups.values().sum();
        assert!(group_total > 0.0);
    }

    #[test]
    fn disabling_validation_inflates_the_estimate() {
        let d = dataset();
        let query = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let with = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        })
        .execute(&d.graph, &query, &d.oracle)
        .unwrap();
        let without = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            validate: false,
            ..EngineConfig::default()
        })
        .execute(&d.graph, &query, &d.oracle)
        .unwrap();
        // Without validation every sampled answer counts, so the COUNT
        // estimate moves towards |A| (all candidates) and above the τ-GT.
        assert!(without.estimate >= with.estimate);
    }
}
