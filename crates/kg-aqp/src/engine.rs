//! The approximate aggregate query engine (Algorithm 2) and the
//! decomposition–assembly planner for complex shapes (§V).

use crate::config::EngineConfig;
use crate::result::QueryAnswer;
use crate::session::InteractiveSession;
use kg_core::{EntityId, KgResult, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use kg_query::{
    AggregateQuery, QuerySpec, ResolvedAggregate, ResolvedChainQuery, ResolvedComplexQuery,
    ResolvedComponent, ResolvedFilter, ResolvedSimpleQuery,
};
use kg_sampling::{prepare, AliasTable, PreparedSampler, SamplerCache};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How the correctness of a sampled answer is checked for one component of
/// the (possibly decomposed) query.
pub(crate) enum ComponentValidator {
    /// A single-edge component: validate against the component's query with
    /// the greedy π-guided search.
    Simple {
        query: ResolvedSimpleQuery,
        sampler: Arc<PreparedSampler>,
    },
    /// A chain component: each final answer is validated against the last
    /// hop's query anchored at the intermediate that contributed most of its
    /// probability (hop-level decomposition of §V-B).
    Chain {
        final_queries: HashMap<EntityId, (ResolvedSimpleQuery, usize)>,
        samplers: Vec<Arc<PreparedSampler>>,
    },
}

/// One decomposed component: its answer distribution and validator.
pub(crate) struct ComponentPlan {
    pub(crate) distribution: HashMap<EntityId, f64>,
    pub(crate) validator: ComponentValidator,
    pub(crate) candidate_count: usize,
}

/// A fully-planned query ready for iterative sampling–estimation.
pub(crate) struct QueryPlan {
    /// Combined answer distribution (intersection of component supports,
    /// probabilities multiplied and re-normalised).
    pub(crate) distribution: Vec<(EntityId, f64)>,
    /// O(1) draw table over the combined distribution (`None` when the
    /// distribution is empty), built once at plan time and shared by every
    /// round of the sampling–estimation loop.
    pub(crate) table: Option<AliasTable>,
    pub(crate) components: Vec<ComponentPlan>,
    pub(crate) aggregate: ResolvedAggregate,
    pub(crate) filters: Vec<ResolvedFilter>,
    pub(crate) group_by: Option<(kg_core::AttrId, f64)>,
    pub(crate) candidate_count: usize,
    pub(crate) plan_ms: f64,
}

/// The approximate aggregate query engine.
#[derive(Clone, Debug)]
pub struct AqpEngine {
    config: EngineConfig,
}

impl AqpEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes an aggregate query, iterating until the error-bound guarantee
    /// of Theorem 2 holds or the round/sample caps are reached.
    pub fn execute<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<QueryAnswer> {
        let mut session = self.open_session(graph, query, similarity)?;
        Ok(session.refine_to(graph, similarity, self.config.error_bound))
    }

    /// Opens an interactive session for a query: the plan and sample are kept
    /// so the error bound can be tightened incrementally (Fig. 6(a)).
    pub fn open_session<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<InteractiveSession> {
        let plan = self.plan(graph, query, similarity)?;
        Ok(InteractiveSession::new(self.config.clone(), plan))
    }

    // ------------------------------------------------------------------
    // Planning (decomposition–assembly)
    // ------------------------------------------------------------------

    pub(crate) fn plan<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<QueryPlan> {
        self.plan_with_cache(graph, query, similarity, None)
    }

    /// Plans a query, optionally reusing prepared samplers from `cache` for
    /// simple components (batch execution prepares each distinct component
    /// once). Cached and fresh planning produce identical plans: sampler
    /// preparation is deterministic.
    pub(crate) fn plan_with_cache<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &AggregateQuery,
        similarity: &S,
        cache: Option<&SamplerCache>,
    ) -> KgResult<QueryPlan> {
        let start = Instant::now();
        let aggregate = query.function.resolve(graph)?;
        let filters = query.resolve_filters(graph)?;
        let group_by = match &query.group_by {
            None => None,
            Some(gb) => Some(gb.resolve(graph)?),
        };

        let components = match &query.query {
            QuerySpec::Simple(simple) => {
                let resolved = simple.resolve(graph)?;
                vec![self.plan_simple(graph, &resolved, similarity, cache)?]
            }
            QuerySpec::Complex(complex) => {
                let resolved: ResolvedComplexQuery = complex.resolve(graph)?;
                resolved
                    .components
                    .iter()
                    .map(|c| match c {
                        ResolvedComponent::Simple(q) => {
                            self.plan_simple(graph, q, similarity, cache)
                        }
                        ResolvedComponent::Chain(q) => self.plan_chain(graph, q, similarity, cache),
                    })
                    .collect::<KgResult<Vec<_>>>()?
            }
        };

        // Assemble: intersect supports, multiply probabilities, re-normalise.
        let mut combined: HashMap<EntityId, f64> = components
            .first()
            .map(|c| c.distribution.clone())
            .unwrap_or_default();
        for c in components.iter().skip(1) {
            combined.retain(|e, _| c.distribution.contains_key(e));
            for (e, p) in combined.iter_mut() {
                *p *= c.distribution[e];
            }
        }
        // Sort before summing: float addition is order-sensitive, and
        // `HashMap` iteration order varies per instance, so normalising from
        // an unsorted sum would make repeated runs differ in the last ulp.
        let mut distribution: Vec<(EntityId, f64)> = combined.into_iter().collect();
        distribution.sort_by_key(|(e, _)| *e);
        let total: f64 = distribution.iter().map(|(_, p)| *p).sum();
        if total > 0.0 {
            for (_, p) in &mut distribution {
                *p /= total;
            }
        } else if !distribution.is_empty() {
            let uniform = 1.0 / distribution.len() as f64;
            for (_, p) in &mut distribution {
                *p = uniform;
            }
        }
        // Build the O(1) draw table once per plan. Component weights were
        // validated at prepare time, but the assembly above multiplies and
        // re-normalises — the table build re-validates the products, so a
        // degenerate combined distribution is still a structured plan error
        // rather than a draw-time panic.
        let table = if distribution.is_empty() {
            None
        } else {
            let weights: Vec<f64> = distribution.iter().map(|(_, p)| *p).collect();
            Some(AliasTable::new(&weights).map_err(kg_core::KgError::from)?)
        };
        let candidate_count = components
            .iter()
            .map(|c| c.candidate_count)
            .max()
            .unwrap_or(0);

        Ok(QueryPlan {
            distribution,
            table,
            components,
            aggregate,
            filters,
            group_by,
            candidate_count,
            plan_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    fn plan_simple<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        similarity: &S,
        cache: Option<&SamplerCache>,
    ) -> KgResult<ComponentPlan> {
        let sampler = match cache {
            Some(cache) => cache.get_or_prepare(graph, query, similarity)?,
            None => Arc::new(prepare(
                graph,
                query,
                similarity,
                self.config.strategy,
                &self.config.sampler_config(),
            )?),
        };
        let distribution = sampler
            .answer_distribution()
            .iter()
            .map(|a| (a.entity, a.probability))
            .collect();
        Ok(ComponentPlan {
            distribution,
            candidate_count: sampler.candidate_count(),
            validator: ComponentValidator::Simple {
                query: query.clone(),
                sampler,
            },
        })
    }

    fn plan_chain<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        chain: &ResolvedChainQuery,
        similarity: &S,
        cache: Option<&SamplerCache>,
    ) -> KgResult<ComponentPlan> {
        // First-level sampling from the specific node towards the first hop.
        let mut anchors: Vec<(EntityId, f64)> = vec![(chain.specific, 1.0)];
        let mut samplers: Vec<Arc<PreparedSampler>> = Vec::new();
        let mut final_queries: HashMap<EntityId, (ResolvedSimpleQuery, usize)> = HashMap::new();
        let mut distribution: HashMap<EntityId, f64> = HashMap::new();
        let mut candidate_count = 0usize;

        for hop in 0..chain.hops.len() {
            let is_last = hop + 1 == chain.hops.len();
            // Second and later levels run one sampling per anchor, in parallel
            // (the paper runs each second sampling as a thread).
            type HopResult = KgResult<(EntityId, f64, ResolvedSimpleQuery, Arc<PreparedSampler>)>;
            let hop_results: Vec<HopResult> = anchors
                .par_iter()
                .map(|(anchor, anchor_prob)| {
                    let hop_query = chain.hop_as_simple(hop, *anchor);
                    let sampler = match cache {
                        Some(cache) => cache.get_or_prepare(graph, &hop_query, similarity)?,
                        None => Arc::new(prepare(
                            graph,
                            &hop_query,
                            similarity,
                            self.config.strategy,
                            &self.config.sampler_config(),
                        )?),
                    };
                    Ok((*anchor, *anchor_prob, hop_query, sampler))
                })
                .collect();

            let mut next_anchors: HashMap<EntityId, f64> = HashMap::new();
            for hop_result in hop_results {
                let (_anchor, anchor_prob, hop_query, sampler) = hop_result?;
                candidate_count = candidate_count.max(sampler.candidate_count());
                let sampler_index = samplers.len();
                samplers.push(Arc::clone(&sampler));
                for a in sampler.answer_distribution() {
                    let combined = anchor_prob * a.probability;
                    if is_last {
                        let entry = distribution.entry(a.entity).or_insert(0.0);
                        *entry += combined;
                        // Remember the strongest-contributing anchor for validation.
                        let replace = match final_queries.get(&a.entity) {
                            None => true,
                            Some(_) => *entry <= combined + f64::EPSILON,
                        };
                        if replace {
                            final_queries.insert(a.entity, (hop_query.clone(), sampler_index));
                        }
                    } else {
                        *next_anchors.entry(a.entity).or_insert(0.0) += combined;
                    }
                }
            }
            if !is_last {
                // Keep the most probable anchors, re-normalised.
                let mut sorted: Vec<(EntityId, f64)> = next_anchors.into_iter().collect();
                // Tie-break equal probabilities by entity id: without it the
                // truncation below keeps a `HashMap`-order-dependent subset.
                sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                sorted.truncate(self.config.chain_anchor_limit.max(1));
                let total: f64 = sorted.iter().map(|(_, p)| p).sum();
                if total > 0.0 {
                    for (_, p) in &mut sorted {
                        *p /= total;
                    }
                }
                anchors = sorted;
                if anchors.is_empty() {
                    break;
                }
            }
        }

        // Normalise the final distribution, summing in entity order so the
        // normaliser does not depend on `HashMap` iteration order.
        let mut ordered: Vec<(EntityId, f64)> =
            distribution.iter().map(|(e, p)| (*e, *p)).collect();
        ordered.sort_by_key(|(e, _)| *e);
        let total: f64 = ordered.iter().map(|(_, p)| *p).sum();
        if total > 0.0 {
            for p in distribution.values_mut() {
                *p /= total;
            }
        }
        Ok(ComponentPlan {
            distribution,
            candidate_count,
            validator: ComponentValidator::Chain {
                final_queries,
                samplers,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
    use kg_query::{AggregateFunction, ChainHop, ChainQuery, ComplexQuery, SimpleQuery};

    fn dataset() -> kg_datagen::GeneratedDataset {
        generate(&GeneratorConfig::new(
            "engine-test",
            DatasetScale::tiny(),
            vec![domains::automotive(&["Germany", "China", "Korea"])],
            23,
        ))
    }

    #[test]
    fn count_estimate_tracks_tau_ground_truth() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let query = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let answer = engine.execute(&d.graph, &query, &d.oracle).unwrap();
        // Exact τ-GT via SSB.
        let ssb = kg_query::SsbEngine::new(kg_query::GroundTruthConfig::default());
        let truth = ssb.evaluate(&d.graph, &query, &d.oracle).unwrap().value;
        assert!(truth > 0.0);
        let rel = answer.relative_error(truth);
        assert!(
            rel < 0.25,
            "estimate {} truth {truth} rel {rel}",
            answer.estimate
        );
        assert!(answer.sample_size > 0);
        assert!(answer.candidate_count > 0);
        assert!(!answer.rounds.is_empty());
        assert!(answer.timings.total_ms() >= 0.0);
    }

    #[test]
    fn avg_estimate_is_reasonable() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            ..EngineConfig::default()
        });
        let query = AggregateQuery::simple(
            SimpleQuery::new("China", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Avg("price".into()),
        );
        let answer = engine.execute(&d.graph, &query, &d.oracle).unwrap();
        let ssb = kg_query::SsbEngine::new(kg_query::GroundTruthConfig::default());
        let truth = ssb.evaluate(&d.graph, &query, &d.oracle).unwrap().value;
        assert!(
            answer.relative_error(truth) < 0.15,
            "est {} truth {truth}",
            answer.estimate
        );
    }

    #[test]
    fn chain_and_star_queries_execute() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig {
            error_bound: 0.10,
            ..EngineConfig::default()
        });
        let chain = AggregateQuery::complex(
            ComplexQuery::chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("country", &["Company"]),
                    ChainHop::new("manufacturer", &["Automobile"]),
                ],
            )),
            AggregateFunction::Count,
        );
        let answer = engine.execute(&d.graph, &chain, &d.oracle).unwrap();
        assert!(answer.estimate > 0.0);

        let star = AggregateQuery::complex(
            ComplexQuery::star(vec![
                SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
                SimpleQuery::new("China", &["Country"], "product", &["Automobile"]),
            ]),
            AggregateFunction::Count,
        );
        let answer = engine.execute(&d.graph, &star, &d.oracle).unwrap();
        // Some cars are planted with both hubs, so the intersection is non-empty.
        assert!(answer.estimate >= 0.0);
        assert!(answer.candidate_count > 0);
    }

    #[test]
    fn unknown_entities_fail_cleanly() {
        let d = dataset();
        let engine = AqpEngine::new(EngineConfig::default());
        let query = AggregateQuery::simple(
            SimpleQuery::new("Atlantis", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        assert!(engine.execute(&d.graph, &query, &d.oracle).is_err());
        assert_eq!(engine.config().n_bound, 3);
    }
}
