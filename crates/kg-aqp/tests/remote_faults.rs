//! Fault-injection coverage of the distributed execution path: every
//! injected fault class has its documented outcome — a hedge win, a retry,
//! a failover, or a degraded answer — and never a panic.
//!
//! Faults are scripted through [`FaultPlan`] on the in-process transport,
//! so each scenario is deterministic: the same schedule always produces
//! the same attempt sequence. The strongest assertion throughout is that
//! whenever refinement completes undegraded, its answer is **bitwise
//! identical** to the fault-free run — retries, hedges and failovers can
//! change latency, never bytes.

use kg_aqp::{
    AqpEngine, EngineConfig, FaultAction, FaultPlan, FleetPolicy, InProcessTransport, QueryAnswer,
    ShardFleet, ShardServerCore,
};
use kg_core::{Codec, DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_embed::PredicateSimilarity;
use kg_query::{AggregateFunction, AggregateQuery, GroupBy, SimpleQuery};
use std::collections::HashMap;
use std::sync::Arc;

fn dataset() -> kg_datagen::GeneratedDataset {
    generate(&GeneratorConfig::new(
        "shard-equivalence",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        29,
    ))
}

fn query() -> AggregateQuery {
    AggregateQuery::simple(
        SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
        AggregateFunction::Count,
    )
}

fn group_by_query() -> AggregateQuery {
    AggregateQuery::simple(
        SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
        AggregateFunction::Count,
    )
    .with_group_by(GroupBy::new("price", 30_000.0))
}

/// A distributed rig: `replica_count` independent server "processes", each
/// loading the identical graph; shard `s` on process `r` is endpoint
/// `r{r}s{s}`, so faults can target one shard on one replica precisely.
struct Rig {
    sharded: Arc<ShardedGraph>,
    engine: AqpEngine,
    faults: Arc<FaultPlan>,
    fleet: Arc<ShardFleet>,
    d: kg_datagen::GeneratedDataset,
}

fn endpoint(replica: usize, shard: usize) -> String {
    format!("r{replica}s{shard}")
}

fn rig(k: usize, replica_count: usize, policy: FleetPolicy) -> Rig {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let similarity: Arc<dyn PredicateSimilarity + Send + Sync> = Arc::new(d.oracle.clone());
    let sharded = Arc::new(ShardedGraph::new(
        Arc::clone(&graph),
        &DegreeBalancedPartitioner,
        k,
    ));
    let config = EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    };
    let mut endpoints = HashMap::new();
    for replica in 0..replica_count {
        let core = Arc::new(ShardServerCore::new(
            config.clone(),
            Arc::clone(&sharded),
            Arc::clone(&similarity),
        ));
        for shard in 0..k {
            endpoints.insert(endpoint(replica, shard), Arc::clone(&core));
        }
    }
    let faults = Arc::new(FaultPlan::new());
    let transport = Arc::new(InProcessTransport::new(endpoints, Arc::clone(&faults)));
    let replicas = (0..k)
        .map(|shard| (0..replica_count).map(|r| endpoint(r, shard)).collect())
        .collect();
    let fleet = Arc::new(ShardFleet::new(transport, replicas, policy));
    Rig {
        sharded,
        engine: AqpEngine::new(config),
        faults,
        fleet,
        d,
    }
}

impl Rig {
    fn refine(&self, query: &AggregateQuery, error_bound: f64) -> QueryAnswer {
        let mut session = self
            .engine
            .open_remote_session(
                &self.sharded,
                query,
                &self.d.oracle,
                Arc::clone(&self.fleet),
            )
            .unwrap();
        session.refine_to(&self.sharded, &self.d.oracle, error_bound)
    }
}

fn assert_bitwise_eq(reference: &QueryAnswer, candidate: &QueryAnswer, context: &str) {
    assert_eq!(
        reference.estimate.to_bits(),
        candidate.estimate.to_bits(),
        "{context}: estimate"
    );
    assert_eq!(
        reference.moe.to_bits(),
        candidate.moe.to_bits(),
        "{context}"
    );
    assert_eq!(reference.sample_size, candidate.sample_size, "{context}");
    assert_eq!(reference.rounds.len(), candidate.rounds.len(), "{context}");
    assert_eq!(reference.groups.len(), candidate.groups.len(), "{context}");
    for (key, value) in &reference.groups {
        assert_eq!(
            value.to_bits(),
            candidate.groups[key].to_bits(),
            "{context}"
        );
    }
}

/// A primary delayed past the hedge threshold loses the race to the hedge
/// replica; the winning response carries the identical bytes, so the
/// answer is bitwise the fault-free one.
#[test]
fn delayed_primary_is_hedged_and_the_hedge_win_changes_no_bytes() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 5_000,
        hedge_after_ms: 40,
        ..FleetPolicy::default()
    };
    let reference = rig(2, 2, policy.clone()).refine(&query(), 0.05);

    let faulted = rig(2, 2, policy);
    // Delay shard 0's primary replica well past the hedge threshold on the
    // first round; the hedge to replica 1 answers long before it.
    faulted
        .faults
        .push(&endpoint(0, 0), FaultAction::Delay(400));
    let answer = faulted.refine(&query(), 0.05);
    assert!(!answer.is_degraded());
    assert_bitwise_eq(&reference, &answer, "hedged");
    let metrics = faulted.fleet.metrics().snapshot();
    assert!(metrics.hedges >= 1, "no hedge launched: {metrics:?}");
    assert!(metrics.hedge_wins >= 1, "hedge never won: {metrics:?}");
}

/// A dropped request times out and is retried; the retry serves the
/// identical bytes.
#[test]
fn dropped_request_is_retried_with_identical_bytes() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 150,
        hedge_after_ms: 0, // isolate the retry path
        retry_budget: 2,
        ..FleetPolicy::default()
    };
    let reference = rig(2, 1, policy.clone()).refine(&query(), 0.05);

    let faulted = rig(2, 1, policy);
    faulted.faults.push(&endpoint(0, 1), FaultAction::Drop);
    let answer = faulted.refine(&query(), 0.05);
    assert!(!answer.is_degraded());
    assert_bitwise_eq(&reference, &answer, "retried");
    let metrics = faulted.fleet.metrics().snapshot();
    assert!(metrics.timeouts >= 1, "no timeout recorded: {metrics:?}");
    assert!(metrics.retries >= 1, "no retry recorded: {metrics:?}");
}

/// A connection dropped mid-exchange fails over to the next replica; a
/// cold replica replays the identical state, so bytes are unchanged.
#[test]
fn disconnect_fails_over_to_a_replica_with_identical_bytes() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 2_000,
        hedge_after_ms: 0,
        retry_budget: 2,
        ..FleetPolicy::default()
    };
    let reference = rig(2, 2, policy.clone()).refine(&query(), 0.05);

    let faulted = rig(2, 2, policy);
    faulted
        .faults
        .push(&endpoint(0, 0), FaultAction::Disconnect);
    let answer = faulted.refine(&query(), 0.05);
    assert!(!answer.is_degraded());
    assert_bitwise_eq(&reference, &answer, "failover");
    let metrics = faulted.fleet.metrics().snapshot();
    assert!(metrics.failovers >= 1, "no failover recorded: {metrics:?}");
}

/// A garbage frame is a structured transport error — never a panic — and
/// the retry serves the identical bytes.
#[test]
fn garbage_frames_are_structured_errors_and_retried() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 2_000,
        hedge_after_ms: 0,
        retry_budget: 2,
        ..FleetPolicy::default()
    };
    let reference = rig(2, 1, policy.clone()).refine(&query(), 0.05);

    let faulted = rig(2, 1, policy);
    faulted.faults.push(&endpoint(0, 0), FaultAction::Garbage);
    faulted.faults.push(&endpoint(0, 1), FaultAction::Garbage);
    let answer = faulted.refine(&query(), 0.05);
    assert!(!answer.is_degraded());
    assert_bitwise_eq(&reference, &answer, "garbage-retried");
    let metrics = faulted.fleet.metrics().snapshot();
    assert!(metrics.garbage >= 2, "garbage not recorded: {metrics:?}");
    assert!(metrics.retries >= 2, "no retry recorded: {metrics:?}");
}

/// The degraded-answer contract, end to end: a dead shard past its retry
/// budget yields `degraded: true` with the missing shard id and a usable
/// estimate from the surviving strata; after the shard comes back, further
/// refinement returns to undegraded answers.
#[test]
fn dead_shard_degrades_the_answer_and_recovery_restores_it() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 200,
        hedge_after_ms: 0,
        retry_budget: 1,
        backoff_base_ms: 5,
        ..FleetPolicy::default()
    };
    let r = rig(2, 1, policy);
    let q = group_by_query();
    let mut session = r
        .engine
        .open_remote_session(&r.sharded, &q, &r.d.oracle, Arc::clone(&r.fleet))
        .unwrap();

    // Phase 1: healthy refinement.
    let healthy = session.refine_to(&r.sharded, &r.d.oracle, 0.20);
    assert!(!healthy.is_degraded());
    assert!(healthy.estimate > 0.0);

    // Phase 2: shard 1 dies mid-workload; refinement completes on the
    // surviving stratum, flagged degraded with the missing shard id.
    r.faults.kill(&endpoint(0, 1));
    let degraded = session.refine_to(&r.sharded, &r.d.oracle, 0.05);
    assert!(degraded.is_degraded(), "dead shard not flagged");
    assert_eq!(degraded.missing_shards, vec![1]);
    assert!(
        degraded.estimate.is_finite() && degraded.moe.is_finite(),
        "degraded answer must still carry the surviving strata's interval"
    );
    let metrics = r.fleet.metrics().snapshot();
    assert!(metrics.degraded_rounds >= 1, "{metrics:?}");

    // Phase 3: the shard restarts (cold — it replays the whole history);
    // the next refinement is undegraded again.
    r.faults.revive(&endpoint(0, 1));
    let recovered = session.refine_to(&r.sharded, &r.d.oracle, 0.05);
    assert!(
        !recovered.is_degraded(),
        "recovery not reflected: {:?}",
        recovered.missing_shards
    );
    assert!(recovered.estimate > 0.0);
    assert!(!recovered.groups.is_empty(), "GROUP-BY lost after recovery");
}

/// Consecutive failures eject an endpoint; after the probe window a
/// half-open probe re-admits it. Observable through the fleet metrics.
#[test]
fn ejection_and_half_open_readmission_cycle() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 100,
        hedge_after_ms: 0,
        retry_budget: 1,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        eject_after: 2,
        probe_after_ms: 50,
        ..FleetPolicy::default()
    };
    let r = rig(1, 1, policy);
    // Two consecutive disconnects on the only endpoint: ejected.
    r.faults.push(&endpoint(0, 0), FaultAction::Disconnect);
    r.faults.push(&endpoint(0, 0), FaultAction::Disconnect);
    let first = r.refine(&query(), 0.20);
    let metrics = r.fleet.metrics().snapshot();
    // With a single replica the fleet still routes to the ejected endpoint
    // as a last resort, so the round either recovered on a later attempt
    // or degraded — never panicked.
    assert!(metrics.ejections >= 1, "{metrics:?}");
    // Past the probe window, a healthy request re-admits the endpoint.
    std::thread::sleep(std::time::Duration::from_millis(60));
    let second = r.refine(&query(), 0.20);
    assert!(!second.is_degraded());
    assert!(second.estimate.is_finite());
    let metrics = r.fleet.metrics().snapshot();
    assert!(metrics.readmissions >= 1, "{metrics:?}");
    let _ = first;
}

/// A total outage (every shard dead) still never panics: the answer is
/// degraded with every shard listed and a zero estimate rather than an
/// error or crash.
#[test]
fn total_outage_degrades_every_stratum_without_panicking() {
    let policy = FleetPolicy {
        codec: Codec::Binary,
        request_timeout_ms: 100,
        hedge_after_ms: 0,
        retry_budget: 0,
        ..FleetPolicy::default()
    };
    let r = rig(2, 1, policy);
    r.faults.kill(&endpoint(0, 0));
    r.faults.kill(&endpoint(0, 1));
    let answer = r.refine(&query(), 0.05);
    assert!(answer.is_degraded());
    assert_eq!(answer.missing_shards, vec![0, 1]);
    assert!(!answer.guarantee_met);
    assert_eq!(answer.rounds.len(), 0);
}
