//! Distributed-execution equivalence anchors, extending
//! `shard_equivalence.rs` to the remote path:
//!
//! * **Fault-free remote ≡ in-process ≡ unsharded** — a coordinator
//!   scattering rounds to shard servers over the (in-process) transport
//!   produces answers bitwise-identical to `ShardedSession` over the same
//!   graph and seed, for K ∈ {1, 2, 4} and every workload shape; and K = 1
//!   remote is bitwise the unsharded engine.
//! * **Replay determinism** — re-running a query against warm servers
//!   (whose cached sessions are mid-trajectory from the first run) rebuilds
//!   and produces identical bytes.
//! * **Handshake** — fingerprint-matched fleets ping clean; a config
//!   mismatch is rejected with a structured error.

use kg_aqp::{
    config_fingerprint, graph_fingerprint, AqpEngine, EngineConfig, FaultPlan, FleetPolicy,
    InProcessTransport, QueryAnswer, ShardCallError, ShardFleet, ShardServerCore,
};
use kg_core::{Codec, DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_embed::PredicateSimilarity;
use kg_query::{
    AggregateFunction, AggregateQuery, ChainHop, ChainQuery, ComplexQuery, Filter,
    GroundTruthConfig, GroupBy, SimpleQuery, SsbEngine,
};
use std::collections::HashMap;
use std::sync::Arc;

fn dataset() -> kg_datagen::GeneratedDataset {
    generate(&GeneratorConfig::new(
        "shard-equivalence",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        29,
    ))
}

fn workload() -> Vec<AggregateQuery> {
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
    vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into()))
            .with_filter(Filter::range("price", 15_000.0, 60_000.0)),
        AggregateQuery::simple(de.clone(), AggregateFunction::Count)
            .with_group_by(GroupBy::new("price", 30_000.0)),
        AggregateQuery::simple(cn.clone(), AggregateFunction::Count),
        AggregateQuery::complex(
            ComplexQuery::chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("country", &["Company"]),
                    ChainHop::new("manufacturer", &["Automobile"]),
                ],
            )),
            AggregateFunction::Count,
        ),
        AggregateQuery::complex(ComplexQuery::star(vec![de, cn]), AggregateFunction::Count),
    ]
}

fn config(error_bound: f64) -> EngineConfig {
    EngineConfig {
        error_bound,
        ..EngineConfig::default()
    }
}

/// One "server process" per endpoint, all loading the identical graph —
/// the real deployment model, minus the sockets.
fn fleet_for(
    sharded: &Arc<ShardedGraph>,
    config: &EngineConfig,
    similarity: &Arc<dyn PredicateSimilarity + Send + Sync>,
    codec: Codec,
) -> Arc<ShardFleet> {
    let core = Arc::new(ShardServerCore::new(
        config.clone(),
        Arc::clone(sharded),
        Arc::clone(similarity),
    ));
    let mut endpoints = HashMap::new();
    endpoints.insert("proc0".to_string(), core);
    let transport = Arc::new(InProcessTransport::new(
        endpoints,
        Arc::new(FaultPlan::new()),
    ));
    let replicas = vec![vec!["proc0".to_string()]; sharded.shard_count()];
    let policy = FleetPolicy {
        codec,
        ..FleetPolicy::default()
    };
    Arc::new(ShardFleet::new(transport, replicas, policy))
}

fn assert_bitwise_eq(reference: &QueryAnswer, candidate: &QueryAnswer, context: &str) {
    assert_eq!(
        reference.estimate.to_bits(),
        candidate.estimate.to_bits(),
        "{context}: estimate"
    );
    assert_eq!(
        reference.moe.to_bits(),
        candidate.moe.to_bits(),
        "{context}: moe"
    );
    assert_eq!(
        reference.guarantee_met, candidate.guarantee_met,
        "{context}: guarantee_met"
    );
    assert_eq!(
        reference.sample_size, candidate.sample_size,
        "{context}: sample_size"
    );
    assert_eq!(
        reference.candidate_count, candidate.candidate_count,
        "{context}: candidate_count"
    );
    assert_eq!(
        reference.rounds.len(),
        candidate.rounds.len(),
        "{context}: rounds"
    );
    for (a, b) in reference.rounds.iter().zip(&candidate.rounds) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{context}");
        assert_eq!(a.moe.to_bits(), b.moe.to_bits(), "{context}");
        assert_eq!(a.sample_size, b.sample_size, "{context}");
        assert_eq!(a.correct_size, b.correct_size, "{context}");
    }
    assert_eq!(
        reference.groups.len(),
        candidate.groups.len(),
        "{context}: groups"
    );
    for (key, value) in &reference.groups {
        assert_eq!(
            value.to_bits(),
            candidate.groups[key].to_bits(),
            "{context}: group {key}"
        );
    }
}

/// The core anchor: for K ∈ {2, 4}, the remote session over fingerprint
/// -matched shard servers produces bitwise the in-process sharded answers
/// (which sit on the equivalence chain to the unsharded engine pinned in
/// `shard_equivalence.rs`). Both codecs, since the binary and JSON paths
/// must carry the same floats. K = 1 is covered separately: the remote
/// path always runs the stratified estimator (a single stratum when
/// K = 1), whereas the in-process K = 1 session is the unsharded BLB
/// engine, so its anchor is determinism + accuracy, not bitwise identity.
#[test]
fn fault_free_remote_execution_is_bitwise_identical_to_in_process() {
    let d = dataset();
    let queries = workload();
    let graph = Arc::new(d.graph.clone());
    let similarity: Arc<dyn PredicateSimilarity + Send + Sync> = Arc::new(d.oracle.clone());
    let error_bound = 0.05;

    for k in [2usize, 4] {
        let sharded = Arc::new(ShardedGraph::new(
            Arc::clone(&graph),
            &DegreeBalancedPartitioner,
            k,
        ));
        let engine = AqpEngine::new(config(error_bound));
        let in_process: Vec<QueryAnswer> = queries
            .iter()
            .map(|q| engine.execute_sharded(&sharded, q, &d.oracle).unwrap())
            .collect();

        for codec in [Codec::Binary, Codec::Json] {
            let fleet = fleet_for(&sharded, engine.config(), &similarity, codec);
            fleet
                .ping_all(
                    graph_fingerprint(&sharded),
                    config_fingerprint(engine.config()),
                )
                .unwrap();
            for (query, reference) in queries.iter().zip(&in_process) {
                let mut session = engine
                    .open_remote_session(&sharded, query, &d.oracle, Arc::clone(&fleet))
                    .unwrap();
                let answer = session.refine_to(&sharded, &d.oracle, error_bound);
                assert!(
                    !answer.is_degraded(),
                    "K={k} {codec:?}: fault-free degraded"
                );
                assert_bitwise_eq(reference, &answer, &format!("K={k} {codec:?} {query:?}"));
            }
            let metrics = fleet.metrics().snapshot();
            assert_eq!(metrics.retries, 0, "K={k} {codec:?}");
            assert_eq!(metrics.degraded_rounds, 0, "K={k} {codec:?}");
        }
    }
}

/// K = 1 remote execution: bitwise-deterministic across independent fleets
/// (fresh server processes), and the guaranteed aggregates hit the planted
/// SSB ground truth within the requested bound.
#[test]
fn single_shard_remote_execution_is_deterministic_and_accurate() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let similarity: Arc<dyn PredicateSimilarity + Send + Sync> = Arc::new(d.oracle.clone());
    let sharded = Arc::new(ShardedGraph::new(
        Arc::clone(&graph),
        &DegreeBalancedPartitioner,
        1,
    ));
    let error_bound = 0.10;
    let engine = AqpEngine::new(config(error_bound));
    let ssb = SsbEngine::new(GroundTruthConfig::default());
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let queries = [
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into())),
        AggregateQuery::simple(de, AggregateFunction::Avg("price".into())),
    ];

    let run_all = |fleet: &Arc<ShardFleet>| -> Vec<QueryAnswer> {
        queries
            .iter()
            .map(|q| {
                let mut session = engine
                    .open_remote_session(&sharded, q, &d.oracle, Arc::clone(fleet))
                    .unwrap();
                session.refine_to(&sharded, &d.oracle, error_bound)
            })
            .collect()
    };
    let first = run_all(&fleet_for(
        &sharded,
        engine.config(),
        &similarity,
        Codec::Binary,
    ));
    let second = run_all(&fleet_for(
        &sharded,
        engine.config(),
        &similarity,
        Codec::Json,
    ));
    for ((query, a), b) in queries.iter().zip(&first).zip(&second) {
        assert_bitwise_eq(a, b, &format!("K=1 fleets {query:?}"));
        assert!(a.guarantee_met, "K=1: guarantee unmet for {query:?}");
        let truth = ssb.evaluate(&d.graph, query, &d.oracle).unwrap().value;
        assert!(truth > 0.0);
        let rel = a.relative_error(truth);
        assert!(
            rel <= error_bound,
            "K=1: estimate {} vs truth {truth} (rel {rel:.4}) for {query:?}",
            a.estimate
        );
    }
}

/// Warm servers mid-trajectory from a previous run of the same query must
/// rebuild and serve the identical bytes when a fresh coordinator session
/// starts over.
#[test]
fn rerunning_a_query_against_warm_servers_is_deterministic() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let similarity: Arc<dyn PredicateSimilarity + Send + Sync> = Arc::new(d.oracle.clone());
    let sharded = Arc::new(ShardedGraph::new(
        Arc::clone(&graph),
        &DegreeBalancedPartitioner,
        3,
    ));
    let engine = AqpEngine::new(config(0.05));
    let fleet = fleet_for(&sharded, engine.config(), &similarity, Codec::Binary);
    let query = &workload()[0];

    let run = |bound: f64| {
        let mut session = engine
            .open_remote_session(&sharded, query, &d.oracle, Arc::clone(&fleet))
            .unwrap();
        session.refine_to(&sharded, &d.oracle, bound)
    };
    let first = run(0.05);
    // Interleave a different refinement depth so the server state is *off*
    // the first run's trajectory, then repeat the original run.
    let _ = run(0.50);
    let second = run(0.05);
    assert_bitwise_eq(&first, &second, "warm rerun");
}

/// A coordinator whose engine config differs from the servers' is refused
/// at handshake with a structured mismatch error, not silently divergent
/// answers.
#[test]
fn fingerprint_mismatch_is_rejected_at_handshake() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let similarity: Arc<dyn PredicateSimilarity + Send + Sync> = Arc::new(d.oracle.clone());
    let sharded = Arc::new(ShardedGraph::new(
        Arc::clone(&graph),
        &DegreeBalancedPartitioner,
        2,
    ));
    let server_config = config(0.05);
    let fleet = fleet_for(&sharded, &server_config, &similarity, Codec::Binary);

    let mismatched = EngineConfig {
        seed: server_config.seed ^ 1,
        ..server_config.clone()
    };
    let err = fleet
        .ping_all(graph_fingerprint(&sharded), config_fingerprint(&mismatched))
        .unwrap_err();
    match err {
        ShardCallError::Rejected { code, .. } => assert_eq!(code, "mismatch"),
        other => panic!("expected rejection, got {other}"),
    }
    // The matched handshake still succeeds on the same fleet.
    fleet
        .ping_all(
            graph_fingerprint(&sharded),
            config_fingerprint(&server_config),
        )
        .unwrap();
}
