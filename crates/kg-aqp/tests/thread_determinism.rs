//! Determinism across thread counts: the engine's parallelism is real
//! (the rayon shim fans work out over a scoped worker pool), so these
//! tests pin the load-bearing invariant that makes it safe — **query
//! results are bitwise-identical at every thread count**, and identical to
//! the plain sequential per-query loop (the pre-parallel engine).
//!
//! Why this holds: parallel stages preserve input order (chunked,
//! index-ordered execution in the shim), every per-query / per-shard unit
//! of work owns its own seeded RNG stream, and all cross-unit sharing
//! (sampler cache, validation cache) memoises deterministic values only.
//!
//! CI runs the whole suite under `RAYON_NUM_THREADS=1` and `=4` on top of
//! these in-process matrix checks.

use kg_aqp::{AqpEngine, BatchEngine, EngineConfig, QueryAnswer};
use kg_core::{DegreeBalancedPartitioner, KgResult, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_query::{
    AggregateFunction, AggregateQuery, ChainHop, ChainQuery, ComplexQuery, Filter, GroupBy,
    SimpleQuery,
};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn dataset() -> kg_datagen::GeneratedDataset {
    generate(&GeneratorConfig::new(
        "thread-determinism",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China"])],
        17,
    ))
}

/// A workload touching every execution shape: plain, filtered, GROUP-BY
/// and aggregate variants of simple queries plus a chain query (whose
/// planning itself fans out per anchor on the pool).
fn workload() -> Vec<AggregateQuery> {
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
    vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into()))
            .with_filter(Filter::range("price", 15_000.0, 60_000.0)),
        AggregateQuery::simple(de, AggregateFunction::Count)
            .with_group_by(GroupBy::new("price", 30_000.0)),
        AggregateQuery::simple(cn, AggregateFunction::Count),
        AggregateQuery::complex(
            ComplexQuery::chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("country", &["Company"]),
                    ChainHop::new("manufacturer", &["Automobile"]),
                ],
            )),
            AggregateFunction::Count,
        ),
    ]
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    }
}

fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

/// Full bitwise comparison of two answer vectors (estimates, intervals,
/// sample sizes, per-round traces and GROUP-BY buckets).
fn assert_bitwise_identical(label: &str, a: &[KgResult<QueryAnswer>], b: &[KgResult<QueryAnswer>]) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(
            x.estimate.to_bits(),
            y.estimate.to_bits(),
            "{label}: estimate of query {i}"
        );
        assert_eq!(
            x.moe.to_bits(),
            y.moe.to_bits(),
            "{label}: moe of query {i}"
        );
        assert_eq!(x.sample_size, y.sample_size, "{label}: sample of query {i}");
        assert_eq!(x.guarantee_met, y.guarantee_met, "{label}: query {i}");
        assert_eq!(x.rounds.len(), y.rounds.len(), "{label}: rounds of {i}");
        for (rx, ry) in x.rounds.iter().zip(&y.rounds) {
            assert_eq!(rx.estimate.to_bits(), ry.estimate.to_bits(), "{label}: {i}");
            assert_eq!(rx.sample_size, ry.sample_size, "{label}: query {i}");
        }
        assert_eq!(x.groups.len(), y.groups.len(), "{label}: groups of {i}");
        for (key, value) in &x.groups {
            assert_eq!(value.to_bits(), y.groups[key].to_bits(), "{label}: {i}");
        }
    }
}

#[test]
fn batch_results_are_bitwise_identical_across_thread_counts_and_to_the_serial_loop() {
    let d = dataset();
    let queries = workload();
    let config = engine_config();

    // The sequential per-query loop: the reference the parallel engine must
    // reproduce exactly (this is what the engine computed before the
    // thread pool and the alias tables existed — their equivalence to the
    // old draw path is pinned separately in kg-sampling's property tests).
    let engine = AqpEngine::new(config.clone());
    let serial: Vec<KgResult<QueryAnswer>> = at_threads(1, || {
        queries
            .iter()
            .map(|q| engine.execute(&d.graph, q, &d.oracle))
            .collect()
    });

    let batch = BatchEngine::new(config);
    let mut per_thread_count = Vec::new();
    for threads in THREAD_COUNTS {
        let answers = at_threads(threads, || batch.execute(&d.graph, &queries, &d.oracle));
        assert_bitwise_identical(&format!("batch@{threads} vs serial"), &serial, &answers);
        per_thread_count.push((threads, answers));
    }
    for window in per_thread_count.windows(2) {
        let (ta, a) = &window[0];
        let (tb, b) = &window[1];
        assert_bitwise_identical(&format!("batch@{ta} vs batch@{tb}"), a, b);
    }
}

#[test]
fn sharded_results_are_bitwise_identical_across_thread_counts() {
    let d = dataset();
    let queries = workload();
    let graph = Arc::new(d.graph.clone());
    let batch = BatchEngine::new(engine_config());

    for k in [1usize, 4] {
        let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, k);
        let reference = at_threads(1, || batch.execute_sharded(&sharded, &queries, &d.oracle));
        for threads in THREAD_COUNTS {
            let answers = at_threads(threads, || {
                batch.execute_sharded(&sharded, &queries, &d.oracle)
            });
            assert_bitwise_identical(&format!("K={k}@{threads} threads"), &reference, &answers);
        }
        if k == 1 {
            // K = 1 is the identity configuration: also bitwise the
            // unsharded engine, at any thread count.
            let unsharded = at_threads(4, || batch.execute(&d.graph, &queries, &d.oracle));
            assert_bitwise_identical("K=1 vs unsharded", &reference, &unsharded);
        }
    }
}
