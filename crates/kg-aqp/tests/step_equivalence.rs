//! The round-granular step API is *exactly* the old refinement loop, cut at
//! round boundaries: stepping a session k times and snapshotting must be
//! bitwise-identical to a fresh engine configured with `max_rounds: k` —
//! per shard count and per thread count. This is the invariant that makes
//! deadline truncation safe: an anytime answer returned at round k is the
//! answer a k-round engine would have computed, not an approximation of it.

use kg_aqp::{AqpEngine, EngineConfig, QueryAnswer, RoundOutcome};
use kg_core::{DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratedDataset, GeneratorConfig};
use kg_query::{AggregateFunction, AggregateQuery, GroupBy, SimpleQuery};
use std::sync::Arc;

fn dataset() -> GeneratedDataset {
    generate(&GeneratorConfig::new(
        "step-equivalence",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China"])],
        23,
    ))
}

fn workload() -> Vec<AggregateQuery> {
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(de, AggregateFunction::Count)
            .with_group_by(GroupBy::new("price", 30_000.0)),
    ]
}

/// A target tight enough that tiny-scale refinement does not converge in
/// one round, so caps at k = 1..4 actually truncate.
const TIGHT_EB: f64 = 0.01;
const CONF: f64 = 0.95;

fn config() -> EngineConfig {
    EngineConfig {
        error_bound: TIGHT_EB,
        ..EngineConfig::default()
    }
}

fn assert_bitwise(label: &str, a: &QueryAnswer, b: &QueryAnswer) {
    assert_eq!(
        a.estimate.to_bits(),
        b.estimate.to_bits(),
        "{label}: estimate"
    );
    assert_eq!(a.moe.to_bits(), b.moe.to_bits(), "{label}: moe");
    assert_eq!(a.sample_size, b.sample_size, "{label}: sample_size");
    assert_eq!(a.guarantee_met, b.guarantee_met, "{label}: guarantee_met");
    assert_eq!(a.rounds.len(), b.rounds.len(), "{label}: round count");
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.estimate.to_bits(), y.estimate.to_bits(), "{label}: round");
        assert_eq!(x.moe.to_bits(), y.moe.to_bits(), "{label}: round moe");
        assert_eq!(x.sample_size, y.sample_size, "{label}: round sample");
    }
    assert_eq!(a.groups.len(), b.groups.len(), "{label}: groups");
    for (key, value) in &a.groups {
        assert_eq!(value.to_bits(), b.groups[key].to_bits(), "{label}: {key}");
    }
}

#[test]
fn stepping_k_rounds_equals_a_fresh_engine_capped_at_k() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    for shards in [1usize, 4] {
        let sharded = if shards == 1 {
            ShardedGraph::single(Arc::clone(&graph))
        } else {
            ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, shards)
        };
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                for query in workload() {
                    for cap in 1usize..=4 {
                        // Stepped: an uncapped session driven k rounds by
                        // hand (the worker-loop/deadline path).
                        let engine = AqpEngine::new(config());
                        let mut stepped = engine
                            .open_sharded_session(&sharded, &query, &d.oracle)
                            .unwrap();
                        for _ in 0..cap {
                            if stepped.step_with(&sharded, &d.oracle, TIGHT_EB, CONF)
                                != RoundOutcome::Continue
                            {
                                break;
                            }
                        }
                        let snapshot = stepped.snapshot_answer(&sharded);
                        assert_eq!(snapshot.rounds.len(), stepped.rounds_completed());

                        // Reference: a fresh engine whose round budget IS k
                        // (the pre-step monolithic loop).
                        let capped = AqpEngine::new(EngineConfig {
                            max_rounds: cap,
                            ..config()
                        });
                        let mut reference = capped
                            .open_sharded_session(&sharded, &query, &d.oracle)
                            .unwrap();
                        let full = reference.refine_with(&sharded, &d.oracle, TIGHT_EB, CONF);

                        assert_bitwise(
                            &format!("K={shards} threads={threads} cap={cap}"),
                            &snapshot,
                            &full,
                        );
                    }
                }
            });
        }
    }
}

#[test]
fn refine_deadline_in_the_past_still_runs_one_round() {
    // The anytime contract: once planning succeeded, even an
    // already-expired deadline yields a round-1 estimate, not nothing.
    let d = dataset();
    let sharded = ShardedGraph::single(Arc::new(d.graph.clone()));
    let query = &workload()[0];
    let engine = AqpEngine::new(config());
    let mut session = engine
        .open_sharded_session(&sharded, query, &d.oracle)
        .unwrap();
    let expired = std::time::Instant::now() - std::time::Duration::from_millis(10);
    let (answer, truncated) = session.refine_deadline(&sharded, &d.oracle, TIGHT_EB, CONF, expired);
    assert!(truncated, "an expired deadline truncates");
    assert_eq!(answer.rounds.len(), 1, "exactly the first round ran");
    assert!(answer.sample_size > 0);
    assert!(!answer.guarantee_met);
}

#[test]
fn round_outcomes_track_the_guarantee() {
    // Loose target: a session steps to Satisfied and flips guarantee_met;
    // before that, Continue leaves it false.
    let d = dataset();
    let sharded = ShardedGraph::single(Arc::new(d.graph.clone()));
    let query = &workload()[0];
    let engine = AqpEngine::new(EngineConfig {
        error_bound: 0.5,
        ..EngineConfig::default()
    });
    let mut session = engine
        .open_sharded_session(&sharded, query, &d.oracle)
        .unwrap();
    let mut last = RoundOutcome::Continue;
    for _ in 0..session.max_rounds() {
        last = session.step_with(&sharded, &d.oracle, 0.5, CONF);
        if last != RoundOutcome::Continue {
            break;
        }
    }
    assert_eq!(last, RoundOutcome::Satisfied);
    let answer = session.snapshot_answer(&sharded);
    assert!(answer.guarantee_met);
}
