//! Shard-equivalence guarantees of the sharded execution path:
//!
//! * **K = 1 is the identity refactor** — sharded execution over a
//!   single-shard graph is bitwise-identical to the unsharded engine, for
//!   every workload shape (simple, filtered, GROUP-BY, chain, star).
//! * **K ≥ 2 keeps the accuracy contract** — merged stratified estimates
//!   hit the planted SSB τ-ground-truth within the requested error bound at
//!   the requested confidence, and the Theorem-2 test holds on the merged
//!   interval.
//! * **Sharded execution is deterministic** — per-shard RNG streams make
//!   repeated runs bitwise-identical for any K.

use kg_aqp::{AqpEngine, BatchEngine, EngineConfig};
use kg_core::{DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_query::{
    AggregateFunction, AggregateQuery, ChainHop, ChainQuery, ComplexQuery, Filter,
    GroundTruthConfig, GroupBy, SimpleQuery, SsbEngine,
};
use std::sync::Arc;

fn dataset() -> kg_datagen::GeneratedDataset {
    generate(&GeneratorConfig::new(
        "shard-equivalence",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        29,
    ))
}

fn workload() -> Vec<AggregateQuery> {
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
    vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into()))
            .with_filter(Filter::range("price", 15_000.0, 60_000.0)),
        AggregateQuery::simple(de.clone(), AggregateFunction::Count)
            .with_group_by(GroupBy::new("price", 30_000.0)),
        AggregateQuery::simple(cn.clone(), AggregateFunction::Count),
        AggregateQuery::complex(
            ComplexQuery::chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("country", &["Company"]),
                    ChainHop::new("manufacturer", &["Automobile"]),
                ],
            )),
            AggregateFunction::Count,
        ),
        AggregateQuery::complex(ComplexQuery::star(vec![de, cn]), AggregateFunction::Count),
    ]
}

fn config(error_bound: f64) -> EngineConfig {
    EngineConfig {
        error_bound,
        ..EngineConfig::default()
    }
}

/// K = 1: every field of every answer is bitwise-identical to the
/// unsharded engine, across all workload shapes.
#[test]
fn single_shard_execution_is_bitwise_identical_to_the_unsharded_engine() {
    let d = dataset();
    let queries = workload();
    let graph = Arc::new(d.graph.clone());
    let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, 1);

    let engine = AqpEngine::new(config(0.05));
    let batch = BatchEngine::new(config(0.05));
    let unsharded: Vec<_> = queries
        .iter()
        .map(|q| engine.execute(&d.graph, q, &d.oracle).unwrap())
        .collect();
    let via_batch = batch.execute_sharded(&sharded, &queries, &d.oracle);
    let via_engine: Vec<_> = queries
        .iter()
        .map(|q| engine.execute_sharded(&sharded, q, &d.oracle).unwrap())
        .collect();

    for ((reference, batched), single) in unsharded.iter().zip(&via_batch).zip(&via_engine) {
        for candidate in [batched.as_ref().unwrap(), single] {
            assert_eq!(reference.estimate.to_bits(), candidate.estimate.to_bits());
            assert_eq!(reference.moe.to_bits(), candidate.moe.to_bits());
            assert_eq!(reference.guarantee_met, candidate.guarantee_met);
            assert_eq!(reference.sample_size, candidate.sample_size);
            assert_eq!(reference.candidate_count, candidate.candidate_count);
            assert_eq!(reference.rounds.len(), candidate.rounds.len());
            for (a, b) in reference.rounds.iter().zip(&candidate.rounds) {
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
                assert_eq!(a.moe.to_bits(), b.moe.to_bits());
                assert_eq!(a.sample_size, b.sample_size);
                assert_eq!(a.correct_size, b.correct_size);
            }
            assert_eq!(reference.groups.len(), candidate.groups.len());
            for (key, value) in &reference.groups {
                assert_eq!(value.to_bits(), candidate.groups[key].to_bits());
            }
        }
    }
}

/// K ∈ {2, 4, 7}: merged estimates satisfy the requested accuracy contract
/// against the exhaustively computed SSB τ-ground-truth.
#[test]
fn merged_estimates_hit_the_ssb_ground_truth_within_the_error_bound() {
    let d = dataset();
    let error_bound = 0.10;
    let batch = BatchEngine::new(config(error_bound));
    let ssb = SsbEngine::new(GroundTruthConfig::default());
    // COUNT/SUM/AVG carry the paper's guarantee; MAX/MIN do not, and the
    // chain/star shapes have no planted single-hop ground truth, so the
    // contract check runs on the guaranteed aggregates.
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
    let queries = vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into())),
        AggregateQuery::simple(de, AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(cn, AggregateFunction::Count),
    ];
    let truths: Vec<f64> = queries
        .iter()
        .map(|q| ssb.evaluate(&d.graph, q, &d.oracle).unwrap().value)
        .collect();
    assert!(truths.iter().all(|t| *t > 0.0));

    let graph = Arc::new(d.graph.clone());
    for k in [2usize, 4, 7] {
        let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, k);
        let (answers, stats) = batch.execute_sharded_with_stats(&sharded, &queries, &d.oracle);
        for ((query, answer), truth) in queries.iter().zip(&answers).zip(&truths) {
            let answer = answer.as_ref().unwrap();
            assert!(
                answer.guarantee_met,
                "K={k}: Theorem-2 test unmet for {query:?}"
            );
            let rel = answer.relative_error(*truth);
            assert!(
                rel <= error_bound,
                "K={k}: estimate {} vs truth {truth} (rel {rel:.4}) for {query:?}",
                answer.estimate
            );
        }
        // Shard observability: the per-shard sample counts cover every
        // shard and sum to the per-query totals.
        assert_eq!(stats.shard_samples.len(), k);
        let total: u64 = stats.shard_samples.iter().sum();
        let expected: u64 = answers
            .iter()
            .map(|a| a.as_ref().unwrap().sample_size as u64)
            .sum();
        assert_eq!(total, expected);
        assert!(stats.merge_overhead_ms >= 0.0);
    }
}

/// Per-shard RNG streams keep sharded execution deterministic run-to-run
/// for every K, including the session-resume path.
#[test]
fn sharded_execution_is_deterministic_for_every_k() {
    let d = dataset();
    let queries = workload();
    let graph = Arc::new(d.graph.clone());
    for k in [1usize, 2, 4, 7] {
        let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, k);
        let batch = BatchEngine::new(config(0.05));
        let first = batch.execute_sharded(&sharded, &queries, &d.oracle);
        let second = batch.execute_sharded(&sharded, &queries, &d.oracle);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "K={k}");
            assert_eq!(a.moe.to_bits(), b.moe.to_bits(), "K={k}");
            assert_eq!(a.sample_size, b.sample_size, "K={k}");
        }
    }
}

/// Interactive refinement works through the sharded session: tightening the
/// bound reuses the per-shard samples and never discards draws.
#[test]
fn sharded_sessions_support_interactive_refinement() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, 3);
    let engine = AqpEngine::new(EngineConfig::default());
    let query = AggregateQuery::simple(
        SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
        AggregateFunction::Count,
    );
    let mut session = engine
        .open_sharded_session(&sharded, &query, &d.oracle)
        .unwrap();
    assert_eq!(session.shard_count(), 3);
    let coarse = session.refine_to(&sharded, &d.oracle, 0.10);
    let coarse_samples = session.sample_size();
    let fine = session.refine_to(&sharded, &d.oracle, 0.02);
    assert!(session.sample_size() >= coarse_samples);
    assert!(fine.rounds.len() >= coarse.rounds.len());
    assert!(session.candidate_count() > 0);
    let stats = session.sharded_stats();
    assert_eq!(stats.per_shard_samples.len(), 3);
    assert_eq!(
        stats.per_shard_samples.iter().sum::<usize>(),
        session.sample_size()
    );
}

/// Failing queries keep their slot in sharded batches, like unsharded ones.
#[test]
fn sharded_batches_keep_failure_slots() {
    let d = dataset();
    let graph = Arc::new(d.graph.clone());
    let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, 2);
    let mut queries = workload();
    queries.insert(
        1,
        AggregateQuery::simple(
            SimpleQuery::new("Atlantis", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        ),
    );
    let batch = BatchEngine::new(config(0.05));
    let (answers, stats) = batch.execute_sharded_with_stats(&sharded, &queries, &d.oracle);
    assert_eq!(answers.len(), queries.len());
    assert!(answers[1].is_err());
    assert_eq!(stats.failures, 1);
    assert!(stats.per_query_ms[1].is_nan());
    let rendered = stats.to_string();
    assert!(rendered.contains("shard samples"), "{rendered}");
    assert!(rendered.contains("merge overhead"), "{rendered}");
}

/// A caller-owned `ShardSamplerCache` reused across two different
/// partitionings of the same graph must never serve strata from the other
/// partitioning: answers after the cross-partition reuse are bitwise those
/// of a fresh-cache run (the cache keys on the partition identity).
#[test]
fn shared_shard_cache_across_partitionings_never_serves_stale_strata() {
    let d = dataset();
    let queries = workload();
    let config = config(0.05);
    let graph = Arc::new(d.graph.clone());
    let two = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, 2);
    let four = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, 4);
    let batch = BatchEngine::new(config.clone());

    let shared_cache = kg_sampling::SamplerCache::new(config.strategy, config.sampler_config());
    let shared_shard_cache = kg_sampling::ShardSamplerCache::new();
    // Warm both caches against the K=2 partitioning…
    let _ = batch.execute_sharded_with_stats_cached(
        &two,
        &queries,
        &d.oracle,
        &shared_cache,
        &shared_shard_cache,
    );
    // …then run K=4 against the same caches.
    let (reused, _) = batch.execute_sharded_with_stats_cached(
        &four,
        &queries,
        &d.oracle,
        &shared_cache,
        &shared_shard_cache,
    );
    let (fresh, _) = batch.execute_sharded_with_stats(&four, &queries, &d.oracle);
    for (a, b) in reused.iter().zip(&fresh) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.moe.to_bits(), b.moe.to_bits());
        assert_eq!(a.sample_size, b.sample_size);
    }
}
