//! Refinement sessions survive unrelated delta writes: a session refines
//! against the graph snapshot it was opened on, so a write landing on a
//! *clone* of that graph mid-refinement (the service's write path — clone,
//! mutate through the overlay, install) must not perturb the session's
//! remaining rounds at all. Checked bitwise against a control session that
//! never saw a write, at K = 1 and K = 2.

use kg_aqp::{AqpEngine, EngineConfig, QueryAnswer, ShardedSession};
use kg_core::{DegreeBalancedPartitioner, GraphBuilder, KnowledgeGraph, ShardedGraph};
use kg_embed::oracle::oracle_store;
use kg_embed::PredicateVectorStore;
use kg_query::{AggregateFunction, AggregateQuery, SimpleQuery};
use std::sync::Arc;

fn build_graph() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    b.add_entity("Germany", &["Country"]);
    for i in 0..8 {
        b.add_entity(&format!("car{i}"), &["Automobile"]);
        b.add_edge_by_name("Germany", "product", &format!("car{i}"));
    }
    b.add_entity("Japan", &["Island"]);
    for i in 0..4 {
        b.add_entity(&format!("ship{i}"), &["Ship"]);
        b.add_edge_by_name("Japan", "builds", &format!("ship{i}"));
    }
    b.build()
}

fn sharded(graph: Arc<KnowledgeGraph>, k: usize) -> ShardedGraph {
    if k <= 1 {
        ShardedGraph::single(graph)
    } else {
        ShardedGraph::new(graph, &DegreeBalancedPartitioner, k)
    }
}

fn car_query() -> AggregateQuery {
    AggregateQuery::simple(
        SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
        AggregateFunction::Count,
    )
}

fn assert_bitwise(a: &QueryAnswer, b: &QueryAnswer) {
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.moe.to_bits(), b.moe.to_bits());
    assert_eq!(a.rounds.len(), b.rounds.len());
}

/// Open a session over the car component, refine halfway, then apply a
/// write to the *ship* component the way the service does (on a clone);
/// the session's remaining rounds must be bitwise those of a session that
/// never raced a write.
#[test]
fn session_mid_refinement_is_unperturbed_by_an_unrelated_write() {
    for k in [1usize, 2] {
        let graph = Arc::new(build_graph());
        let oracle: PredicateVectorStore = oracle_store(&[
            (graph.predicate_id("product").unwrap(), 0, 1.0),
            (graph.predicate_id("builds").unwrap(), 1, 1.0),
        ]);
        let engine = AqpEngine::new(EngineConfig::default());
        let view = sharded(Arc::clone(&graph), k);

        let step =
            |s: &mut ShardedSession, view: &ShardedGraph| s.step_with(view, &oracle, 0.01, 0.95);

        let mut racing = engine
            .open_sharded_session(&view, &car_query(), &oracle)
            .expect("plannable");
        let mut control = engine
            .open_sharded_session(&view, &car_query(), &oracle)
            .expect("plannable");

        step(&mut racing, &view);
        step(&mut control, &view);

        // The service write path: clone the global, mutate the clone
        // through the delta overlay, build the next snapshot from it. The
        // session keeps refining against its original view.
        let mut next = (*graph).clone();
        next.upsert_entity("ship_new", &["Ship"]);
        next.upsert_edge_by_name("Japan", "builds", "ship_new");
        assert_eq!(next.delete_edge_by_name("Japan", "builds", "ship0"), 1);
        let _installed = sharded(Arc::new(next), k);

        // The snapshot the sessions hold is untouched by the write...
        assert_eq!(view.global().entity_by_name("ship_new"), None);
        assert!(!view.global().has_pending_delta());

        // ...and the racing session's remaining rounds match the control's
        // bitwise, round by round.
        for _ in 0..3 {
            let a = step(&mut racing, &view);
            let b = step(&mut control, &view);
            assert_eq!(a, b, "round outcomes diverged at K={k}");
            assert_bitwise(
                &racing.snapshot_answer(&view),
                &control.snapshot_answer(&view),
            );
        }
    }
}
