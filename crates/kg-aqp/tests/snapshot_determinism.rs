//! Snapshot-loaded answers are bitwise-identical to built-graph answers.
//!
//! The snapshot format's whole promise is that skipping the parse, the CSR
//! build, and the alias-table construction changes *nothing observable*:
//! an engine running over a snapshot-reloaded graph (and the similarity
//! store reloaded from the same file) must produce the same estimate bits,
//! interval bits, sample sizes, and per-round traces as one running over
//! the freshly built graph — at every K and at every thread count. Both
//! the plain and the delta-varint compressed CSR encodings are pinned.

use kg_aqp::{BatchEngine, EngineConfig, QueryAnswer};
use kg_core::{DegreeBalancedPartitioner, KgResult, KnowledgeGraph, ShardedGraph};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_embed::PredicateVectorStore;
use kg_query::{AggregateFunction, AggregateQuery, Filter, GroupBy, SimpleQuery};
use kg_sampling::{bundle_bytes, bundle_from_snapshot};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 2] = [1, 4];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn dataset() -> kg_datagen::GeneratedDataset {
    generate(&GeneratorConfig::new(
        "snapshot-determinism",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China"])],
        23,
    ))
}

fn workload() -> Vec<AggregateQuery> {
    let de = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
    let cn = SimpleQuery::new("China", &["Country"], "product", &["Automobile"]);
    vec![
        AggregateQuery::simple(de.clone(), AggregateFunction::Count),
        AggregateQuery::simple(de.clone(), AggregateFunction::Avg("price".into())),
        AggregateQuery::simple(de.clone(), AggregateFunction::Sum("price".into()))
            .with_filter(Filter::range("price", 15_000.0, 60_000.0)),
        AggregateQuery::simple(de, AggregateFunction::Count)
            .with_group_by(GroupBy::new("price", 30_000.0)),
        AggregateQuery::simple(cn, AggregateFunction::Count),
    ]
}

fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

fn assert_bitwise_identical(label: &str, a: &[KgResult<QueryAnswer>], b: &[KgResult<QueryAnswer>]) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(
            x.estimate.to_bits(),
            y.estimate.to_bits(),
            "{label}: estimate of query {i}"
        );
        assert_eq!(x.moe.to_bits(), y.moe.to_bits(), "{label}: moe of {i}");
        assert_eq!(x.sample_size, y.sample_size, "{label}: sample of {i}");
        assert_eq!(x.guarantee_met, y.guarantee_met, "{label}: query {i}");
        assert_eq!(x.rounds.len(), y.rounds.len(), "{label}: rounds of {i}");
        for (rx, ry) in x.rounds.iter().zip(&y.rounds) {
            assert_eq!(rx.estimate.to_bits(), ry.estimate.to_bits(), "{label}: {i}");
            assert_eq!(rx.sample_size, ry.sample_size, "{label}: query {i}");
        }
        assert_eq!(x.groups.len(), y.groups.len(), "{label}: groups of {i}");
        for (key, value) in &x.groups {
            assert_eq!(value.to_bits(), y.groups[key].to_bits(), "{label}: {i}");
        }
    }
}

/// Round-trips the dataset's graph + oracle through snapshot bytes.
fn reload(
    graph: &KnowledgeGraph,
    oracle: &PredicateVectorStore,
    compress: bool,
) -> (KnowledgeGraph, PredicateVectorStore) {
    let options = kg_core::snapshot::SnapshotOptions {
        compress_csr: compress,
    };
    let bytes = bundle_bytes(graph, &options, Some(oracle), None).expect("snapshot");
    let snap = kg_core::snapshot::Snapshot::from_bytes(bytes).expect("parse");
    let bundle = bundle_from_snapshot(&snap).expect("reload");
    (bundle.graph, bundle.similarity.expect("similarity stored"))
}

/// The acceptance matrix: snapshot-loaded answers bitwise-identical to
/// built-graph answers across K ∈ {1,4} shards and {1,4}-thread pools,
/// at both CSR encodings.
#[test]
fn snapshot_loaded_answers_are_bitwise_identical_across_k_and_threads() {
    let d = dataset();
    let queries = workload();
    let batch = BatchEngine::new(EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    });

    for compress in [false, true] {
        let (snap_graph, snap_oracle) = reload(&d.graph, &d.oracle, compress);
        let snap_graph = Arc::new(snap_graph);
        let built_graph = Arc::new(d.graph.clone());

        for k in SHARD_COUNTS {
            let built_sharded =
                ShardedGraph::new(Arc::clone(&built_graph), &DegreeBalancedPartitioner, k);
            let snap_sharded =
                ShardedGraph::new(Arc::clone(&snap_graph), &DegreeBalancedPartitioner, k);
            for threads in THREAD_COUNTS {
                let label = format!("compress={compress} K={k} threads={threads}");
                let built = at_threads(threads, || {
                    batch.execute_sharded(&built_sharded, &queries, &d.oracle)
                });
                let snapped = at_threads(threads, || {
                    batch.execute_sharded(&snap_sharded, &queries, &snap_oracle)
                });
                assert_bitwise_identical(&label, &built, &snapped);
            }
        }

        // Unsharded engine too, for completeness of the matrix.
        for threads in THREAD_COUNTS {
            let label = format!("compress={compress} unsharded threads={threads}");
            let built = at_threads(threads, || batch.execute(&d.graph, &queries, &d.oracle));
            let snapped = at_threads(threads, || {
                batch.execute(&snap_graph, &queries, &snap_oracle)
            });
            assert_bitwise_identical(&label, &built, &snapped);
        }
    }
}
