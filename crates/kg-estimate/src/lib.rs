//! # kg-estimate — estimators, correctness validation and accuracy guarantees
//!
//! Implementation of §IV-B and §IV-C of the paper:
//!
//! * **Horvitz–Thompson estimators** ([`estimators`]) for COUNT and SUM
//!   (unbiased, Lemmas 3–4) and the ratio estimator for AVG (consistent,
//!   Lemma 5), computed over the validated sample S⁺_A using each answer's
//!   visiting probability π'_i. MAX/MIN are supported best-effort over the
//!   sample (no accuracy guarantee).
//! * **Correctness validation** ([`validation`]): a greedy, stationary-
//!   probability-guided path search with repeat factor *r* that finds a
//!   high-similarity subgraph match for each sampled answer and keeps only
//!   answers with similarity ≥ τ. No false positives are possible; the repeat
//!   factor trades false negatives for time (Fig. 6(c)).
//! * **Confidence intervals** ([`confidence`]): CLT margins of error with the
//!   variance estimated by bootstrap / Bag of Little Bootstraps (Eq. 10–11).
//! * **Sample-size refinement** ([`refine`]): Theorem 2's termination test
//!   `ε ≤ V̂·eb/(1+eb)` and the error-based Δ|S_A| configuration of Eq. 12,
//!   plus the fixed-increment alternative used as an ablation (Fig. 5(c)).
//!
//! ```
//! use kg_estimate::{estimate, ValidatedAnswer};
//! use kg_query::{AggregateFunction, ResolvedAggregate};
//!
//! // Four answers sampled uniformly from a population of four: the HT COUNT
//! // estimator recovers the population size exactly (Lemma 4).
//! let sample: Vec<ValidatedAnswer> = (0..4)
//!     .map(|_| ValidatedAnswer { probability: 0.25, value: Some(1.0), correct: true, similarity: 1.0 })
//!     .collect();
//! let count = ResolvedAggregate { function: AggregateFunction::Count, attribute: None };
//! assert!((estimate(&count, &sample) - 4.0).abs() < 1e-12);
//! ```

pub mod confidence;
pub mod estimators;
pub mod refine;
pub mod stratified;
pub mod validation;

pub use confidence::{blb_moe, bootstrap_moe, normal_critical_value, BootstrapConfig};
pub use estimators::{estimate, EstimateAccumulator, ValidatedAnswer};
pub use refine::{
    achieved_error_bound, additional_sample_size, moe_threshold, satisfies_error_bound,
};
pub use stratified::{
    allocate_proportional, combine_point_terms, merge_strata, neutral_point_terms,
    stratified_point, stratum_point_terms, MergedEstimate, StratumEstimate,
};
pub use validation::{validate_answer, ValidationConfig, ValidationOutcome};
