//! Termination test (Theorem 2) and error-based sample-size configuration
//! (Eq. 12).

/// The MoE threshold of Theorem 2: the query may terminate once
/// `ε ≤ V̂·eb / (1 + eb)`.
pub fn moe_threshold(estimate: f64, error_bound: f64) -> f64 {
    (estimate.abs() * error_bound) / (1.0 + error_bound)
}

/// True when the current margin of error satisfies the error bound with the
/// guarantee of Theorem 2.
pub fn satisfies_error_bound(estimate: f64, moe: f64, error_bound: f64) -> bool {
    moe <= moe_threshold(estimate, error_bound)
}

/// The smallest relative error bound the interval `V̂ ± ε` satisfies under
/// Theorem 2 — the inverse of [`moe_threshold`]: solving `ε = V̂·eb/(1+eb)`
/// for `eb` gives `eb = ε / (|V̂| − ε)`. Returns `0.0` for a degenerate
/// zero-width interval and `f64::INFINITY` when `ε ≥ |V̂|` (no finite bound
/// is met — the interval does not even exclude zero). This is the *achieved*
/// bound reported for deadline-truncated anytime answers.
pub fn achieved_error_bound(estimate: f64, moe: f64) -> f64 {
    if moe <= 0.0 {
        return 0.0;
    }
    let slack = estimate.abs() - moe;
    if slack <= 0.0 {
        f64::INFINITY
    } else {
        moe / slack
    }
}

/// Error-based configuration of the additional sample size Δ|S_A| (Eq. 12):
///
/// ```text
/// Δ|S_A| = |S_A| · [ (ε / (V̂·eb/(1+eb)))^(2m) − 1 ]
/// ```
///
/// Returns at least 1 while the bound is unsatisfied, so refinement always
/// makes progress, and caps the increment at `max_increment`.
pub fn additional_sample_size(
    current_sample_size: usize,
    moe: f64,
    estimate: f64,
    error_bound: f64,
    blb_exponent: f64,
    max_increment: usize,
) -> usize {
    if satisfies_error_bound(estimate, moe, error_bound) {
        return 0;
    }
    let threshold = moe_threshold(estimate, error_bound);
    if threshold <= 0.0 {
        return max_increment.min(current_sample_size.max(1));
    }
    let ratio = (moe / threshold).max(1.0);
    let grow = ratio.powf(2.0 * blb_exponent) - 1.0;
    let delta = (current_sample_size as f64 * grow).ceil() as usize;
    delta.clamp(1, max_increment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_threshold() {
        // Example 5 of the paper: V̂ = 578, eb = 1% → threshold ≈ 5.72.
        let thr = moe_threshold(578.0, 0.01);
        assert!((thr - 578.0 * 0.01 / 1.01).abs() < 1e-9);
        assert!(!satisfies_error_bound(578.0, 6.5, 0.01));
        assert!(satisfies_error_bound(578.0, 5.0, 0.01));
    }

    #[test]
    fn achieved_bound_inverts_the_threshold() {
        // For any non-degenerate interval, the achieved bound is exactly the
        // eb at which Theorem 2 flips from unsatisfied to satisfied.
        for (est, moe) in [(578.0, 6.5), (100.0, 1.0), (-40.0, 3.5), (1e6, 0.25)] {
            let achieved = achieved_error_bound(est, moe);
            assert!(achieved.is_finite());
            assert!(
                satisfies_error_bound(est, moe, achieved * (1.0 + 1e-12)),
                "est={est} moe={moe} achieved={achieved}"
            );
            assert!(
                !satisfies_error_bound(est, moe, achieved * (1.0 - 1e-9)),
                "achieved bound must be minimal (est={est} moe={moe})"
            );
        }
        // Degenerate cases: perfect interval and an interval wider than the
        // estimate itself.
        assert_eq!(achieved_error_bound(578.0, 0.0), 0.0);
        assert_eq!(achieved_error_bound(5.0, 5.0), f64::INFINITY);
        assert_eq!(achieved_error_bound(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn example_5_sample_growth() {
        // |S_A| = 100, ε = 6.5, V̂ = 578, eb = 1%, m = 0.6 → Δ ≈ 16.
        let delta = additional_sample_size(100, 6.5, 578.0, 0.01, 0.6, 10_000);
        assert!((15..=18).contains(&delta), "delta = {delta}");
    }

    #[test]
    fn no_growth_once_satisfied() {
        assert_eq!(additional_sample_size(100, 1.0, 578.0, 0.01, 0.6, 1_000), 0);
    }

    #[test]
    fn growth_is_monotone_in_the_error_gap() {
        let small_gap = additional_sample_size(200, 3.0, 200.0, 0.01, 0.6, 100_000);
        let large_gap = additional_sample_size(200, 30.0, 200.0, 0.01, 0.6, 100_000);
        assert!(large_gap > small_gap);
        assert!(small_gap >= 1);
    }

    #[test]
    fn degenerate_estimate_still_progresses() {
        let delta = additional_sample_size(50, 10.0, 0.0, 0.01, 0.6, 500);
        assert!((1..=500).contains(&delta));
        let capped = additional_sample_size(1_000_000, 50.0, 1.0, 0.01, 0.6, 200);
        assert_eq!(capped, 200);
    }
}
