//! Confidence intervals: CLT margin of error with bootstrap / Bag of Little
//! Bootstraps variance estimation (Eq. 10–11).

use crate::estimators::ValidatedAnswer;
use kg_query::ResolvedAggregate;
use rand::Rng;

/// Parameters of the BLB procedure (following Kleiner et al. and the paper's
/// recommendations: t ≥ 3, m = 0.6, B ≥ 50).
#[derive(Clone, Copy, Debug)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples per (sub)sample (B).
    pub resamples: usize,
    /// Number of BLB subsamples (t).
    pub blb_subsamples: usize,
    /// BLB scale exponent (m): each subsample has size |S_A|^m.
    pub blb_exponent: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 50,
            blb_subsamples: 3,
            blb_exponent: 0.6,
        }
    }
}

/// The normal critical value z_{α/2} for a two-sided confidence level
/// `confidence` (e.g. 1.96 for 95%).
///
/// Uses the Acklam rational approximation of the inverse normal CDF, accurate
/// to ~1e-9 — more than enough for CI computation.
pub fn normal_critical_value(confidence: f64) -> f64 {
    let confidence = confidence.clamp(0.0, 0.999_999);
    let p = 1.0 - (1.0 - confidence) / 2.0; // upper-tail quantile
    inverse_normal_cdf(p)
}

// The coefficients are quoted verbatim from Acklam's published tables;
// keeping the trailing digits makes them checkable against the source.
#[allow(clippy::excessive_precision)]
fn inverse_normal_cdf(p: f64) -> f64 {
    // Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// One answer pre-processed for bootstrap resampling: the per-draw terms of
/// the estimator (`1/π`, `u.a/π`, or the extreme value) computed once, so
/// the hot resampling loop performs additions only. The terms are the exact
/// values the streaming accumulator would compute per draw — division of the
/// same operands yields the same bits — so resampled estimates are
/// bitwise-equal to un-prepared evaluation.
#[derive(Copy, Clone)]
pub(crate) struct PreparedAnswer {
    pub(crate) contributes: bool,
    /// COUNT: 1/π. SUM/AVG: u.a/π. MAX/MIN: u.a.
    pub(crate) primary: f64,
    /// AVG only: 1/π (the denominator term); 0 otherwise.
    pub(crate) secondary: f64,
}

impl PreparedAnswer {
    pub(crate) fn of(aggregate: &ResolvedAggregate, a: &ValidatedAnswer) -> Self {
        use kg_query::AggregateFunction;
        let contributes = a.contributes();
        let (primary, secondary) = if !contributes {
            (0.0, 0.0)
        } else {
            match aggregate.function {
                AggregateFunction::Count => (1.0 / a.probability, 0.0),
                AggregateFunction::Sum(_) => (a.value.unwrap_or(0.0) / a.probability, 0.0),
                AggregateFunction::Avg(_) => {
                    (a.value.unwrap_or(0.0) / a.probability, 1.0 / a.probability)
                }
                AggregateFunction::Max(_) | AggregateFunction::Min(_) => {
                    (a.value.unwrap_or(f64::NAN), 0.0)
                }
            }
        };
        Self {
            contributes,
            primary,
            secondary,
        }
    }
}

/// How the resampling loop combines prepared terms; mirrors the arms of
/// [`EstimateAccumulator`].
#[derive(Copy, Clone, PartialEq, Eq)]
pub(crate) enum CombineKind {
    /// COUNT/SUM: Σ primary, then divide by the resample size.
    Linear,
    /// AVG: Σ primary / Σ secondary.
    Ratio,
    /// MAX: running maximum of primary.
    Max,
    /// MIN: running minimum of primary.
    Min,
}

impl CombineKind {
    pub(crate) fn of(aggregate: &ResolvedAggregate) -> Self {
        use kg_query::AggregateFunction;
        match aggregate.function {
            AggregateFunction::Count | AggregateFunction::Sum(_) => CombineKind::Linear,
            AggregateFunction::Avg(_) => CombineKind::Ratio,
            AggregateFunction::Max(_) => CombineKind::Max,
            AggregateFunction::Min(_) => CombineKind::Min,
        }
    }
}

/// Maps one 64-bit draw to an index in `[0, len)` with Lemire's
/// multiply-shift, avoiding the hardware divide of a modulo reduction in the
/// resampling hot loop (the bias is ≤ `len`/2⁶⁴ — immaterial). This is the
/// single point deciding which answers a bootstrap resample picks, so the
/// serial and batched execution paths stay draw-for-draw identical.
#[inline]
pub(crate) fn draw_index<R: Rng>(rng: &mut R, len: usize) -> usize {
    ((rng.gen::<u64>() as u128 * len as u128) >> 64) as usize
}

fn bootstrap_std<R: Rng>(
    aggregate: &ResolvedAggregate,
    sample: &[ValidatedAnswer],
    resamples: usize,
    resample_size: usize,
    rng: &mut R,
) -> f64 {
    if sample.is_empty() || resamples < 2 {
        return 0.0;
    }
    // Hoist the per-draw divisions and the aggregate dispatch out of the
    // resampling loop: each draw is then an index, a load and an add. The
    // floating-point operations and their order are unchanged relative to
    // evaluating the estimator per resample, so the estimates are
    // bitwise-identical — only faster.
    let prepared: Vec<PreparedAnswer> = sample
        .iter()
        .map(|a| PreparedAnswer::of(aggregate, a))
        .collect();
    let kind = CombineKind::of(aggregate);
    let len = prepared.len();
    let n = resample_size as f64;
    let mut estimates = Vec::with_capacity(resamples);
    match kind {
        // COUNT/SUM and AVG sum branch-free over dense term arrays: a
        // non-contributing draw adds +0.0, which leaves every partial sum
        // bitwise-unchanged, and an all-zero resample yields +0.0/n = +0.0
        // (resp. the den == 0.0 guard) — the same bits the skip-and-flag
        // formulation produces.
        CombineKind::Linear => {
            let terms: Vec<f64> = prepared.iter().map(|p| p.primary).collect();
            for _ in 0..resamples {
                let mut sum = 0.0;
                for _ in 0..resample_size {
                    sum += terms[draw_index(rng, len)];
                }
                estimates.push(sum / n);
            }
        }
        CombineKind::Ratio => {
            let nums: Vec<f64> = prepared.iter().map(|p| p.primary).collect();
            let dens: Vec<f64> = prepared.iter().map(|p| p.secondary).collect();
            for _ in 0..resamples {
                let (mut num, mut den) = (0.0, 0.0);
                for _ in 0..resample_size {
                    let i = draw_index(rng, len);
                    num += nums[i];
                    den += dens[i];
                }
                estimates.push(if den == 0.0 { 0.0 } else { num / den });
            }
        }
        CombineKind::Max | CombineKind::Min => {
            for _ in 0..resamples {
                let mut any = false;
                let mut extreme = if kind == CombineKind::Max {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                };
                for _ in 0..resample_size {
                    let pa = &prepared[draw_index(rng, len)];
                    if !pa.contributes {
                        continue;
                    }
                    any = true;
                    extreme = if kind == CombineKind::Max {
                        extreme.max(pa.primary)
                    } else {
                        extreme.min(pa.primary)
                    };
                }
                estimates.push(if any { extreme } else { 0.0 });
            }
        }
    }
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let var = estimates
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / (estimates.len() - 1) as f64;
    var.sqrt()
}

/// Margin of error by a plain bootstrap over the full sample (Eq. 10–11).
pub fn bootstrap_moe<R: Rng>(
    aggregate: &ResolvedAggregate,
    sample: &[ValidatedAnswer],
    confidence: f64,
    resamples: usize,
    rng: &mut R,
) -> f64 {
    normal_critical_value(confidence)
        * bootstrap_std(aggregate, sample, resamples, sample.len().max(1), rng)
}

/// Margin of error by the Bag of Little Bootstraps: the sample is split into
/// `t` subsamples of size `|S_A|^m`, each bootstrapped with resamples of the
/// *full* sample size, and the per-subsample MoEs are averaged.
pub fn blb_moe<R: Rng>(
    aggregate: &ResolvedAggregate,
    sample: &[ValidatedAnswer],
    confidence: f64,
    config: &BootstrapConfig,
    rng: &mut R,
) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let n = sample.len();
    let sub_size = ((n as f64).powf(config.blb_exponent).ceil() as usize).clamp(1, n);
    let t = config.blb_subsamples.max(1);
    let z = normal_critical_value(confidence);
    let mut total = 0.0;
    for _ in 0..t {
        // Draw a subsample without replacement (approximated by index
        // shuffling over a with-replacement draw for simplicity at small n).
        let mut subsample = Vec::with_capacity(sub_size);
        for _ in 0..sub_size {
            subsample.push(sample[draw_index(rng, n)]);
        }
        let std = bootstrap_std(aggregate, &subsample, config.resamples, n, rng);
        total += z * std;
    }
    total / t as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_query::AggregateFunction;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn resolved_count() -> ResolvedAggregate {
        ResolvedAggregate {
            function: AggregateFunction::Count,
            attribute: None,
        }
    }

    fn uniform_sample(population: usize, draws: usize, seed: u64) -> Vec<ValidatedAnswer> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..draws)
            .map(|_| {
                let _item: usize = rng.gen_range(0..population);
                ValidatedAnswer {
                    probability: 1.0 / population as f64,
                    value: Some(1.0),
                    correct: true,
                    similarity: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn critical_values_match_standard_table() {
        assert!((normal_critical_value(0.95) - 1.959964).abs() < 1e-4);
        assert!((normal_critical_value(0.90) - 1.644854).abs() < 1e-4);
        assert!((normal_critical_value(0.99) - 2.575829).abs() < 1e-4);
        assert!(normal_critical_value(0.98) > normal_critical_value(0.86));
    }

    #[test]
    fn inverse_cdf_edge_cases() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!(inverse_normal_cdf(0.01) < 0.0);
    }

    #[test]
    fn moe_shrinks_with_sample_size() {
        let agg = resolved_count();
        let mut rng = SmallRng::seed_from_u64(5);
        let small = uniform_sample(100, 30, 1);
        let large = uniform_sample(100, 300, 2);
        // COUNT with exactly uniform probabilities has zero bootstrap variance
        // (every term is identical), so perturb values via SUM instead.
        let agg_sum = ResolvedAggregate {
            function: AggregateFunction::Sum("x".into()),
            attribute: None,
        };
        let small_vals: Vec<ValidatedAnswer> = small
            .iter()
            .enumerate()
            .map(|(i, a)| ValidatedAnswer {
                value: Some((i % 7) as f64),
                ..*a
            })
            .collect();
        let large_vals: Vec<ValidatedAnswer> = large
            .iter()
            .enumerate()
            .map(|(i, a)| ValidatedAnswer {
                value: Some((i % 7) as f64),
                ..*a
            })
            .collect();
        let moe_small = bootstrap_moe(&agg_sum, &small_vals, 0.95, 60, &mut rng);
        let moe_large = bootstrap_moe(&agg_sum, &large_vals, 0.95, 60, &mut rng);
        assert!(moe_large < moe_small, "{moe_large} vs {moe_small}");
        let _ = blb_moe(&agg, &small, 0.95, &BootstrapConfig::default(), &mut rng);
    }

    #[test]
    fn higher_confidence_gives_wider_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let agg = ResolvedAggregate {
            function: AggregateFunction::Sum("x".into()),
            attribute: None,
        };
        let sample: Vec<ValidatedAnswer> = (0..200)
            .map(|i| ValidatedAnswer {
                probability: 0.01,
                value: Some((i % 13) as f64),
                correct: true,
                similarity: 1.0,
            })
            .collect();
        let lo = blb_moe(&agg, &sample, 0.86, &BootstrapConfig::default(), &mut rng);
        let hi = blb_moe(&agg, &sample, 0.98, &BootstrapConfig::default(), &mut rng);
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            bootstrap_moe(&resolved_count(), &[], 0.95, 50, &mut rng),
            0.0
        );
        assert_eq!(
            blb_moe(
                &resolved_count(),
                &[],
                0.95,
                &BootstrapConfig::default(),
                &mut rng
            ),
            0.0
        );
    }
}
