//! Stratified merging of per-shard Horvitz–Thompson estimates.
//!
//! Sharded execution partitions the candidate answers A into disjoint
//! strata A_1 … A_K (one per shard) and samples each stratum independently
//! from its re-normalised distribution π'_k = π/W_k. Because
//! `E[1/π'_k] = |A_k⁺|` within a stratum (Lemma 4 applied per stratum), the
//! per-stratum COUNT/SUM estimates compose by **summation** and — the
//! strata being sampled independently — their **variances add**, so a
//! single confidence interval for the merged estimate follows from the
//! per-stratum bootstrap replicates:
//!
//! * COUNT/SUM: `Ê = Σ_k Ê_k`, replicate b of the merged estimator is
//!   `Σ_k Ê_k^(b)`.
//! * AVG: the merged ratio `Σ_k Ŝ_k / Σ_k Ĉ_k` of the stratified SUM and
//!   COUNT estimates; replicates combine numerator and denominator before
//!   dividing.
//! * MAX/MIN: extreme of the per-stratum extremes (best-effort, as in the
//!   unstratified engine).
//!
//! The margin of error is `z · std(merged replicates)` — the bootstrap
//! distribution of the merged statistic, built without ever pooling raw
//! samples across shards: each shard computes its replicates with its own
//! RNG stream, and the merge combines them replicate-wise. Theorem 2's
//! termination test applies to the merged interval unchanged.
//!
//! The per-stratum replicate variances also drive **Neyman-style
//! refinement allocation**: the next round's additional draws go to shards
//! proportionally to their variance contribution (high-variance strata buy
//! the most interval shrinkage per draw), via [`allocate_proportional`].

use crate::confidence::{draw_index, normal_critical_value, CombineKind, PreparedAnswer};
use crate::estimators::ValidatedAnswer;
use kg_query::ResolvedAggregate;
use rand::Rng;

/// One stratum's point estimate and bootstrap replicates, in the
/// `(primary, secondary)` term representation of the estimator family:
/// COUNT/SUM use only `primary` (the HT sum divided by the stratum sample
/// size); AVG keeps numerator and denominator separate so the merged ratio
/// divides once, after summation; MAX/MIN carry the extreme in `primary`
/// (`NaN` when no sampled answer contributes).
#[derive(Clone, Debug)]
pub struct StratumEstimate {
    /// Point primary term (see type docs).
    pub primary: f64,
    /// Point secondary term (AVG denominator; 0 otherwise).
    pub secondary: f64,
    /// Bootstrap replicates of `(primary, secondary)`, one per resample.
    pub replicates: Vec<(f64, f64)>,
    /// Stratum sample size |S_k| (all draws, contributing or not).
    pub sample_size: usize,
    /// Validated subset size |S⁺_k|.
    pub correct: usize,
}

impl StratumEstimate {
    /// Computes the stratum's point terms and `resamples` bootstrap
    /// replicates over `sample` (whose probabilities must be the
    /// within-stratum π'_k), using `rng` — the stratum's own stream, so
    /// per-shard computation stays deterministic and independent.
    ///
    /// An empty sample yields zero terms and zero replicates (`NaN` for
    /// extremes), which merge as "contributes nothing".
    pub fn compute<R: Rng>(
        aggregate: &ResolvedAggregate,
        sample: &[ValidatedAnswer],
        resamples: usize,
        rng: &mut R,
    ) -> Self {
        let kind = CombineKind::of(aggregate);
        let prepared: Vec<PreparedAnswer> = sample
            .iter()
            .map(|a| PreparedAnswer::of(aggregate, a))
            .collect();
        let correct = sample.iter().filter(|a| a.contributes()).count();
        let n = sample.len();

        let empty_terms = match kind {
            CombineKind::Max | CombineKind::Min => (f64::NAN, 0.0),
            _ => (0.0, 0.0),
        };
        if n == 0 {
            return Self {
                primary: empty_terms.0,
                secondary: empty_terms.1,
                replicates: vec![empty_terms; resamples],
                sample_size: 0,
                correct: 0,
            };
        }

        let combine = |indices: &mut dyn Iterator<Item = usize>| -> (f64, f64) {
            match kind {
                // Branch-free sums: a non-contributing draw adds +0.0.
                CombineKind::Linear => {
                    let mut sum = 0.0;
                    for i in indices {
                        sum += prepared[i].primary;
                    }
                    (sum / n as f64, 0.0)
                }
                CombineKind::Ratio => {
                    let (mut num, mut den) = (0.0, 0.0);
                    for i in indices {
                        num += prepared[i].primary;
                        den += prepared[i].secondary;
                    }
                    (num / n as f64, den / n as f64)
                }
                CombineKind::Max | CombineKind::Min => {
                    let mut any = false;
                    let mut extreme = if kind == CombineKind::Max {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    };
                    for i in indices {
                        let pa = &prepared[i];
                        if !pa.contributes {
                            continue;
                        }
                        any = true;
                        extreme = if kind == CombineKind::Max {
                            extreme.max(pa.primary)
                        } else {
                            extreme.min(pa.primary)
                        };
                    }
                    (if any { extreme } else { f64::NAN }, 0.0)
                }
            }
        };

        let point = combine(&mut (0..n));
        let replicates: Vec<(f64, f64)> = (0..resamples)
            .map(|_| {
                let mut indices = (0..n).map(|_| draw_index(rng, n));
                combine(&mut indices)
            })
            .collect();
        Self {
            primary: point.0,
            secondary: point.1,
            replicates,
            sample_size: n,
            correct,
        }
    }
}

/// The merged estimate, interval and per-stratum diagnostics produced by
/// [`merge_strata`].
#[derive(Clone, Debug)]
pub struct MergedEstimate {
    /// The stratified point estimate Ê = merge(Ê_1 … Ê_K).
    pub estimate: f64,
    /// Margin of error of the merged interval at the requested confidence.
    pub moe: f64,
    /// Per-stratum variance contributions (replicate variance of each
    /// stratum's own terms), the Neyman allocation weights for the next
    /// refinement round.
    pub variances: Vec<f64>,
    /// Total sample size Σ|S_k|.
    pub sample_size: usize,
    /// Total validated subset size Σ|S⁺_k|.
    pub correct: usize,
}

/// Combines per-stratum `(primary, secondary)` terms into the merged
/// statistic for the aggregate kind.
fn combine_terms(kind: CombineKind, terms: impl Iterator<Item = (f64, f64)>) -> f64 {
    match kind {
        CombineKind::Linear => terms.map(|(p, _)| p).sum(),
        CombineKind::Ratio => {
            let (num, den) = terms.fold((0.0, 0.0), |(n, d), (p, s)| (n + p, d + s));
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        }
        CombineKind::Max => terms
            .map(|(p, _)| p)
            .filter(|p| !p.is_nan())
            .fold(f64::NAN, f64::max),
        CombineKind::Min => terms
            .map(|(p, _)| p)
            .filter(|p| !p.is_nan())
            .fold(f64::NAN, f64::min),
    }
}

fn finite_or_zero(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v
    }
}

fn sample_variance(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let count = values.clone().count();
    if count < 2 {
        return 0.0;
    }
    let mean = values.clone().sum::<f64>() / count as f64;
    values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
}

/// Merges per-stratum estimates into one estimate and one confidence
/// interval; see the [module docs](self) for the statistical model. All
/// strata must carry the same number of replicates (they share one
/// [`crate::BootstrapConfig`]).
///
/// # Panics
/// Panics when strata disagree on their replicate count.
pub fn merge_strata(
    aggregate: &ResolvedAggregate,
    strata: &[StratumEstimate],
    confidence: f64,
) -> MergedEstimate {
    let kind = CombineKind::of(aggregate);
    let estimate = finite_or_zero(combine_terms(
        kind,
        strata.iter().map(|s| (s.primary, s.secondary)),
    ));
    let resamples = strata.first().map(|s| s.replicates.len()).unwrap_or(0);
    assert!(
        strata.iter().all(|s| s.replicates.len() == resamples),
        "strata carry differing replicate counts"
    );

    // Replicate-wise merge: replicate b of the merged statistic combines
    // replicate b of every stratum (independent streams, so any pairing is
    // valid; index pairing keeps it deterministic).
    let merged_replicates: Vec<f64> = (0..resamples)
        .map(|b| finite_or_zero(combine_terms(kind, strata.iter().map(|s| s.replicates[b]))))
        .collect();
    let std = sample_variance(merged_replicates.iter().copied()).sqrt();
    let moe = if resamples < 2 {
        0.0
    } else {
        normal_critical_value(confidence) * std
    };

    // Per-stratum variance contribution. For the ratio estimator the
    // delta-method linearisation Var(num_k − R̂·den_k) ranks strata by their
    // contribution to the ratio's variance (the common 1/D̂² factor cancels
    // in proportional allocation).
    let variances: Vec<f64> = strata
        .iter()
        .map(|s| match kind {
            CombineKind::Ratio => {
                sample_variance(s.replicates.iter().map(|(num, den)| num - estimate * den))
            }
            _ => sample_variance(s.replicates.iter().map(|(p, _)| finite_or_zero(*p))),
        })
        .collect();

    MergedEstimate {
        estimate,
        moe,
        variances,
        sample_size: strata.iter().map(|s| s.sample_size).sum(),
        correct: strata.iter().map(|s| s.correct).sum(),
    }
}

/// The `(primary, secondary)` terms of a stratum that contributes nothing
/// to a merged point estimate: what [`stratum_point_terms`] returns for an
/// empty sample, and — bitwise — for a non-empty sample in which no answer
/// contributes (`0.0 / n == 0.0` exactly for the linear families; the
/// extremes carry `NaN`). Remote execution leans on this identity: a shard
/// reports bucket terms only for buckets it actually touches, and the
/// coordinator fills the rest with these neutral terms.
pub fn neutral_point_terms(aggregate: &ResolvedAggregate) -> (f64, f64) {
    match CombineKind::of(aggregate) {
        CombineKind::Max | CombineKind::Min => (f64::NAN, 0.0),
        _ => (0.0, 0.0),
    }
}

/// One stratum's `(primary, secondary)` point terms over its full draw
/// list: the HT sums of contributing answers divided by the stratum sample
/// size for the linear families, the contributing extreme (or `NaN`) for
/// MAX/MIN. The per-stratum half of [`stratified_point`], public so a
/// shard server can compute its own terms and ship them over the wire.
pub fn stratum_point_terms(
    aggregate: &ResolvedAggregate,
    sample: &[ValidatedAnswer],
) -> (f64, f64) {
    let kind = CombineKind::of(aggregate);
    let n = sample.len();
    if n == 0 {
        return neutral_point_terms(aggregate);
    }
    let mut primary = match kind {
        CombineKind::Max => f64::NEG_INFINITY,
        CombineKind::Min => f64::INFINITY,
        _ => 0.0,
    };
    let mut secondary = 0.0;
    let mut any = false;
    for a in sample.iter() {
        let pa = PreparedAnswer::of(aggregate, a);
        if !pa.contributes {
            continue;
        }
        any = true;
        match kind {
            CombineKind::Linear | CombineKind::Ratio => {
                primary += pa.primary;
                secondary += pa.secondary;
            }
            CombineKind::Max => primary = primary.max(pa.primary),
            CombineKind::Min => primary = primary.min(pa.primary),
        }
    }
    match kind {
        CombineKind::Linear | CombineKind::Ratio => (primary / n as f64, secondary / n as f64),
        CombineKind::Max | CombineKind::Min => (if any { primary } else { f64::NAN }, 0.0),
    }
}

/// Combines per-stratum point terms (from [`stratum_point_terms`]) into the
/// merged point estimate — the merge half of [`stratified_point`], public
/// so a coordinator can merge terms received over the wire.
pub fn combine_point_terms(
    aggregate: &ResolvedAggregate,
    terms: impl Iterator<Item = (f64, f64)>,
) -> f64 {
    finite_or_zero(combine_terms(CombineKind::of(aggregate), terms))
}

/// Merged stratified **point** estimate without interval work — the cheap
/// path for per-bucket GROUP-BY estimates, where the interval is only
/// computed for the top-level answer.
pub fn stratified_point(aggregate: &ResolvedAggregate, strata: &[&[ValidatedAnswer]]) -> f64 {
    combine_point_terms(
        aggregate,
        strata
            .iter()
            .map(|sample| stratum_point_terms(aggregate, sample)),
    )
}

/// Splits `total` units across strata proportionally to `weights` with the
/// largest-remainder method: deterministic (remainder ties resolved by
/// stratum index), exact (allocations sum to `total` whenever some weight
/// is positive), and zero-weight strata receive nothing. Returns all zeros
/// when every weight is zero or non-finite — callers fall back to a
/// different weighting (e.g. stratum mass instead of variance).
pub fn allocate_proportional(total: usize, weights: &[f64]) -> Vec<usize> {
    let mut allocation = vec![0usize; weights.len()];
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total == 0 || sum <= 0.0 {
        return allocation;
    }
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            continue;
        }
        let quota = total as f64 * (w / sum);
        let floor = quota.floor() as usize;
        allocation[i] = floor;
        assigned += floor;
        remainders.push((i, quota - floor as f64));
    }
    // Largest remainder first; ties by stratum index (sort is by key, so
    // deterministic regardless of stability).
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut leftover = total - assigned;
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        allocation[i] += 1;
        leftover -= 1;
    }
    allocation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::estimate;
    use kg_query::AggregateFunction;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn resolved(f: AggregateFunction) -> ResolvedAggregate {
        ResolvedAggregate {
            function: f,
            attribute: None,
        }
    }

    fn answer(p: f64, v: f64, correct: bool) -> ValidatedAnswer {
        ValidatedAnswer {
            probability: p,
            value: Some(v),
            correct,
            similarity: 1.0,
        }
    }

    /// Two uniform strata of 4 and 2 answers: stratified COUNT recovers
    /// |A⁺| = 6 exactly, like the unstratified estimator on a full sample.
    #[test]
    fn stratified_count_recovers_the_population() {
        let agg = resolved(AggregateFunction::Count);
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let a: Vec<ValidatedAnswer> = (0..8).map(|_| answer(0.25, 1.0, true)).collect();
        let b: Vec<ValidatedAnswer> = (0..6).map(|_| answer(0.5, 1.0, true)).collect();
        let strata = vec![
            StratumEstimate::compute(&agg, &a, 50, &mut rng_a),
            StratumEstimate::compute(&agg, &b, 50, &mut rng_b),
        ];
        let merged = merge_strata(&agg, &strata, 0.95);
        assert!((merged.estimate - 6.0).abs() < 1e-9, "{}", merged.estimate);
        // Exactly uniform strata have zero bootstrap variance.
        assert!(merged.moe.abs() < 1e-9);
        assert_eq!(merged.sample_size, 14);
        assert_eq!(merged.correct, 14);
        assert_eq!(merged.variances.len(), 2);
    }

    /// A single stratum holding the entire sample must agree with the
    /// unstratified estimator bit-for-bit on the point estimate.
    #[test]
    fn single_stratum_point_matches_unstratified_estimate() {
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum("x".into()),
            AggregateFunction::Avg("x".into()),
            AggregateFunction::Max("x".into()),
            AggregateFunction::Min("x".into()),
        ] {
            let agg = resolved(f);
            let sample = vec![
                answer(0.5, 10.0, true),
                answer(0.3, 20.0, true),
                answer(0.2, 30.0, false),
            ];
            let mut rng = SmallRng::seed_from_u64(3);
            let stratum = StratumEstimate::compute(&agg, &sample, 10, &mut rng);
            let merged = merge_strata(&agg, &[stratum], 0.95);
            let reference = estimate(&agg, &sample);
            assert_eq!(
                merged.estimate.to_bits(),
                reference.to_bits(),
                "{:?}",
                agg.function
            );
            assert_eq!(
                stratified_point(&agg, &[&sample]).to_bits(),
                reference.to_bits()
            );
        }
    }

    #[test]
    fn avg_merges_as_a_ratio_of_stratified_sums() {
        let agg = resolved(AggregateFunction::Avg("x".into()));
        // Stratum A: one answer of value 10 at π'=1; stratum B: one answer
        // of value 30 at π'=1. Merged AVG = (10 + 30)/(1 + 1) = 20 — NOT
        // the mean of per-stratum AVGs weighted equally by accident; with
        // unequal probabilities the HT weights decide.
        let a = vec![answer(1.0, 10.0, true)];
        let b = vec![answer(1.0, 30.0, true)];
        let mut rng = SmallRng::seed_from_u64(4);
        let strata = vec![
            StratumEstimate::compute(&agg, &a, 10, &mut rng),
            StratumEstimate::compute(&agg, &b, 10, &mut rng),
        ];
        let merged = merge_strata(&agg, &strata, 0.95);
        assert!((merged.estimate - 20.0).abs() < 1e-12);
    }

    #[test]
    fn extremes_skip_empty_and_all_incorrect_strata() {
        let agg = resolved(AggregateFunction::Max("x".into()));
        let a = vec![answer(0.5, 7.0, true)];
        let empty: Vec<ValidatedAnswer> = Vec::new();
        let wrong = vec![answer(0.5, 99.0, false)];
        let mut rng = SmallRng::seed_from_u64(5);
        let strata = vec![
            StratumEstimate::compute(&agg, &a, 5, &mut rng),
            StratumEstimate::compute(&agg, &empty, 5, &mut rng),
            StratumEstimate::compute(&agg, &wrong, 5, &mut rng),
        ];
        let merged = merge_strata(&agg, &strata, 0.95);
        assert_eq!(merged.estimate, 7.0);
        // No contributing stratum at all → 0, like the unstratified path.
        let none = merge_strata(&agg, &strata[1..], 0.95);
        assert_eq!(none.estimate, 0.0);
    }

    #[test]
    fn variance_contributions_rank_noisy_strata_higher() {
        let agg = resolved(AggregateFunction::Sum("x".into()));
        // Stratum A: identical terms (zero variance). Stratum B: wildly
        // varying values (high variance).
        let a: Vec<ValidatedAnswer> = (0..20).map(|_| answer(0.05, 10.0, true)).collect();
        let b: Vec<ValidatedAnswer> = (0..20)
            .map(|i| answer(0.05, if i % 2 == 0 { 1.0 } else { 500.0 }, true))
            .collect();
        let mut rng = SmallRng::seed_from_u64(6);
        let strata = vec![
            StratumEstimate::compute(&agg, &a, 60, &mut rng),
            StratumEstimate::compute(&agg, &b, 60, &mut rng),
        ];
        let merged = merge_strata(&agg, &strata, 0.95);
        assert!(
            merged.variances[1] > merged.variances[0] * 10.0,
            "{:?}",
            merged.variances
        );
        assert!(merged.moe > 0.0);
    }

    /// The identity the remote GROUP-BY protocol rests on: a stratum whose
    /// sample contains no contributing answer produces terms bitwise-equal
    /// to the neutral terms of an empty stratum, for every estimator
    /// family — so a coordinator can fill unreported buckets with neutral
    /// terms and merge to the identical bits.
    #[test]
    fn non_contributing_strata_terms_equal_the_neutral_terms() {
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum("x".into()),
            AggregateFunction::Avg("x".into()),
            AggregateFunction::Max("x".into()),
            AggregateFunction::Min("x".into()),
        ] {
            let agg = resolved(f);
            let wrong: Vec<ValidatedAnswer> = (0..5)
                .map(|i| answer(0.2, 10.0 * i as f64, false))
                .collect();
            let neutral = neutral_point_terms(&agg);
            let computed = stratum_point_terms(&agg, &wrong);
            assert_eq!(
                computed.0.to_bits(),
                neutral.0.to_bits(),
                "{:?}",
                agg.function
            );
            assert_eq!(computed.1.to_bits(), neutral.1.to_bits());
            assert_eq!(
                stratum_point_terms(&agg, &[]).0.to_bits(),
                neutral.0.to_bits()
            );
            // And the split helpers recompose to stratified_point exactly.
            let mixed = vec![answer(0.5, 10.0, true), answer(0.5, 20.0, false)];
            let via_split = combine_point_terms(
                &agg,
                [stratum_point_terms(&agg, &mixed), neutral].into_iter(),
            );
            let direct = stratified_point(&agg, &[&mixed, &[]]);
            assert_eq!(via_split.to_bits(), direct.to_bits(), "{:?}", agg.function);
        }
    }

    #[test]
    fn allocation_is_exact_proportional_and_deterministic() {
        assert_eq!(allocate_proportional(10, &[1.0, 1.0]), vec![5, 5]);
        assert_eq!(allocate_proportional(10, &[3.0, 1.0]), vec![8, 2]);
        // Zero-weight strata get nothing, even via remainders.
        assert_eq!(allocate_proportional(7, &[1.0, 0.0, 1.0]), vec![4, 0, 3]);
        // Remainder ties resolve by index: 1/3 each of 10 → 4, 3, 3.
        assert_eq!(allocate_proportional(10, &[1.0, 1.0, 1.0]), vec![4, 3, 3]);
        // Degenerate weights → all zeros (caller falls back).
        assert_eq!(allocate_proportional(5, &[0.0, 0.0]), vec![0, 0]);
        assert_eq!(allocate_proportional(5, &[f64::NAN, 1.0]), vec![0, 5]);
        assert_eq!(allocate_proportional(0, &[1.0]), vec![0]);
        let repeated: Vec<Vec<usize>> = (0..4)
            .map(|_| allocate_proportional(13, &[0.2, 0.5, 0.3]))
            .collect();
        assert!(repeated.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(repeated[0].iter().sum::<usize>(), 13);
    }
}
