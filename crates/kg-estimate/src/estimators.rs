//! Horvitz–Thompson style estimators over the validated sample (Eq. 7–9).

use kg_query::{AggregateFunction, ResolvedAggregate};

/// One sampled answer after correctness validation, carrying everything the
/// estimators need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValidatedAnswer {
    /// Visiting probability π'_i of the answer in π_A.
    pub probability: f64,
    /// Attribute value `u.a` (1.0 for COUNT); `None` when the entity lacks
    /// the attribute.
    pub value: Option<f64>,
    /// Whether the answer passed correctness validation (s_i ≥ τ and any
    /// filters).
    pub correct: bool,
    /// The semantic similarity found for the answer (for diagnostics).
    pub similarity: f64,
}

impl ValidatedAnswer {
    /// True when the answer contributes to the estimators (member of S⁺_A
    /// with a usable value and non-zero probability).
    pub fn contributes(&self) -> bool {
        self.correct && self.value.is_some() && self.probability > 0.0
    }
}

/// Computes the estimator Ê = f̂_a(S_A) of Eq. 7–9 over a validated sample.
///
/// * COUNT: `(1/|S_A|) Σ_{u_i ∈ S⁺} 1/π'_i` (unbiased, Lemma 4)
/// * SUM:   `(1/|S_A|) Σ_{u_i ∈ S⁺} u_i.a/π'_i` (unbiased, Lemma 3)
/// * AVG:   `Σ u_i.a/π'_i / Σ 1/π'_i` over S⁺ (consistent, Lemma 5)
/// * MAX / MIN: extreme value seen in the sample (no guarantee, §VII).
///
/// The Horvitz–Thompson normaliser for COUNT/SUM is the **full** sample size
/// |S_A|: every draw from π'_A is a trial, and incorrect draws contribute 0
/// to the numerator. Dividing by |S⁺_A| instead would inflate the estimate by
/// 1/(correct fraction) — E[1{u∈A⁺}/π'_u] = |A⁺| holds per draw, not per
/// *correct* draw (Lemma 3–4). AVG is the self-normalising ratio estimator,
/// where the normaliser cancels.
///
/// Returns 0.0 when no sampled answer contributes.
pub fn estimate(aggregate: &ResolvedAggregate, sample: &[ValidatedAnswer]) -> f64 {
    let mut acc = EstimateAccumulator::new(aggregate);
    for a in sample {
        acc.push(a);
    }
    acc.finish(sample.len())
}

/// Streaming form of [`estimate`]: answers are pushed one at a time and the
/// estimator value is produced at the end.
///
/// The accumulator performs exactly the floating-point operations of
/// [`estimate`] in the same order, so a streamed estimate is bitwise-equal
/// to a materialised one. [`estimate`] is implemented on top of it; the
/// bootstrap resampling hot loop (`confidence::bootstrap_std`) instead uses
/// a specialised prepared-terms formulation whose per-arm semantics mirror
/// [`Self::push`]/[`Self::finish`] bit for bit — a change to the aggregate
/// arms here must be reflected there (and vice versa), which the batch
/// engine's bitwise serial/batch parity tests enforce.
#[derive(Clone, Debug)]
pub struct EstimateAccumulator<'a> {
    aggregate: &'a ResolvedAggregate,
    any: bool,
    /// Primary running value: the HT numerator sum for COUNT/SUM/AVG, the
    /// running extreme for MAX/MIN.
    primary: f64,
    /// Secondary running value: the Σ 1/π'_i denominator (AVG only).
    secondary: f64,
}

impl<'a> EstimateAccumulator<'a> {
    /// Creates an empty accumulator for the given aggregate.
    pub fn new(aggregate: &'a ResolvedAggregate) -> Self {
        let primary = match aggregate.function {
            AggregateFunction::Max(_) => f64::NEG_INFINITY,
            AggregateFunction::Min(_) => f64::INFINITY,
            _ => 0.0,
        };
        Self {
            aggregate,
            any: false,
            primary,
            secondary: 0.0,
        }
    }

    /// Accounts one draw. Non-contributing answers still count towards the
    /// |S_A| normaliser passed to [`Self::finish`], exactly as in
    /// [`estimate`].
    pub fn push(&mut self, a: &ValidatedAnswer) {
        if !a.contributes() {
            return;
        }
        self.any = true;
        match self.aggregate.function {
            AggregateFunction::Count => self.primary += 1.0 / a.probability,
            AggregateFunction::Sum(_) => self.primary += a.value.unwrap_or(0.0) / a.probability,
            AggregateFunction::Avg(_) => {
                self.primary += a.value.unwrap_or(0.0) / a.probability;
                self.secondary += 1.0 / a.probability;
            }
            AggregateFunction::Max(_) => {
                if let Some(v) = a.value {
                    self.primary = self.primary.max(v);
                }
            }
            AggregateFunction::Min(_) => {
                if let Some(v) = a.value {
                    self.primary = self.primary.min(v);
                }
            }
        }
    }

    /// Finalises the estimator over a sample of `sample_size` draws (the
    /// |S_A| of Eq. 7–8, counting non-contributing draws).
    pub fn finish(&self, sample_size: usize) -> f64 {
        if !self.any {
            return 0.0;
        }
        let n = sample_size as f64;
        match self.aggregate.function {
            AggregateFunction::Count | AggregateFunction::Sum(_) => self.primary / n,
            AggregateFunction::Avg(_) => {
                if self.secondary == 0.0 {
                    0.0
                } else {
                    self.primary / self.secondary
                }
            }
            AggregateFunction::Max(_) | AggregateFunction::Min(_) => self.primary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_query::AggregateFunction;

    fn resolved(f: AggregateFunction) -> ResolvedAggregate {
        ResolvedAggregate {
            function: f,
            attribute: None,
        }
    }

    fn answer(p: f64, v: f64, correct: bool) -> ValidatedAnswer {
        ValidatedAnswer {
            probability: p,
            value: Some(v),
            correct,
            similarity: 1.0,
        }
    }

    #[test]
    fn count_estimator_matches_population_for_full_uniform_sample() {
        // Population of 4 correct answers sampled uniformly (π = 1/4): the HT
        // COUNT estimator returns exactly 4 for any sample drawn from it.
        let sample: Vec<ValidatedAnswer> = (0..10).map(|_| answer(0.25, 1.0, true)).collect();
        let v = estimate(&resolved(AggregateFunction::Count), &sample);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_avg_on_nonuniform_probabilities() {
        // Two answers: a (π=0.75, value 10), b (π=0.25, value 30).
        // A sample containing each exactly once estimates:
        //   SUM = (10/0.75 + 30/0.25)/2 = (13.33 + 120)/2 ≈ 66.67 — an
        //   unbiased single draw, not the population value.
        let sample = vec![answer(0.75, 10.0, true), answer(0.25, 30.0, true)];
        let sum = estimate(&resolved(AggregateFunction::Sum("x".into())), &sample);
        assert!((sum - (10.0 / 0.75 + 30.0 / 0.25) / 2.0).abs() < 1e-9);
        let avg = estimate(&resolved(AggregateFunction::Avg("x".into())), &sample);
        let expected = (10.0 / 0.75 + 30.0 / 0.25) / (1.0 / 0.75 + 1.0 / 0.25);
        assert!((avg - expected).abs() < 1e-9);
    }

    #[test]
    fn expected_value_of_count_is_unbiased_over_the_distribution() {
        // Analytic expectation check of Lemma 4: E[1/π_i] over π equals |A⁺|.
        // Distribution over 3 answers with probabilities 0.5/0.3/0.2.
        let probs = [0.5, 0.3, 0.2];
        let expectation: f64 = probs.iter().map(|p| p * (1.0 / p)).sum();
        assert!((expectation - 3.0).abs() < 1e-12);
    }

    #[test]
    fn incorrect_and_missing_value_answers_are_excluded() {
        let sample = vec![
            answer(0.5, 10.0, true),
            answer(0.5, 999.0, false),
            ValidatedAnswer {
                probability: 0.5,
                value: None,
                correct: true,
                similarity: 0.9,
            },
        ];
        // Only the first draw enters the numerator, but all three draws form
        // S_A and normalise the HT sum (Eq. 8 / Lemma 3): (10/0.5) / 3.
        let sum = estimate(&resolved(AggregateFunction::Sum("x".into())), &sample);
        assert!((sum - (10.0 / 0.5) / 3.0).abs() < 1e-9);
        assert!(!sample[1].contributes());
        assert!(!sample[2].contributes());
    }

    #[test]
    fn extremes_and_empty_samples() {
        let sample = vec![answer(0.2, 5.0, true), answer(0.3, 11.0, true)];
        assert_eq!(
            estimate(&resolved(AggregateFunction::Max("x".into())), &sample),
            11.0
        );
        assert_eq!(
            estimate(&resolved(AggregateFunction::Min("x".into())), &sample),
            5.0
        );
        assert_eq!(estimate(&resolved(AggregateFunction::Count), &[]), 0.0);
        let all_wrong = vec![answer(0.5, 1.0, false)];
        assert_eq!(
            estimate(&resolved(AggregateFunction::Count), &all_wrong),
            0.0
        );
    }
}
