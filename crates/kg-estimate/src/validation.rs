//! Correctness validation of sampled answers (§IV-B2).
//!
//! A sampled answer may still have a low semantic similarity; estimating over
//! it unvalidated would bias the result (Fig. 5(b)). Exhaustively enumerating
//! all subgraph matches is expensive, so validation uses a greedy search
//! guided by the stationary visiting probabilities π: starting from the
//! mapping node, it repeatedly expands the candidate node with the highest π
//! and records paths to the answer; after `repeat_factor` paths (or a step
//! budget) it keeps the best similarity found. False positives are impossible
//! (an incorrect answer has *no* match with similarity ≥ τ); false negatives
//! shrink as `repeat_factor` grows (Fig. 6(c)).

use kg_core::{EntityId, KnowledgeGraph, Path};
use kg_embed::PredicateSimilarity;
use kg_query::{admissible_intermediate, path_similarity, PathAggregation, ResolvedSimpleQuery};
use kg_sampling::PreparedSampler;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Parameters of the greedy correctness validation.
#[derive(Clone, Copy, Debug)]
pub struct ValidationConfig {
    /// Semantic-similarity threshold τ.
    pub tau: f64,
    /// Number of distinct paths to the answer to examine (paper: r = 3).
    pub repeat_factor: usize,
    /// Maximum path length considered (the hop bound n).
    pub max_path_len: usize,
    /// Budget on expanded search states (guards dense neighbourhoods).
    pub max_expansions: usize,
    /// Path-similarity aggregation (geometric mean by default).
    pub aggregation: PathAggregation,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            tau: 0.85,
            repeat_factor: 3,
            max_path_len: 3,
            max_expansions: 5_000,
            aggregation: PathAggregation::GeometricMean,
        }
    }
}

/// Outcome of validating one sampled answer.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationOutcome {
    /// Whether the answer is accepted into S⁺_A.
    pub correct: bool,
    /// The best semantic similarity found by the greedy search.
    pub best_similarity: f64,
    /// How many paths to the answer were examined.
    pub paths_examined: usize,
}

struct QueueEntry {
    priority: f64,
    path: Path,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.total_cmp(&other.priority)
    }
}

/// Validates one sampled answer with the greedy π-guided search.
pub fn validate_answer<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    query: &ResolvedSimpleQuery,
    answer: EntityId,
    sampler: &PreparedSampler,
    similarity: &S,
    config: &ValidationConfig,
) -> ValidationOutcome {
    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    heap.push(QueueEntry {
        priority: 1.0,
        path: Path::trivial(query.specific),
    });
    let mut best = 0.0_f64;
    let mut paths_found = 0usize;
    let mut expansions = 0usize;

    while let Some(entry) = heap.pop() {
        if paths_found >= config.repeat_factor || expansions >= config.max_expansions {
            break;
        }
        expansions += 1;
        let tail = entry.path.target();
        for edge in graph.neighbors(tail) {
            if entry.path.visits(edge.neighbor) {
                continue;
            }
            let next = entry.path.extended(edge.predicate, edge.neighbor);
            if edge.neighbor == answer {
                let s = path_similarity(&next, query.predicate, similarity, config.aggregation);
                best = best.max(s);
                paths_found += 1;
                if paths_found >= config.repeat_factor {
                    break;
                }
                continue;
            }
            // Only admissible intermediates may extend the search: paths
            // through another hub- or answer-typed entity are not subgraph
            // matches of the query edge (same rule as exhaustive matching).
            if next.len() < config.max_path_len
                && admissible_intermediate(graph, query, edge.neighbor)
            {
                heap.push(QueueEntry {
                    priority: sampler.stationary_probability(edge.neighbor),
                    path: next,
                });
            }
        }
    }

    ValidationOutcome {
        correct: best >= config.tau,
        best_similarity: best,
        paths_examined: paths_found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;
    use kg_query::SimpleQuery;
    use kg_sampling::{prepare, SamplerConfig, SamplingStrategy};

    fn setup() -> (
        KnowledgeGraph,
        ResolvedSimpleQuery,
        kg_embed::PredicateVectorStore,
    ) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let vw = b.add_entity("vw", &["Company"]);
        b.add_edge(vw, "country", de);
        let direct = b.add_entity("direct", &["Automobile"]);
        b.add_edge(de, "product", direct);
        let via = b.add_entity("via", &["Automobile"]);
        b.add_edge(via, "assembly", vw);
        let weak = b.add_entity("weak", &["Automobile"]);
        b.add_edge(weak, "exhibitedAt", de);
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("assembly").unwrap(), 0, 0.97),
            (g.predicate_id("country").unwrap(), 0, 0.92),
            (g.predicate_id("exhibitedAt").unwrap(), 0, 0.3),
        ]);
        (g, q, store)
    }

    #[test]
    fn accepts_correct_answers_and_rejects_incorrect_ones() {
        let (g, q, store) = setup();
        let sampler = prepare(
            &g,
            &q,
            &store,
            SamplingStrategy::SemanticAware,
            &SamplerConfig::default(),
        )
        .unwrap();
        let cfg = ValidationConfig::default();
        let direct = validate_answer(
            &g,
            &q,
            g.entity_by_name("direct").unwrap(),
            &sampler,
            &store,
            &cfg,
        );
        assert!(direct.correct);
        assert!((direct.best_similarity - 1.0).abs() < 1e-9);
        let via = validate_answer(
            &g,
            &q,
            g.entity_by_name("via").unwrap(),
            &sampler,
            &store,
            &cfg,
        );
        assert!(via.correct, "similarity {}", via.best_similarity);
        let weak = validate_answer(
            &g,
            &q,
            g.entity_by_name("weak").unwrap(),
            &sampler,
            &store,
            &cfg,
        );
        assert!(
            !weak.correct,
            "no false positives: {}",
            weak.best_similarity
        );
        assert!(weak.best_similarity < cfg.tau);
        assert!(direct.paths_examined >= 1);
    }

    #[test]
    fn unreachable_answer_is_rejected() {
        let (g, q, store) = setup();
        let sampler = prepare(
            &g,
            &q,
            &store,
            SamplingStrategy::SemanticAware,
            &SamplerConfig::default(),
        )
        .unwrap();
        // An entity id outside the graph scope of the walk: use the weak one
        // but with a tiny expansion budget so nothing is found.
        let cfg = ValidationConfig {
            max_expansions: 0,
            ..ValidationConfig::default()
        };
        let out = validate_answer(
            &g,
            &q,
            g.entity_by_name("via").unwrap(),
            &sampler,
            &store,
            &cfg,
        );
        assert!(!out.correct);
        assert_eq!(out.paths_examined, 0);
    }

    #[test]
    fn higher_repeat_factor_never_reduces_similarity() {
        let (g, q, store) = setup();
        let sampler = prepare(
            &g,
            &q,
            &store,
            SamplingStrategy::SemanticAware,
            &SamplerConfig::default(),
        )
        .unwrap();
        let via = g.entity_by_name("via").unwrap();
        let low = validate_answer(
            &g,
            &q,
            via,
            &sampler,
            &store,
            &ValidationConfig {
                repeat_factor: 1,
                ..ValidationConfig::default()
            },
        );
        let high = validate_answer(
            &g,
            &q,
            via,
            &sampler,
            &store,
            &ValidationConfig {
                repeat_factor: 5,
                ..ValidationConfig::default()
            },
        );
        assert!(high.best_similarity >= low.best_similarity);
    }
}
