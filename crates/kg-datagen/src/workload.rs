//! Workload generation: aggregate queries of every shape and operator class
//! over a generated dataset (the stand-in for the paper's 400-query workload
//! seeded from QALD-4 / WebQuestions).

use crate::generator::GeneratedDataset;
use kg_core::EntityId;
use kg_query::{
    AggregateFunction, AggregateQuery, ChainHop, ChainQuery, ComplexQuery, Filter, GroupBy,
    QueryComponent, QueryShape, SimpleQuery,
};
use std::collections::BTreeSet;

/// Operator class of a workload query.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryCategory {
    /// Plain COUNT/SUM/AVG.
    Plain,
    /// With a range filter.
    Filtered,
    /// With GROUP-BY.
    Grouped,
    /// MAX/MIN (no accuracy guarantee).
    Extreme,
}

impl QueryCategory {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryCategory::Plain => "Plain",
            QueryCategory::Filtered => "Filter",
            QueryCategory::Grouped => "GROUP-BY",
            QueryCategory::Extreme => "MAX/MIN",
        }
    }
}

/// One component of a workload query, described at the level the planted
/// annotation understands (domain + hub + optional intermediate type).
#[derive(Clone, Debug, PartialEq)]
pub struct HaComponent {
    /// Domain name.
    pub domain: String,
    /// Hub entity name.
    pub hub: String,
    /// Intermediate type for chain components (None for simple components).
    pub via_type: Option<String>,
}

/// A generated workload query.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// Identifier, e.g. `Q17`.
    pub id: String,
    /// Natural-language rendering (for reports).
    pub text: String,
    /// Domain the query targets.
    pub domain: String,
    /// Query shape.
    pub shape: QueryShape,
    /// Operator class.
    pub category: QueryCategory,
    /// The executable aggregate query.
    pub query: AggregateQuery,
    /// Components as the annotation sees them (for HA ground truth).
    pub ha_components: Vec<HaComponent>,
}

impl WorkloadQuery {
    /// Human-annotated answers: per-component HA sets intersected
    /// (decomposition–assembly on the annotation side).
    pub fn ha_answers(&self, dataset: &GeneratedDataset) -> Vec<EntityId> {
        let mut acc: Option<BTreeSet<EntityId>> = None;
        for c in &self.ha_components {
            let answers: BTreeSet<EntityId> = match &c.via_type {
                None => dataset
                    .annotation
                    .ha_simple(&c.domain, &c.hub)
                    .into_iter()
                    .collect(),
                Some(via) => dataset
                    .annotation
                    .ha_chain(&c.domain, &c.hub, via)
                    .into_iter()
                    .collect(),
            };
            acc = Some(match acc {
                None => answers,
                Some(prev) => prev.intersection(&answers).copied().collect(),
            });
        }
        acc.unwrap_or_default().into_iter().collect()
    }

    /// Human-annotated ground-truth aggregate value (with filters applied).
    pub fn ha_value(&self, dataset: &GeneratedDataset) -> f64 {
        let graph = &dataset.graph;
        let aggregate = self
            .query
            .function
            .resolve(graph)
            .expect("workload aggregates resolve on their own dataset");
        let filters = self
            .query
            .resolve_filters(graph)
            .expect("workload filters resolve on their own dataset");
        let answers: Vec<EntityId> = self
            .ha_answers(dataset)
            .into_iter()
            .filter(|&e| kg_query::matches_all(graph, e, &filters))
            .collect();
        aggregate.apply_exact(graph, &answers)
    }
}

/// Workload generation knobs.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Queries generated per shape (before operator variants).
    pub queries_per_shape: usize,
    /// Whether to add filter / GROUP-BY / MAX-MIN variants of simple queries.
    pub include_operator_variants: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            queries_per_shape: 6,
            include_operator_variants: true,
        }
    }
}

fn aggregate_for(index: usize, attrs: &[crate::domains::AttributeSpec]) -> AggregateFunction {
    let attr = attrs.first().map(|a| a.name.clone()).unwrap_or_default();
    match index % 3 {
        0 => AggregateFunction::Count,
        1 => AggregateFunction::Avg(attr),
        _ => AggregateFunction::Sum(attr),
    }
}

/// Builds a workload over `dataset`.
pub fn build_workload(dataset: &GeneratedDataset, config: &WorkloadConfig) -> Vec<WorkloadQuery> {
    let mut out = Vec::new();

    for domain in &dataset.domains {
        let hubs = &domain.hub_names;
        if hubs.is_empty() {
            continue;
        }
        let correct_2hop: Vec<_> = domain
            .schemas
            .iter()
            .filter(|s| s.correct && s.hops.len() == 2)
            .collect();

        // ---- Simple queries (plus operator variants) ----
        for (i, hub) in hubs.iter().take(config.queries_per_shape).enumerate() {
            let function = aggregate_for(i, &domain.attributes);
            let simple = SimpleQuery::new(
                hub,
                &[domain.hub_type.as_str()],
                &domain.query_predicate,
                &[domain.target_type.as_str()],
            );
            let ha = vec![HaComponent {
                domain: domain.name.clone(),
                hub: hub.clone(),
                via_type: None,
            }];
            out.push(WorkloadQuery {
                id: format!("Q{}", out.len() + 1),
                text: format!(
                    "{} of {} entities with {} {}",
                    function.name(),
                    domain.target_type,
                    domain.query_predicate,
                    hub
                ),
                domain: domain.name.clone(),
                shape: QueryShape::Simple,
                category: QueryCategory::Plain,
                query: AggregateQuery::simple(simple.clone(), function.clone()),
                ha_components: ha.clone(),
            });

            if config.include_operator_variants && domain.attributes.len() >= 2 {
                let filter_attr = &domain.attributes[1];
                let span = filter_attr.high - filter_attr.low;
                let filter = Filter::range(
                    &filter_attr.name,
                    filter_attr.low + 0.25 * span,
                    filter_attr.low + 0.75 * span,
                );
                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} of {} with {} {} and {} in range",
                        function.name(),
                        domain.target_type,
                        domain.query_predicate,
                        hub,
                        filter_attr.name
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Simple,
                    category: QueryCategory::Filtered,
                    query: AggregateQuery::simple(simple.clone(), function.clone())
                        .with_filter(filter),
                    ha_components: ha.clone(),
                });

                let group_attr = &domain.attributes[0];
                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} of {} with {} {} grouped by {}",
                        function.name(),
                        domain.target_type,
                        domain.query_predicate,
                        hub,
                        group_attr.name
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Simple,
                    category: QueryCategory::Grouped,
                    query: AggregateQuery::simple(simple.clone(), AggregateFunction::Count)
                        .with_group_by(GroupBy::new(
                            &group_attr.name,
                            (group_attr.high - group_attr.low) / 5.0,
                        )),
                    ha_components: ha.clone(),
                });

                let extreme_attr = &domain.attributes[0];
                let extreme = if i % 2 == 0 {
                    AggregateFunction::Max(extreme_attr.name.clone())
                } else {
                    AggregateFunction::Min(extreme_attr.name.clone())
                };
                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} {} of {} with {} {}",
                        extreme.name(),
                        extreme_attr.name,
                        domain.target_type,
                        domain.query_predicate,
                        hub
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Simple,
                    category: QueryCategory::Extreme,
                    query: AggregateQuery::simple(simple.clone(), extreme),
                    ha_components: ha.clone(),
                });
            }
        }

        // ---- Chain queries ----
        if let Some(schema) = correct_2hop.first() {
            let via_type = schema.hops[0].via_type.clone().unwrap_or_default();
            for (i, hub) in hubs
                .iter()
                .take(config.queries_per_shape.min(3))
                .enumerate()
            {
                let function = aggregate_for(i, &domain.attributes);
                let chain = ChainQuery::new(
                    hub,
                    &[domain.hub_type.as_str()],
                    vec![
                        ChainHop::new(&schema.hops[1].predicate, &[via_type.as_str()]),
                        ChainHop::new(&schema.hops[0].predicate, &[domain.target_type.as_str()]),
                    ],
                );
                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} of {} reached from {} via {}",
                        function.name(),
                        domain.target_type,
                        hub,
                        via_type
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Chain,
                    category: QueryCategory::Plain,
                    query: AggregateQuery::complex(ComplexQuery::chain(chain), function),
                    ha_components: vec![HaComponent {
                        domain: domain.name.clone(),
                        hub: hub.clone(),
                        via_type: Some(via_type.clone()),
                    }],
                });
            }
        }

        // ---- Star / cycle / flower queries over hub pairs ----
        if hubs.len() >= 2 {
            let pair_count = config.queries_per_shape.min(hubs.len() - 1).max(1);
            for i in 0..pair_count {
                let hub_a = &hubs[i % hubs.len()];
                let hub_b = &hubs[(i + 1) % hubs.len()];
                let function = aggregate_for(i, &domain.attributes);
                let simple_a = SimpleQuery::new(
                    hub_a,
                    &[domain.hub_type.as_str()],
                    &domain.query_predicate,
                    &[domain.target_type.as_str()],
                );
                let simple_b = SimpleQuery::new(
                    hub_b,
                    &[domain.hub_type.as_str()],
                    &domain.query_predicate,
                    &[domain.target_type.as_str()],
                );
                let ha_pair = vec![
                    HaComponent {
                        domain: domain.name.clone(),
                        hub: hub_a.clone(),
                        via_type: None,
                    },
                    HaComponent {
                        domain: domain.name.clone(),
                        hub: hub_b.clone(),
                        via_type: None,
                    },
                ];

                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} of {} related to both {} and {}",
                        function.name(),
                        domain.target_type,
                        hub_a,
                        hub_b
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Star,
                    category: QueryCategory::Plain,
                    query: AggregateQuery::complex(
                        ComplexQuery::star(vec![simple_a.clone(), simple_b.clone()]),
                        function.clone(),
                    ),
                    ha_components: ha_pair.clone(),
                });

                out.push(WorkloadQuery {
                    id: format!("Q{}", out.len() + 1),
                    text: format!(
                        "{} of {} in a cycle through {} and {}",
                        function.name(),
                        domain.target_type,
                        hub_a,
                        hub_b
                    ),
                    domain: domain.name.clone(),
                    shape: QueryShape::Cycle,
                    category: QueryCategory::Plain,
                    query: AggregateQuery::complex(
                        ComplexQuery::cycle(vec![
                            QueryComponent::Simple(simple_a.clone()),
                            QueryComponent::Simple(simple_b.clone()),
                        ]),
                        function.clone(),
                    ),
                    ha_components: ha_pair.clone(),
                });

                if let Some(schema) = correct_2hop.first() {
                    let via_type = schema.hops[0].via_type.clone().unwrap_or_default();
                    let chain = ChainQuery::new(
                        hub_b,
                        &[domain.hub_type.as_str()],
                        vec![
                            ChainHop::new(&schema.hops[1].predicate, &[via_type.as_str()]),
                            ChainHop::new(
                                &schema.hops[0].predicate,
                                &[domain.target_type.as_str()],
                            ),
                        ],
                    );
                    out.push(WorkloadQuery {
                        id: format!("Q{}", out.len() + 1),
                        text: format!(
                            "{} of {} related to {} and reached from {} via {}",
                            function.name(),
                            domain.target_type,
                            hub_a,
                            hub_b,
                            via_type
                        ),
                        domain: domain.name.clone(),
                        shape: QueryShape::Flower,
                        category: QueryCategory::Plain,
                        query: AggregateQuery::complex(
                            ComplexQuery::flower(vec![
                                QueryComponent::Simple(simple_a.clone()),
                                QueryComponent::Chain(chain),
                            ]),
                            function,
                        ),
                        ha_components: vec![
                            ha_pair[0].clone(),
                            HaComponent {
                                domain: domain.name.clone(),
                                hub: hub_b.clone(),
                                via_type: Some(via_type),
                            },
                        ],
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetScale, GeneratorConfig};
    use crate::domains::automotive;
    use crate::generator::generate;

    fn dataset() -> GeneratedDataset {
        generate(&GeneratorConfig::new(
            "test",
            DatasetScale::tiny(),
            vec![automotive(&["Germany", "China", "Korea"])],
            11,
        ))
    }

    #[test]
    fn workload_covers_all_shapes_and_categories() {
        let d = dataset();
        let wl = build_workload(&d, &WorkloadConfig::default());
        assert!(wl.len() >= 20, "{}", wl.len());
        for shape in QueryShape::all() {
            assert!(wl.iter().any(|q| q.shape == shape), "missing shape {shape}");
        }
        for cat in [
            QueryCategory::Plain,
            QueryCategory::Filtered,
            QueryCategory::Grouped,
            QueryCategory::Extreme,
        ] {
            assert!(
                wl.iter().any(|q| q.category == cat),
                "missing {}",
                cat.name()
            );
        }
        // Ids are unique.
        let ids: std::collections::HashSet<_> = wl.iter().map(|q| q.id.clone()).collect();
        assert_eq!(ids.len(), wl.len());
    }

    #[test]
    fn workload_queries_resolve_and_have_ha_answers() {
        let d = dataset();
        let wl = build_workload(&d, &WorkloadConfig::default());
        let mut nonempty = 0;
        for q in &wl {
            // Every query must resolve against its own dataset.
            match &q.query.query {
                kg_query::QuerySpec::Simple(s) => {
                    s.resolve(&d.graph).unwrap();
                }
                kg_query::QuerySpec::Complex(c) => {
                    c.resolve(&d.graph).unwrap();
                }
            }
            if !q.ha_answers(&d).is_empty() {
                nonempty += 1;
            }
            let _ = q.ha_value(&d);
        }
        // The vast majority of queries have non-empty annotated answers.
        assert!(nonempty * 10 >= wl.len() * 7, "{nonempty}/{}", wl.len());
    }

    #[test]
    fn simple_plain_ha_value_matches_planted_count() {
        let d = dataset();
        let wl = build_workload(
            &d,
            &WorkloadConfig {
                include_operator_variants: false,
                ..Default::default()
            },
        );
        let q = wl
            .iter()
            .find(|q| {
                q.shape == QueryShape::Simple
                    && matches!(q.query.function, AggregateFunction::Count)
            })
            .unwrap();
        let ha = q.ha_value(&d);
        assert!(ha > 0.0);
        assert_eq!(ha, q.ha_answers(&d).len() as f64);
        assert_eq!(q.category.name(), "Plain");
    }
}
