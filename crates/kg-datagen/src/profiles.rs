//! The three dataset profiles standing in for DBpedia, Freebase and YAGO2.
//!
//! The real datasets differ in domain breadth, edge density and noise
//! (Table III); the profiles mirror those *relative* differences at laptop
//! scale: `freebase-like` is densest and noisiest, `yago-like` has the most
//! entities per domain, `dbpedia-like` sits in between.

use crate::config::{DatasetScale, GeneratorConfig};
use crate::domains;

/// Which real-world KG a generated profile imitates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfileKind {
    /// Open-domain, moderate density (stands in for DBpedia).
    DbpediaLike,
    /// Many predicates, densest and noisiest (stands in for Freebase).
    FreebaseLike,
    /// Largest entity count, fewest predicates (stands in for YAGO2).
    YagoLike,
}

impl DatasetProfileKind {
    /// All profiles in the order used by the paper's tables.
    pub fn all() -> [DatasetProfileKind; 3] {
        [
            DatasetProfileKind::DbpediaLike,
            DatasetProfileKind::FreebaseLike,
            DatasetProfileKind::YagoLike,
        ]
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfileKind::DbpediaLike => "DBpedia-like",
            DatasetProfileKind::FreebaseLike => "Freebase-like",
            DatasetProfileKind::YagoLike => "YAGO2-like",
        }
    }

    /// Builds the generator configuration at the given scale.
    pub fn config(self, scale: DatasetScale, seed: u64) -> GeneratorConfig {
        match self {
            DatasetProfileKind::DbpediaLike => dbpedia_like(scale, seed),
            DatasetProfileKind::FreebaseLike => freebase_like(scale, seed),
            DatasetProfileKind::YagoLike => yago_like(scale, seed),
        }
    }
}

impl std::fmt::Display for DatasetProfileKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const COUNTRIES: &[&str] = &[
    "Germany", "China", "Korea", "Japan", "France", "Italy", "Spain", "England",
];
const CLUBS: &[&str] = &[
    "Barcelona_FC",
    "Real_Madrid",
    "Bayern_Munich",
    "Arsenal",
    "Juventus",
];
const DIRECTORS: &[&str] = &[
    "Steven_Spielberg",
    "Ang_Lee",
    "Bong_Joon-ho",
    "Greta_Gerwig",
];

/// DBpedia-like: automotive + geography + soccer.
pub fn dbpedia_like(scale: DatasetScale, seed: u64) -> GeneratorConfig {
    GeneratorConfig::new(
        "DBpedia-like",
        scale,
        vec![
            domains::automotive(COUNTRIES),
            domains::geography(&COUNTRIES[..6]),
            domains::soccer(CLUBS),
        ],
        seed,
    )
}

/// Freebase-like: all five domains, denser noise.
pub fn freebase_like(mut scale: DatasetScale, seed: u64) -> GeneratorConfig {
    scale.noise_edges_per_target *= 1.5;
    scale.noise_entities_per_domain = (scale.noise_entities_per_domain as f64 * 1.4) as usize;
    GeneratorConfig::new(
        "Freebase-like",
        scale,
        vec![
            domains::automotive(&COUNTRIES[..6]),
            domains::movies(DIRECTORS),
            domains::soccer(CLUBS),
            domains::languages(&COUNTRIES[..5]),
            domains::geography(&COUNTRIES[..5]),
        ],
        seed,
    )
}

/// YAGO2-like: fewer domains but more targets per hub.
pub fn yago_like(mut scale: DatasetScale, seed: u64) -> GeneratorConfig {
    scale.targets_per_hub = (scale.targets_per_hub as f64 * 1.3) as usize;
    GeneratorConfig::new(
        "YAGO2-like",
        scale,
        vec![
            domains::geography(COUNTRIES),
            domains::automotive(&COUNTRIES[..5]),
            domains::movies(&DIRECTORS[..3]),
        ],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn profiles_build_and_differ() {
        let scale = DatasetScale::tiny();
        let db = generate(&dbpedia_like(scale.clone(), 1));
        let fb = generate(&freebase_like(scale.clone(), 1));
        let yago = generate(&yago_like(scale, 1));
        assert!(fb.graph.predicate_count() > db.graph.predicate_count());
        assert!(db.graph.entity_count() > 0 && yago.graph.entity_count() > 0);
        assert_eq!(db.name, "DBpedia-like");
        assert_eq!(DatasetProfileKind::all().len(), 3);
        assert_eq!(
            DatasetProfileKind::FreebaseLike.to_string(),
            "Freebase-like"
        );
    }

    #[test]
    fn profile_kind_dispatch() {
        for kind in DatasetProfileKind::all() {
            let cfg = kind.config(DatasetScale::tiny(), 3);
            assert!(!cfg.domains.is_empty());
            assert_eq!(cfg.name, kind.name());
        }
    }
}
