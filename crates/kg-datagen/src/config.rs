//! Generator configuration: scale knobs and global settings.

use crate::domains::DomainSpec;
use serde::{Deserialize, Serialize};

/// How large the generated dataset should be.
///
/// The defaults produce a graph of a few tens of thousands of nodes — large
/// enough that exhaustive enumeration (SSB) is visibly slower than sampling,
/// small enough that the full experiment suite runs on a laptop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetScale {
    /// Target entities (answers) generated per hub entity per domain.
    pub targets_per_hub: usize,
    /// Intermediate entities (companies, clubs, studios, …) per hub.
    pub intermediates_per_hub: usize,
    /// Number of unrelated "background" entities per domain, connected by
    /// noise predicates only.
    pub noise_entities_per_domain: usize,
    /// Extra random noise edges per target entity.
    pub noise_edges_per_target: f64,
    /// Probability that a target is additionally connected to a second hub.
    pub secondary_hub_probability: f64,
    /// Probability that a target is additionally connected to a third hub.
    pub tertiary_hub_probability: f64,
}

impl Default for DatasetScale {
    fn default() -> Self {
        Self {
            targets_per_hub: 220,
            intermediates_per_hub: 18,
            noise_entities_per_domain: 400,
            noise_edges_per_target: 1.2,
            secondary_hub_probability: 0.35,
            tertiary_hub_probability: 0.10,
        }
    }
}

impl DatasetScale {
    /// A small scale for unit tests (hundreds of nodes).
    pub fn tiny() -> Self {
        Self {
            targets_per_hub: 40,
            intermediates_per_hub: 6,
            noise_entities_per_domain: 40,
            noise_edges_per_target: 0.8,
            secondary_hub_probability: 0.35,
            tertiary_hub_probability: 0.10,
        }
    }

    /// A larger scale for benchmarks.
    pub fn large() -> Self {
        Self {
            targets_per_hub: 600,
            intermediates_per_hub: 30,
            noise_entities_per_domain: 1_500,
            noise_edges_per_target: 1.5,
            secondary_hub_probability: 0.35,
            tertiary_hub_probability: 0.10,
        }
    }
}

/// Full generator configuration: a named profile, a scale, the domain specs
/// and the random seed.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Profile name (`dbpedia-like`, …), used in reports.
    pub name: String,
    /// Scale knobs.
    pub scale: DatasetScale,
    /// The domains to generate.
    pub domains: Vec<DomainSpec>,
    /// RNG seed; generation is deterministic given the seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration.
    pub fn new(name: &str, scale: DatasetScale, domains: Vec<DomainSpec>, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            scale,
            domains,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let tiny = DatasetScale::tiny();
        let default = DatasetScale::default();
        let large = DatasetScale::large();
        assert!(tiny.targets_per_hub < default.targets_per_hub);
        assert!(default.targets_per_hub < large.targets_per_hub);
        assert!(tiny.noise_entities_per_domain < large.noise_entities_per_domain);
    }

    #[test]
    fn config_construction() {
        let cfg = GeneratorConfig::new("test", DatasetScale::tiny(), Vec::new(), 7);
        assert_eq!(cfg.name, "test");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.domains.is_empty());
    }
}
