//! The dataset generator: materialises domains into a knowledge graph,
//! builds the oracle predicate vectors and records the planted annotation.

use crate::annotation::{Annotation, AnnotationNoise};
use crate::config::GeneratorConfig;
use crate::domains::{ConnectionSchema, DomainSpec};
use kg_core::{EntityId, GraphBuilder, KnowledgeGraph};
use kg_embed::{PredicateVectorStore, SyntheticOracle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A generated dataset: the graph, the oracle embedding, the planted
/// annotation and the domain specs it was generated from.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Profile name (`dbpedia-like`, …).
    pub name: String,
    /// The knowledge graph.
    pub graph: KnowledgeGraph,
    /// Oracle predicate vectors derived from the planted semantic groups.
    pub oracle: PredicateVectorStore,
    /// Planted (simulated human) annotation.
    pub annotation: Annotation,
    /// The domain specs used.
    pub domains: Vec<DomainSpec>,
}

impl GeneratedDataset {
    /// The domain spec with the given name.
    pub fn domain(&self, name: &str) -> Option<&DomainSpec> {
        self.domains.iter().find(|d| d.name == name)
    }
}

fn pick_schema<'a>(schemas: &'a [ConnectionSchema], rng: &mut SmallRng) -> &'a ConnectionSchema {
    let total: f64 = schemas.iter().map(|s| s.weight).sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for s in schemas {
        if x < s.weight {
            return s;
        }
        x -= s.weight;
    }
    schemas.last().expect("domain has at least one schema")
}

fn attr_value(low: f64, high: f64, rng: &mut SmallRng) -> f64 {
    // Squared-uniform skews towards the lower end, giving the long-tailed
    // distributions typical of prices / populations / box office.
    let r: f64 = rng.gen::<f64>();
    low + (high - low) * r * r
}

/// Generates a dataset from a configuration. Deterministic given the seed.
pub fn generate(config: &GeneratorConfig) -> GeneratedDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();
    let mut annotation = Annotation::new(AnnotationNoise::default(), config.seed);

    // (domain index, schema name, hub name) -> intermediate entity pool.
    let mut intermediates: HashMap<(usize, String, String), Vec<EntityId>> = HashMap::new();
    let mut all_targets: Vec<EntityId> = Vec::new();
    let mut noise_pool: Vec<EntityId> = Vec::new();

    for (di, domain) in config.domains.iter().enumerate() {
        for schema in &domain.schemas {
            let via = schema.hops.first().and_then(|h| h.via_type.as_deref());
            annotation.declare_schema(&domain.name, &schema.name, schema.correct, via);
        }
        // Hubs.
        let hub_ids: Vec<EntityId> = domain
            .hub_names
            .iter()
            .map(|name| b.add_entity(name, &[domain.hub_type.as_str()]))
            .collect();

        // Intermediate pools per (schema, hub): each intermediate is created
        // with its hub-facing edge so that routing a target through it
        // realises the schema's full path.
        for schema in &domain.schemas {
            if schema.hops.len() < 2 {
                continue;
            }
            let via_type = schema.hops[0]
                .via_type
                .clone()
                .unwrap_or_else(|| "Entity".to_string());
            let final_pred = &schema.hops[1].predicate;
            for (hi, hub) in hub_ids.iter().enumerate() {
                let pool: Vec<EntityId> = (0..config.scale.intermediates_per_hub.max(2))
                    .map(|k| {
                        let name = format!(
                            "{}_{}_{}_{}_{}",
                            domain.name, schema.name, via_type, domain.hub_names[hi], k
                        );
                        let id = b.add_entity(&name, &[via_type.as_str()]);
                        b.add_edge(id, final_pred, *hub);
                        id
                    })
                    .collect();
                intermediates.insert(
                    (di, schema.name.clone(), domain.hub_names[hi].clone()),
                    pool,
                );
            }
        }

        // Targets.
        for (hi, _hub) in hub_ids.iter().enumerate() {
            let hub_name = &domain.hub_names[hi];
            for t in 0..config.scale.targets_per_hub {
                let name = format!("{}_{}_{}", domain.target_prefix, hub_name, t);
                let target = b.add_entity(&name, &[domain.target_type.as_str()]);
                all_targets.push(target);
                for attr in &domain.attributes {
                    if rng.gen::<f64>() < attr.coverage {
                        b.set_attribute(
                            target,
                            &attr.name,
                            attr_value(attr.low, attr.high, &mut rng),
                        );
                    }
                }
                // Primary hub connection plus probabilistic secondary/tertiary hubs.
                let mut hubs_for_target = vec![hi];
                if hub_ids.len() > 1 && rng.gen::<f64>() < config.scale.secondary_hub_probability {
                    let other = (hi + 1 + rng.gen_range(0..hub_ids.len() - 1)) % hub_ids.len();
                    hubs_for_target.push(other);
                }
                if hub_ids.len() > 2 && rng.gen::<f64>() < config.scale.tertiary_hub_probability {
                    let other = (hi + 1 + rng.gen_range(0..hub_ids.len() - 1)) % hub_ids.len();
                    if !hubs_for_target.contains(&other) {
                        hubs_for_target.push(other);
                    }
                }
                for &target_hub_index in &hubs_for_target {
                    let schema = pick_schema(&domain.schemas, &mut rng).clone();
                    let target_hub = hub_ids[target_hub_index];
                    let target_hub_name = &domain.hub_names[target_hub_index];
                    if schema.hops.len() == 1 {
                        b.add_edge(target, &schema.hops[0].predicate, target_hub);
                    } else {
                        let pool = intermediates
                            .get(&(di, schema.name.clone(), target_hub_name.clone()))
                            .expect("intermediate pool exists for every 2-hop schema");
                        let mid = pool[rng.gen_range(0..pool.len())];
                        b.add_edge(target, &schema.hops[0].predicate, mid);
                    }
                    annotation.record(
                        &domain.name,
                        target_hub_name,
                        &schema.name,
                        schema.correct,
                        target,
                    );
                }
            }
        }

        // Background noise entities for this domain.
        for k in 0..config.scale.noise_entities_per_domain {
            let id = b.add_entity(
                &format!("{}_misc_{}", domain.name, k),
                &[&format!("Misc{}", di)],
            );
            noise_pool.push(id);
            if let Some(&hub) = hub_ids.get(k % hub_ids.len().max(1)) {
                if rng.gen::<f64>() < 0.5 {
                    b.add_edge(id, "relatedTo", hub);
                }
            }
        }
    }

    // Noise edges incident to targets.
    let noise_predicates = ["relatedTo", "seeAlso", "linksTo"];
    if !noise_pool.is_empty() {
        for &target in &all_targets {
            let mut budget = config.scale.noise_edges_per_target;
            while budget > 0.0 {
                if budget >= 1.0 || rng.gen::<f64>() < budget {
                    let other = noise_pool[rng.gen_range(0..noise_pool.len())];
                    let pred = noise_predicates[rng.gen_range(0..noise_predicates.len())];
                    if rng.gen_bool(0.5) {
                        b.add_edge(target, pred, other);
                    } else {
                        b.add_edge(other, pred, target);
                    }
                }
                budget -= 1.0;
            }
        }
    }

    let graph = b.build();

    // Oracle: one semantic group per domain, plus one for the noise predicates.
    let mut oracle = SyntheticOracle::new();
    let noise_group = config.domains.len();
    for (di, domain) in config.domains.iter().enumerate() {
        for (pred, affinity) in &domain.predicate_affinities {
            if let Some(pid) = graph.predicate_id(pred) {
                oracle.assign(pid, di, *affinity);
            }
        }
    }
    for pred in noise_predicates {
        if let Some(pid) = graph.predicate_id(pred) {
            oracle.assign(pid, noise_group, 0.9);
        }
    }
    let oracle = oracle.build();

    GeneratedDataset {
        name: config.name.clone(),
        graph,
        oracle,
        annotation,
        domains: config.domains.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetScale;
    use crate::domains::automotive;
    use kg_embed::PredicateSimilarity;

    fn tiny_dataset() -> GeneratedDataset {
        let cfg = GeneratorConfig::new(
            "test",
            DatasetScale::tiny(),
            vec![automotive(&["Germany", "China", "Korea"])],
            7,
        );
        generate(&cfg)
    }

    #[test]
    fn generated_graph_has_expected_shape() {
        let d = tiny_dataset();
        let g = &d.graph;
        assert!(g.entity_count() > 150, "{}", g.entity_count());
        assert!(g.edge_count() > g.entity_count() / 2);
        assert!(g.entity_by_name("Germany").is_some());
        let auto = g.type_id("Automobile").unwrap();
        assert_eq!(
            g.entities_with_type(auto).len(),
            3 * DatasetScale::tiny().targets_per_hub
        );
        assert!(g.attr_id("price").is_some());
        assert_eq!(d.domain("automotive").unwrap().name, "automotive");
        assert!(d.domain("nope").is_none());
    }

    #[test]
    fn oracle_similarities_follow_affinities() {
        let d = tiny_dataset();
        let g = &d.graph;
        let product = g.predicate_id("product").unwrap();
        let assembly = g.predicate_id("assembly").unwrap();
        let designer = g.predicate_id("designer").unwrap();
        let related = g.predicate_id("relatedTo").unwrap();
        assert!(d.oracle.similarity(product, assembly) > 0.9);
        assert!(d.oracle.similarity(product, designer) < 0.7);
        assert!(d.oracle.similarity(product, related) < 0.1);
    }

    #[test]
    fn planted_annotation_is_consistent_with_graph() {
        let d = tiny_dataset();
        let correct = d.annotation.planted_correct("automotive", "Germany");
        assert!(!correct.is_empty());
        let auto = d.graph.type_id("Automobile").unwrap();
        for e in &correct {
            assert!(d.graph.entity(*e).has_type(auto));
        }
        // A target planted for Germany should reach Germany within 2 hops.
        let germany = d.graph.entity_by_name("Germany").unwrap();
        let scope = kg_core::bounded_subgraph(&d.graph, germany, 2);
        let reachable = correct.iter().filter(|e| scope.contains(**e)).count();
        assert_eq!(reachable, correct.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.graph.entity_count(), b.graph.entity_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(
            a.annotation.planted_correct("automotive", "China"),
            b.annotation.planted_correct("automotive", "China")
        );
    }
}
