//! Simulated human annotation (HA ground truth).
//!
//! The paper obtains human-annotated ground truth by crowdsourcing schema
//! annotations for every query. Here the generator *plants* the correct
//! schemas, so the annotation is known exactly; a configurable noise model
//! (annotators occasionally missing a correct answer or accepting an
//! incorrect one) keeps HA-GT from being trivially identical to the planted
//! truth, mirroring the imperfect agreement visible in Table V.

use kg_core::EntityId;
use std::collections::{BTreeMap, BTreeSet};

/// Annotator noise model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnotationNoise {
    /// Probability that a genuinely correct answer is missed by annotators.
    pub miss_rate: f64,
    /// Probability that an incorrect (but related) answer is accepted.
    pub false_positive_rate: f64,
}

impl Default for AnnotationNoise {
    fn default() -> Self {
        Self {
            miss_rate: 0.02,
            false_positive_rate: 0.02,
        }
    }
}

type Key = (String, String); // (domain, hub name)
type SchemaKey = (String, String, String); // (domain, hub name, schema name)

/// The planted annotation of a generated dataset.
#[derive(Clone, Debug, Default)]
pub struct Annotation {
    correct: BTreeMap<Key, BTreeSet<EntityId>>,
    incorrect: BTreeMap<Key, BTreeSet<EntityId>>,
    by_schema: BTreeMap<SchemaKey, BTreeSet<EntityId>>,
    schema_correct: BTreeMap<(String, String), bool>, // (domain, schema) -> correct
    schema_via: BTreeMap<(String, String), Option<String>>, // (domain, schema) -> via type
    noise: AnnotationNoise,
    seed: u64,
}

fn hash01(entity: EntityId, salt: u64) -> f64 {
    let mut x = u64::from(entity.raw()).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64) / (u64::MAX as f64)
}

impl Annotation {
    /// Creates an empty annotation with the given noise model and seed.
    pub fn new(noise: AnnotationNoise, seed: u64) -> Self {
        Self {
            noise,
            seed,
            ..Self::default()
        }
    }

    /// Declares a schema of a domain (its correctness and intermediate type).
    pub fn declare_schema(&mut self, domain: &str, schema: &str, correct: bool, via: Option<&str>) {
        self.schema_correct
            .insert((domain.to_string(), schema.to_string()), correct);
        self.schema_via.insert(
            (domain.to_string(), schema.to_string()),
            via.map(|s| s.to_string()),
        );
    }

    /// Records that `entity` was planted as an answer of `(domain, hub)` via
    /// `schema`.
    pub fn record(
        &mut self,
        domain: &str,
        hub: &str,
        schema: &str,
        correct: bool,
        entity: EntityId,
    ) {
        let key = (domain.to_string(), hub.to_string());
        if correct {
            self.correct.entry(key.clone()).or_default().insert(entity);
        } else {
            self.incorrect
                .entry(key.clone())
                .or_default()
                .insert(entity);
        }
        self.by_schema
            .entry((domain.to_string(), hub.to_string(), schema.to_string()))
            .or_default()
            .insert(entity);
    }

    /// The planted correct answers of the domain's query intent at `hub`,
    /// without annotator noise.
    pub fn planted_correct(&self, domain: &str, hub: &str) -> Vec<EntityId> {
        self.correct
            .get(&(domain.to_string(), hub.to_string()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Human-annotated answers for the simple query intent of `(domain, hub)`:
    /// planted correct answers minus deterministic misses, plus deterministic
    /// false positives drawn from the incorrectly-connected answers.
    pub fn ha_simple(&self, domain: &str, hub: &str) -> Vec<EntityId> {
        let key = (domain.to_string(), hub.to_string());
        let mut out: BTreeSet<EntityId> = BTreeSet::new();
        if let Some(correct) = self.correct.get(&key) {
            for &e in correct {
                if hash01(e, self.seed ^ 0xA11CE) >= self.noise.miss_rate {
                    out.insert(e);
                }
            }
        }
        if let Some(incorrect) = self.incorrect.get(&key) {
            for &e in incorrect {
                if hash01(e, self.seed ^ 0xB0B) < self.noise.false_positive_rate {
                    out.insert(e);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Human-annotated answers for a chain query whose intermediate node type
    /// is `via_type`: the union of the planted answers of every *correct*
    /// schema of the domain with that intermediate type.
    pub fn ha_chain(&self, domain: &str, hub: &str, via_type: &str) -> Vec<EntityId> {
        let mut out: BTreeSet<EntityId> = BTreeSet::new();
        for ((d, h, schema), entities) in &self.by_schema {
            if d != domain || h != hub {
                continue;
            }
            let skey = (domain.to_string(), schema.clone());
            let correct = self.schema_correct.get(&skey).copied().unwrap_or(false);
            let via = self.schema_via.get(&skey).cloned().flatten();
            if correct && via.as_deref() == Some(via_type) {
                for &e in entities {
                    if hash01(e, self.seed ^ 0xA11CE) >= self.noise.miss_rate {
                        out.insert(e);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Planted answers of one specific schema (regardless of correctness).
    pub fn schema_answers(&self, domain: &str, hub: &str, schema: &str) -> Vec<EntityId> {
        self.by_schema
            .get(&(domain.to_string(), hub.to_string(), schema.to_string()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All `(domain, hub)` pairs that have at least one planted correct answer.
    pub fn populated_hubs(&self) -> Vec<(String, String)> {
        self.correct.keys().cloned().collect()
    }

    /// The configured noise model.
    pub fn noise(&self) -> AnnotationNoise {
        self.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn record_and_query_planted_truth() {
        let mut a = Annotation::new(
            AnnotationNoise {
                miss_rate: 0.0,
                false_positive_rate: 0.0,
            },
            1,
        );
        a.declare_schema("automotive", "direct_product", true, None);
        a.declare_schema("automotive", "via_company", true, Some("Company"));
        a.declare_schema("automotive", "designer", false, Some("Person"));
        a.record("automotive", "Germany", "direct_product", true, e(1));
        a.record("automotive", "Germany", "via_company", true, e(2));
        a.record("automotive", "Germany", "designer", false, e(3));
        assert_eq!(a.planted_correct("automotive", "Germany"), vec![e(1), e(2)]);
        assert_eq!(a.ha_simple("automotive", "Germany"), vec![e(1), e(2)]);
        assert_eq!(a.ha_chain("automotive", "Germany", "Company"), vec![e(2)]);
        assert!(a.ha_chain("automotive", "Germany", "Person").is_empty());
        assert_eq!(
            a.schema_answers("automotive", "Germany", "designer"),
            vec![e(3)]
        );
        assert!(a.planted_correct("automotive", "France").is_empty());
        assert_eq!(a.populated_hubs().len(), 1);
    }

    #[test]
    fn noise_misses_some_and_adds_some() {
        let mut a = Annotation::new(
            AnnotationNoise {
                miss_rate: 0.3,
                false_positive_rate: 0.3,
            },
            42,
        );
        a.declare_schema("d", "good", true, None);
        a.declare_schema("d", "bad", false, None);
        for i in 0..200 {
            a.record("d", "H", "good", true, e(i));
        }
        for i in 200..400 {
            a.record("d", "H", "bad", false, e(i));
        }
        let ha = a.ha_simple("d", "H");
        let correct_kept = ha.iter().filter(|x| x.raw() < 200).count();
        let incorrect_added = ha.iter().filter(|x| x.raw() >= 200).count();
        assert!(correct_kept > 100 && correct_kept < 200);
        assert!(incorrect_added > 20 && incorrect_added < 120);
        // Deterministic given the seed.
        assert_eq!(ha, a.ha_simple("d", "H"));
        assert_eq!(a.noise().miss_rate, 0.3);
    }
}
