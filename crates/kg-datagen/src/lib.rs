//! # kg-datagen — synthetic schema-flexible knowledge graphs and workloads
//!
//! The paper evaluates on DBpedia, Freebase and YAGO2 with crawled numerical
//! attributes and crowdsourced human annotation. Those resources are not
//! available here, so this crate generates **synthetic datasets that exercise
//! the same phenomena** (see the substitution table in `DESIGN.md`):
//!
//! * **Schema flexibility** — the same query intent ("car produced in
//!   Germany") is materialised through many structurally different connection
//!   schemas (direct `product` edge, `assembly` via a company, `designer` via
//!   a person, …), some semantically correct and some not.
//! * **Latent predicate semantics** — every predicate belongs to a semantic
//!   group with an affinity; the [`kg_embed::SyntheticOracle`] turns these
//!   assignments into predicate vectors, and the trained embedding models can
//!   rediscover them from the graph structure.
//! * **Planted ground truth** — the generator records which answers are
//!   connected through semantically correct schemas, which simulates the
//!   paper's human annotation (HA-GT) including configurable annotator noise.
//! * **Workloads** — COUNT/SUM/AVG/MAX/MIN queries of every shape (simple,
//!   chain, star, cycle, flower) with filters and GROUP-BY, mirroring the
//!   paper's 400-query workload derived from QALD-4 / WebQuestions seeds.
//!
//! Three dataset profiles (`dbpedia-like`, `freebase-like`, `yago-like`)
//! differ in domain mix, density and noise, standing in for the three
//! real-world KGs of Table III at laptop scale.
//!
//! ```
//! use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
//!
//! let dataset = generate(&GeneratorConfig::new(
//!     "demo",
//!     DatasetScale::tiny(),
//!     vec![domains::automotive(&["Germany", "China"])],
//!     7,
//! ));
//! assert!(dataset.graph.entity_by_name("Germany").is_some());
//! assert!(!dataset.annotation.planted_correct("automotive", "China").is_empty());
//! ```

pub mod annotation;
pub mod config;
pub mod domains;
pub mod generator;
pub mod profiles;
pub mod workload;

pub use annotation::{Annotation, AnnotationNoise};
pub use config::{DatasetScale, GeneratorConfig};
pub use domains::{AttributeSpec, ConnectionSchema, DomainSpec, SchemaHop};
pub use generator::{generate, GeneratedDataset};
pub use profiles::{dbpedia_like, freebase_like, yago_like, DatasetProfileKind};
pub use workload::{build_workload, QueryCategory, WorkloadConfig, WorkloadQuery};
