//! Domain templates: the vocabulary and connection schemas of each subject
//! area (automotive, soccer, movies, geography, languages).
//!
//! A *domain* captures one query intent family of the paper's workload, e.g.
//! "cars produced in a country" (Q1–Q3), "soccer players of a club / country"
//! (Q4, Q9), "movies by a director" (Q6), "museums / cities of a country"
//! (Q7, Q8), "languages spoken in a country" (Q5). Each domain lists the
//! *connection schemas* through which a target entity can be linked to a hub
//! entity; schemas marked `correct` correspond to what a human annotator
//! would accept for the query intent, the others are semantically related but
//! wrong (or outright noise).

use serde::{Deserialize, Serialize};

/// A numerical attribute of a domain's target entities, drawn from a
/// log-uniform-ish range `[low, high]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// Attribute name (e.g. `price`).
    pub name: String,
    /// Lower bound of generated values.
    pub low: f64,
    /// Upper bound of generated values.
    pub high: f64,
    /// Fraction of targets that carry the attribute (the real KGs are
    /// incomplete; missing attributes exercise the estimators' skip logic).
    pub coverage: f64,
}

impl AttributeSpec {
    /// Creates a spec with full coverage.
    pub fn new(name: &str, low: f64, high: f64) -> Self {
        Self {
            name: name.to_string(),
            low,
            high,
            coverage: 0.97,
        }
    }
}

/// One hop of a connection schema, read from the *target* towards the *hub*.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchemaHop {
    /// Predicate of the hop.
    pub predicate: String,
    /// Type of the intermediate node this hop leads to; `None` for the final
    /// hop, which reaches the hub itself.
    pub via_type: Option<String>,
}

impl SchemaHop {
    /// A hop to an intermediate node of the given type.
    pub fn via(predicate: &str, via_type: &str) -> Self {
        Self {
            predicate: predicate.to_string(),
            via_type: Some(via_type.to_string()),
        }
    }

    /// The final hop, reaching the hub.
    pub fn to_hub(predicate: &str) -> Self {
        Self {
            predicate: predicate.to_string(),
            via_type: None,
        }
    }
}

/// A way a target entity can be connected to a hub entity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectionSchema {
    /// Schema name (used to key chain-query ground truth).
    pub name: String,
    /// Hops from the target towards the hub; the last hop reaches the hub.
    pub hops: Vec<SchemaHop>,
    /// Whether a human annotator would accept answers connected this way for
    /// the domain's query intent.
    pub correct: bool,
    /// Relative probability of a target using this schema.
    pub weight: f64,
}

impl ConnectionSchema {
    /// Creates a schema.
    pub fn new(name: &str, hops: Vec<SchemaHop>, correct: bool, weight: f64) -> Self {
        Self {
            name: name.to_string(),
            hops,
            correct,
            weight,
        }
    }
}

/// A full domain template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name (e.g. `automotive`).
    pub name: String,
    /// Type of the hub entities (e.g. `Country`).
    pub hub_type: String,
    /// Names of the hub entities (e.g. `Germany`, `China`, …).
    pub hub_names: Vec<String>,
    /// Type of the target entities (e.g. `Automobile`).
    pub target_type: String,
    /// Prefix for generated target names.
    pub target_prefix: String,
    /// The query predicate of the domain's intent (e.g. `product`).
    pub query_predicate: String,
    /// Numerical attributes carried by targets.
    pub attributes: Vec<AttributeSpec>,
    /// Connection schemas with their semantic-group affinities.
    pub schemas: Vec<ConnectionSchema>,
    /// Predicate → affinity within this domain's semantic group. Predicates
    /// not listed here fall into an "unrelated" group.
    pub predicate_affinities: Vec<(String, f64)>,
}

impl DomainSpec {
    /// Names of all intermediate types used by the schemas.
    pub fn intermediate_types(&self) -> Vec<String> {
        let mut types: Vec<String> = self
            .schemas
            .iter()
            .flat_map(|s| s.hops.iter().filter_map(|h| h.via_type.clone()))
            .collect();
        types.sort();
        types.dedup();
        types
    }

    /// The affinity of `predicate` within this domain's semantic group, if
    /// the predicate belongs to the domain.
    pub fn affinity(&self, predicate: &str) -> Option<f64> {
        self.predicate_affinities
            .iter()
            .find(|(p, _)| p == predicate)
            .map(|(_, a)| *a)
    }

    /// The schema with the given name.
    pub fn schema(&self, name: &str) -> Option<&ConnectionSchema> {
        self.schemas.iter().find(|s| s.name == name)
    }
}

/// The automotive domain: "cars produced in a country" (Fig. 1, Q1–Q3).
pub fn automotive(hubs: &[&str]) -> DomainSpec {
    DomainSpec {
        name: "automotive".into(),
        hub_type: "Country".into(),
        hub_names: hubs.iter().map(|s| s.to_string()).collect(),
        target_type: "Automobile".into(),
        target_prefix: "car".into(),
        query_predicate: "product".into(),
        attributes: vec![
            AttributeSpec::new("price", 15_000.0, 120_000.0),
            AttributeSpec::new("horsepower", 90.0, 650.0),
            AttributeSpec::new("fuel_economy", 18.0, 45.0),
        ],
        schemas: vec![
            ConnectionSchema::new(
                "direct_product",
                vec![SchemaHop::to_hub("product")],
                true,
                0.25,
            ),
            ConnectionSchema::new(
                "direct_assembly",
                vec![SchemaHop::to_hub("assembly")],
                true,
                0.2,
            ),
            ConnectionSchema::new(
                "via_company",
                vec![
                    SchemaHop::via("manufacturer", "Company"),
                    SchemaHop::to_hub("country"),
                ],
                true,
                0.25,
            ),
            ConnectionSchema::new(
                "via_assembly_company",
                vec![
                    SchemaHop::via("assembly", "Company"),
                    SchemaHop::to_hub("country"),
                ],
                true,
                0.15,
            ),
            ConnectionSchema::new(
                "designer",
                vec![
                    SchemaHop::via("designer", "Person"),
                    SchemaHop::to_hub("nationality"),
                ],
                false,
                0.1,
            ),
            ConnectionSchema::new(
                "exhibition",
                vec![
                    SchemaHop::via("exhibitedAt", "Museum"),
                    SchemaHop::to_hub("situatedIn"),
                ],
                false,
                0.05,
            ),
        ],
        predicate_affinities: vec![
            ("product".into(), 1.0),
            ("assembly".into(), 0.97),
            ("manufacturer".into(), 0.95),
            ("country".into(), 0.90),
            ("designer".into(), 0.62),
            ("nationality".into(), 0.66),
            ("exhibitedAt".into(), 0.30),
            ("situatedIn".into(), 0.45),
        ],
    }
}

/// The soccer domain: "players of a club / country" (Q4, Q9).
pub fn soccer(hubs: &[&str]) -> DomainSpec {
    DomainSpec {
        name: "soccer".into(),
        hub_type: "SoccerClub".into(),
        hub_names: hubs.iter().map(|s| s.to_string()).collect(),
        target_type: "SoccerPlayer".into(),
        target_prefix: "player".into(),
        query_predicate: "team".into(),
        attributes: vec![
            AttributeSpec::new("age", 17.0, 39.0),
            AttributeSpec::new("transfer_value", 0.5, 120.0),
            AttributeSpec::new("goals", 0.0, 300.0),
        ],
        schemas: vec![
            ConnectionSchema::new("direct_team", vec![SchemaHop::to_hub("team")], true, 0.45),
            ConnectionSchema::new("plays_for", vec![SchemaHop::to_hub("playsFor")], true, 0.2),
            ConnectionSchema::new(
                "via_squad",
                vec![
                    SchemaHop::via("memberOf", "Squad"),
                    SchemaHop::to_hub("squadOf"),
                ],
                true,
                0.2,
            ),
            ConnectionSchema::new(
                "trained_at",
                vec![
                    SchemaHop::via("trainedAt", "Academy"),
                    SchemaHop::to_hub("affiliatedWith"),
                ],
                false,
                0.1,
            ),
            ConnectionSchema::new("supports", vec![SchemaHop::to_hub("supports")], false, 0.05),
        ],
        predicate_affinities: vec![
            ("team".into(), 1.0),
            ("playsFor".into(), 0.96),
            ("memberOf".into(), 0.92),
            ("squadOf".into(), 0.90),
            ("trainedAt".into(), 0.60),
            ("affiliatedWith".into(), 0.64),
            ("supports".into(), 0.28),
        ],
    }
}

/// The movie domain: "movies directed by a person" (Q6).
pub fn movies(hubs: &[&str]) -> DomainSpec {
    DomainSpec {
        name: "movies".into(),
        hub_type: "Director".into(),
        hub_names: hubs.iter().map(|s| s.to_string()).collect(),
        target_type: "Movie".into(),
        target_prefix: "movie".into(),
        query_predicate: "director".into(),
        attributes: vec![
            AttributeSpec::new("box_office", 1.0, 1_200.0),
            AttributeSpec::new("rating", 3.0, 9.5),
            AttributeSpec::new("runtime", 70.0, 200.0),
        ],
        schemas: vec![
            ConnectionSchema::new(
                "direct_director",
                vec![SchemaHop::to_hub("director")],
                true,
                0.4,
            ),
            ConnectionSchema::new(
                "directed_by",
                vec![SchemaHop::to_hub("directedBy")],
                true,
                0.2,
            ),
            ConnectionSchema::new(
                "via_studio",
                vec![
                    SchemaHop::via("producedBy", "Studio"),
                    SchemaHop::to_hub("founder"),
                ],
                false,
                0.15,
            ),
            ConnectionSchema::new(
                "via_franchise",
                vec![
                    SchemaHop::via("partOf", "Franchise"),
                    SchemaHop::to_hub("createdBy"),
                ],
                true,
                0.15,
            ),
            ConnectionSchema::new(
                "screened_at",
                vec![SchemaHop::to_hub("screenedAt")],
                false,
                0.1,
            ),
        ],
        predicate_affinities: vec![
            ("director".into(), 1.0),
            ("directedBy".into(), 0.97),
            ("createdBy".into(), 0.91),
            ("partOf".into(), 0.92),
            ("producedBy".into(), 0.72),
            ("founder".into(), 0.55),
            ("screenedAt".into(), 0.30),
        ],
    }
}

/// The geography domain: "cities / museums of a country" (Q7, Q8).
pub fn geography(hubs: &[&str]) -> DomainSpec {
    DomainSpec {
        name: "geography".into(),
        hub_type: "Country".into(),
        hub_names: hubs.iter().map(|s| s.to_string()).collect(),
        target_type: "City".into(),
        target_prefix: "city".into(),
        query_predicate: "locatedIn".into(),
        attributes: vec![
            AttributeSpec::new("population", 20_000.0, 25_000_000.0),
            AttributeSpec::new("area", 10.0, 9_000.0),
        ],
        schemas: vec![
            ConnectionSchema::new(
                "direct_located",
                vec![SchemaHop::to_hub("locatedIn")],
                true,
                0.45,
            ),
            ConnectionSchema::new(
                "country_of",
                vec![SchemaHop::to_hub("inCountry")],
                true,
                0.25,
            ),
            ConnectionSchema::new(
                "via_region",
                vec![
                    SchemaHop::via("inRegion", "Region"),
                    SchemaHop::to_hub("partOfCountry"),
                ],
                true,
                0.2,
            ),
            ConnectionSchema::new(
                "twinned",
                vec![SchemaHop::to_hub("twinnedWith")],
                false,
                0.1,
            ),
        ],
        predicate_affinities: vec![
            ("locatedIn".into(), 1.0),
            ("inCountry".into(), 0.95),
            ("inRegion".into(), 0.93),
            ("partOfCountry".into(), 0.94),
            ("twinnedWith".into(), 0.35),
        ],
    }
}

/// The language domain: "languages spoken in a country" (Q5) — a
/// high-selectivity domain (most languages qualify).
pub fn languages(hubs: &[&str]) -> DomainSpec {
    DomainSpec {
        name: "languages".into(),
        hub_type: "Country".into(),
        hub_names: hubs.iter().map(|s| s.to_string()).collect(),
        target_type: "Language".into(),
        target_prefix: "language".into(),
        query_predicate: "spokenIn".into(),
        attributes: vec![AttributeSpec::new("speakers", 10_000.0, 90_000_000.0)],
        schemas: vec![
            ConnectionSchema::new(
                "direct_spoken",
                vec![SchemaHop::to_hub("spokenIn")],
                true,
                0.55,
            ),
            ConnectionSchema::new(
                "official",
                vec![SchemaHop::to_hub("officialLanguageOf")],
                true,
                0.3,
            ),
            ConnectionSchema::new("studied", vec![SchemaHop::to_hub("studiedIn")], false, 0.15),
        ],
        predicate_affinities: vec![
            ("spokenIn".into(), 1.0),
            ("officialLanguageOf".into(), 0.95),
            ("studiedIn".into(), 0.40),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automotive_schema_sanity() {
        let d = automotive(&["Germany", "China"]);
        assert_eq!(d.hub_names.len(), 2);
        assert!(d.schema("direct_product").unwrap().correct);
        assert!(!d.schema("designer").unwrap().correct);
        assert!(d.schema("missing").is_none());
        assert_eq!(d.affinity("product"), Some(1.0));
        assert!(d.affinity("unknown_pred").is_none());
        let types = d.intermediate_types();
        assert!(types.contains(&"Company".to_string()));
        assert!(types.contains(&"Person".to_string()));
    }

    #[test]
    fn correct_schemas_use_high_affinity_predicates() {
        // The geometric mean of affinities along every `correct` schema must
        // clear the default τ = 0.85, and every incorrect schema must not —
        // otherwise τ-GT and HA-GT could not agree for any τ (Table V).
        for d in [
            automotive(&["Germany"]),
            soccer(&["Barcelona_FC"]),
            movies(&["Steven_Spielberg"]),
            geography(&["China"]),
            languages(&["Nigeria"]),
        ] {
            for s in &d.schemas {
                let sims: Vec<f64> = s
                    .hops
                    .iter()
                    .map(|h| d.affinity(&h.predicate).unwrap_or(0.0))
                    .collect();
                let product: f64 = sims.iter().product();
                let geo = product.powf(1.0 / sims.len() as f64);
                if s.correct {
                    assert!(geo >= 0.88, "{}:{} has geo {geo}", d.name, s.name);
                } else {
                    assert!(geo < 0.83, "{}:{} has geo {geo}", d.name, s.name);
                }
            }
        }
    }

    #[test]
    fn schema_hop_constructors() {
        let h = SchemaHop::via("manufacturer", "Company");
        assert_eq!(h.via_type.as_deref(), Some("Company"));
        let h = SchemaHop::to_hub("country");
        assert!(h.via_type.is_none());
        let a = AttributeSpec::new("price", 1.0, 2.0);
        assert!(a.coverage > 0.9);
    }

    #[test]
    fn schema_weights_sum_to_one_ish() {
        for d in [automotive(&["Germany"]), soccer(&["X"]), movies(&["Y"])] {
            let total: f64 = d.schemas.iter().map(|s| s.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", d.name);
        }
    }
}
