//! Offline embedding training cost per model (the time column of Table XIII).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_embed::{train, EmbeddingModelKind, TrainerConfig};

fn bench_embedding(c: &mut Criterion) {
    let dataset = generate(&GeneratorConfig::new(
        "bench",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China"])],
        3,
    ));
    let cfg = TrainerConfig {
        dimension: 16,
        epochs: 3,
        ..TrainerConfig::default()
    };
    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    for kind in EmbeddingModelKind::all() {
        group.bench_with_input(BenchmarkId::new("train", kind.name()), &kind, |b, k| {
            b.iter(|| train(&dataset.graph, *k, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
