//! Distributed scatter-gather round-trip cost: JSON vs binary framing.
//!
//! A coordinator opens remote sessions against a loopback `kg-shard`
//! protocol listener (real TCP, real frames) and drives a small workload to
//! its accuracy target under each codec. Every refine round is one
//! scatter-gather over the shard fleet, so the measured per-pass wall time
//! is dominated by request/response encode + frame + decode — exactly the
//! cost the compact binary codec exists to cut. Both codecs are pinned
//! answer-equivalent (`kg-aqp/tests/remote_equivalence.rs`); this bench
//! records what the equivalence costs.
//!
//! Results go to `BENCH_10.json` (section `remote_rpc`) next to the
//! write-load axis from `service_throughput`; run with
//! `cargo bench -p kg-bench --bench remote_rpc`.

use criterion::{criterion_group, criterion_main, Criterion};
use kg_aqp::{AqpEngine, EngineConfig, FleetPolicy, ShardFleet, ShardServerCore, TcpTransport};
use kg_bench::bench_record::{median, num, record_section_for, row};
use kg_core::{Codec, DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{build_workload, generate, profiles, DatasetScale, WorkloadConfig};
use kg_query::AggregateQuery;
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

const ERROR_BOUND: f64 = 0.05;
const SHARDS: usize = 2;

struct Setup {
    sharded: Arc<ShardedGraph>,
    oracle: kg_embed::PredicateVectorStore,
    queries: Vec<AggregateQuery>,
    engine: AqpEngine,
    _listener: kg_shard::ShardListener,
    endpoint: String,
}

fn setup() -> Setup {
    let dataset = generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let queries: Vec<AggregateQuery> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .take(8)
        .collect();
    assert!(!queries.is_empty());
    let config = EngineConfig {
        error_bound: ERROR_BOUND,
        ..EngineConfig::default()
    };
    let sharded = Arc::new(ShardedGraph::new(
        Arc::new(dataset.graph.clone()),
        &DegreeBalancedPartitioner,
        SHARDS,
    ));
    let core = Arc::new(ShardServerCore::new(
        config.clone(),
        Arc::clone(&sharded),
        Arc::new(dataset.oracle.clone()),
    ));
    let listener = kg_shard::serve_protocol(core, "127.0.0.1:0").expect("bind loopback listener");
    let endpoint = listener.local_addr().to_string();
    Setup {
        sharded,
        oracle: dataset.oracle,
        queries,
        engine: AqpEngine::new(config),
        _listener: listener,
        endpoint,
    }
}

fn fleet(endpoint: &str, codec: Codec) -> Arc<ShardFleet> {
    Arc::new(ShardFleet::new(
        Arc::new(TcpTransport),
        vec![vec![endpoint.to_string()]; SHARDS],
        FleetPolicy {
            codec,
            ..FleetPolicy::default()
        },
    ))
}

/// One full pass: open a remote session per query and refine each to the
/// accuracy target. Returns the fleet's RPC count for the pass.
fn run_pass(s: &Setup, codec: Codec) -> u64 {
    let fleet = fleet(&s.endpoint, codec);
    for query in &s.queries {
        let mut session = s
            .engine
            .open_remote_session(&s.sharded, query, &s.oracle, Arc::clone(&fleet))
            .expect("open remote session");
        let answer = session.refine_to(&s.sharded, &s.oracle, ERROR_BOUND);
        assert!(answer.estimate.is_finite());
    }
    fleet.metrics().snapshot().requests
}

fn bench_remote_rpc(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("remote_rpc");
    group.sample_size(10);
    group.bench_function(format!("scatter_gather/json/{}q", s.queries.len()), |b| {
        b.iter(|| run_pass(&s, Codec::Json))
    });
    group.bench_function(format!("scatter_gather/binary/{}q", s.queries.len()), |b| {
        b.iter(|| run_pass(&s, Codec::Binary))
    });
    group.finish();

    // Instrumented record: repeated timed passes per codec, medians into
    // BENCH_10.json. Both codecs answer identically, so the ratio is pure
    // wire + codec cost.
    let reps = 5;
    let mut rows: Vec<Value> = Vec::new();
    let mut medians = [0.0f64; 2];
    for (slot, codec) in [Codec::Json, Codec::Binary].into_iter().enumerate() {
        let mut pass_ms = Vec::with_capacity(reps);
        let mut rpcs = 0;
        for _ in 0..reps {
            let start = Instant::now();
            rpcs = run_pass(&s, codec);
            pass_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let med = median(&pass_ms);
        medians[slot] = med;
        let name = match codec {
            Codec::Json => "json",
            Codec::Binary => "binary",
        };
        println!(
            "remote_rpc: {name} codec → {med:.2} ms per {}-query pass ({rpcs} RPCs)",
            s.queries.len(),
        );
        rows.push(row(&[
            ("codec", Value::String(name.to_string())),
            ("queries", num(s.queries.len() as f64)),
            ("shards", num(SHARDS as f64)),
            ("rpcs", num(rpcs as f64)),
            ("pass_ms_median", num(med)),
            ("ms_per_rpc", num(med / (rpcs as f64).max(1.0))),
        ]));
    }
    record_section_for(
        "10",
        "remote_rpc",
        row(&[
            ("codecs", Value::Array(rows)),
            ("json_vs_binary", num(medians[0] / medians[1].max(1e-9))),
        ]),
    );
}

criterion_group!(benches, bench_remote_rpc);
criterion_main!(benches);
