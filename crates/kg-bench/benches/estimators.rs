//! Micro-benchmarks of the estimators, bootstrap and BLB (Table XII's S2/S3).

use criterion::{criterion_group, criterion_main, Criterion};
use kg_estimate::{blb_moe, bootstrap_moe, estimate, BootstrapConfig, ValidatedAnswer};
use kg_query::{AggregateFunction, ResolvedAggregate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sample(n: usize) -> Vec<ValidatedAnswer> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..n)
        .map(|_| ValidatedAnswer {
            probability: rng.gen_range(0.001..0.01),
            value: Some(rng.gen_range(10_000.0..100_000.0)),
            correct: rng.gen_bool(0.9),
            similarity: 0.9,
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let agg = ResolvedAggregate {
        function: AggregateFunction::Avg("price".into()),
        attribute: None,
    };
    let s = sample(2_000);
    let mut group = c.benchmark_group("estimators");
    group.sample_size(20);
    group.bench_function("ht_avg_2000", |b| b.iter(|| estimate(&agg, &s)));
    group.bench_function("bootstrap_moe_2000", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| bootstrap_moe(&agg, &s, 0.95, 50, &mut rng))
    });
    group.bench_function("blb_moe_2000", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| blb_moe(&agg, &s, 0.95, &BootstrapConfig::default(), &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
