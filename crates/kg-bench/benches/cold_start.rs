//! Cold start: what it costs to get a *query-ready* engine into memory —
//! graph, similarity store, and the samplers the workload draws from.
//!
//! Three cells per dataset:
//!
//! * `parse_build` — the full path every boot paid before snapshots
//!   existed: parse the TSV dump from disk, intern the vocabularies,
//!   freeze the CSR, then prepare the workload's samplers (bounded
//!   subgraph walks, stationary distributions via power iteration, alias
//!   tables),
//! * `snapshot_load` — open a prebuilt snapshot bundle of the same state:
//!   read the file, validate header + per-section checksums, reinterpret
//!   the arrays and the stored alias tables (no re-parse, no re-sort, no
//!   walks, no power iteration, no alias rebuild),
//! * `compressed_load` — same, from the delta-varint compressed CSR
//!   variant (smaller file, extra decode pass).
//!
//! Two datasets: `ssb` (the DBpedia-like synthetic profile at the large
//! benchmark scale, standing in for an SSB-sized load) and `automotive`
//! (the three-country automotive domain at tiny scale). The headline
//! number — committed to `BENCH_9.json`, schema-pinned in tier-1 — is
//! `speedup` = parse+build ms / snapshot-load ms; the acceptance floor is
//! 10× on `ssb`. Run with `cargo bench -p kg-bench --bench cold_start`
//! (`KG_BENCH_OUTPUT` overrides the artifact path, `KG_BENCH_QUICK` cuts
//! reps).

use criterion::{criterion_group, criterion_main, Criterion};
use kg_bench::bench_record::{median, num, record_section_for, row};
use kg_core::loader::{load_tsv, save_tsv};
use kg_core::snapshot::SnapshotOptions;
use kg_core::KnowledgeGraph;
use kg_datagen::{
    build_workload, domains, generate, profiles, DatasetScale, GeneratorConfig, WorkloadConfig,
    WorkloadQuery,
};
use kg_embed::PredicateVectorStore;
use kg_query::QuerySpec;
use kg_sampling::{open_bundle, write_bundle, SamplerCache, SamplerConfig, SamplingStrategy};
use serde_json::Value;
use std::path::PathBuf;
use std::time::Instant;

fn datasets() -> Vec<(&'static str, &'static str, GeneratorConfig)> {
    vec![
        (
            "ssb",
            "dbpedia_like/large",
            profiles::dbpedia_like(DatasetScale::large(), 11),
        ),
        (
            "automotive",
            "automotive/tiny",
            GeneratorConfig::new(
                "automotive-bench",
                DatasetScale::tiny(),
                vec![domains::automotive(&["Germany", "China", "Korea"])],
                11,
            ),
        ),
    ]
}

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kg-cold-start-{tag}-{}.{ext}", std::process::id()))
}

/// Prepares samplers for every simple query of the workload (distinct
/// components dedup through the cache); returns the cache size.
fn warm_samplers(
    cache: &SamplerCache,
    graph: &KnowledgeGraph,
    oracle: &PredicateVectorStore,
    queries: &[WorkloadQuery],
) -> usize {
    for wq in queries {
        let QuerySpec::Simple(sq) = &wq.query.query else {
            continue;
        };
        let Ok(resolved) = sq.resolve(graph) else {
            continue;
        };
        let _ = cache.get_or_prepare(graph, &resolved, oracle);
    }
    cache.len()
}

/// Median wall ms of `op` over `reps` runs.
fn timed_ms<R>(reps: usize, mut op: impl FnMut() -> R) -> f64 {
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = op();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            drop(out);
            ms
        })
        .collect();
    median(&samples)
}

fn bench_cold_start(c: &mut Criterion) {
    let quick = std::env::var("KG_BENCH_QUICK").is_ok();
    let (build_reps, load_reps) = if quick { (3, 9) } else { (5, 15) };

    let mut rows: Vec<Value> = Vec::new();
    let mut group = c.benchmark_group("cold_start");
    group.sample_size(if quick { 3 } else { 10 });

    for (name, profile, config) in datasets() {
        // Reference state: generated dataset, its TSV dump, a warmed
        // sampler cache, and the two snapshot bundles of that exact state.
        let dataset = generate(&config);
        let queries = build_workload(&dataset, &WorkloadConfig::default());
        let samplers = SamplerCache::new(SamplingStrategy::SemanticAware, SamplerConfig::default());
        let warmed = warm_samplers(&samplers, &dataset.graph, &dataset.oracle, &queries);

        let tsv_path = temp_path(name, "tsv");
        save_tsv(&dataset.graph, &tsv_path).expect("write tsv");
        let plain_path = temp_path(&format!("{name}-plain"), "kgsnap");
        let packed_path = temp_path(&format!("{name}-packed"), "kgsnap");
        write_bundle(
            &plain_path,
            &dataset.graph,
            &SnapshotOptions {
                compress_csr: false,
            },
            Some(&dataset.oracle),
            Some(&samplers),
        )
        .expect("write snapshot");
        write_bundle(
            &packed_path,
            &dataset.graph,
            &SnapshotOptions { compress_csr: true },
            Some(&dataset.oracle),
            Some(&samplers),
        )
        .expect("write compressed snapshot");
        let tsv_bytes = std::fs::metadata(&tsv_path).unwrap().len();
        let snapshot_bytes = std::fs::metadata(&plain_path).unwrap().len();
        let compressed_bytes = std::fs::metadata(&packed_path).unwrap().len();

        // The parse+build path: TSV from disk to CSR, then sampler prep.
        let parse_build = || {
            let graph = load_tsv(&tsv_path).expect("parse tsv");
            let cache =
                SamplerCache::new(SamplingStrategy::SemanticAware, SamplerConfig::default());
            warm_samplers(&cache, &graph, &dataset.oracle, &queries);
            (graph, cache)
        };

        group.bench_function(format!("{name}/parse_build"), |b| b.iter(parse_build));
        group.bench_function(format!("{name}/snapshot_load"), |b| {
            b.iter(|| open_bundle(&plain_path).expect("load"))
        });
        group.bench_function(format!("{name}/compressed_load"), |b| {
            b.iter(|| open_bundle(&packed_path).expect("load"))
        });

        // Instrumented medians for the committed record, parse and warm
        // split out so the record shows where the build time goes.
        let parse_ms = timed_ms(build_reps, || load_tsv(&tsv_path).expect("parse tsv"));
        let build_ms = timed_ms(build_reps, parse_build);
        let load_ms = timed_ms(load_reps, || open_bundle(&plain_path).expect("load"));
        let packed_ms = timed_ms(load_reps, || open_bundle(&packed_path).expect("load"));
        std::fs::remove_file(&tsv_path).ok();
        std::fs::remove_file(&plain_path).ok();
        std::fs::remove_file(&packed_path).ok();

        let speedup = build_ms / load_ms;
        let compressed_speedup = build_ms / packed_ms;
        println!(
            "cold_start/{name}: parse+build {build_ms:.2} ms (parse {parse_ms:.2} ms, \
             {warmed} samplers), snapshot load {load_ms:.3} ms ({speedup:.0}x), \
             compressed load {packed_ms:.3} ms ({compressed_speedup:.0}x), \
             {snapshot_bytes} B plain / {compressed_bytes} B compressed"
        );

        rows.push(row(&[
            ("dataset", Value::String(name.to_string())),
            ("profile", Value::String(profile.to_string())),
            ("entities", num(dataset.graph.entity_count() as f64)),
            ("edges", num(dataset.graph.edge_count() as f64)),
            ("warmed_samplers", num(warmed as f64)),
            ("parse_ms", num(parse_ms)),
            ("build_ms", num(build_ms)),
            ("snapshot_load_ms", num(load_ms)),
            ("compressed_load_ms", num(packed_ms)),
            ("speedup", num(speedup)),
            ("compressed_speedup", num(compressed_speedup)),
            ("tsv_bytes", num(tsv_bytes as f64)),
            ("snapshot_bytes", num(snapshot_bytes as f64)),
            ("compressed_bytes", num(compressed_bytes as f64)),
            ("target_speedup", num(10.0)),
        ]));
    }
    group.finish();

    record_section_for(
        "9",
        "cold_start",
        row(&[
            ("build_reps", num(build_reps as f64)),
            ("load_reps", num(load_reps as f64)),
            ("datasets", Value::Array(rows)),
        ]),
    );
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
