//! Latency of the comparator engines and SSB on the same simple query
//! (the comparator side of Table VIII).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_datagen::{profiles, DatasetScale};
use kg_query::{
    evaluate_with_engine, AggregateFunction, AggregateQuery, FactoidEngineKind, GroundTruthConfig,
    SimpleQuery, SsbEngine,
};

fn bench_baselines(c: &mut Criterion) {
    let dataset = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 13));
    let query = AggregateQuery::simple(
        SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
        AggregateFunction::Count,
    );
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for kind in FactoidEngineKind::all() {
        let engine = kind.build();
        group.bench_with_input(
            BenchmarkId::new("factoid", kind.paper_name()),
            &query,
            |b, q| {
                b.iter(|| {
                    evaluate_with_engine(engine.as_ref(), &dataset.graph, q, &dataset.oracle)
                        .unwrap()
                })
            },
        );
    }
    let ssb = SsbEngine::new(GroundTruthConfig::default());
    group.bench_function("SSB", |b| {
        b.iter(|| {
            ssb.evaluate(&dataset.graph, &query, &dataset.oracle)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
