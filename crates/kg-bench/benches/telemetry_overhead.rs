//! Telemetry overhead: what instrumentation costs when it is off, when the
//! event ring records, and when every request additionally asks for a
//! `trace: true` trajectory.
//!
//! Three macro cells run the same service workload (fresh service per
//! burst, closed-loop clients):
//!
//! * `off` — recorder disabled (the shipped default): instrumentation
//!   reduces to one relaxed atomic load per site (target < 2% overhead),
//! * `ring` — recorder enabled, no trace flags: spans and points land in
//!   the bounded in-process ring buffer,
//! * `full` — recorder enabled and every request traced with a request ID
//!   (target < 10% overhead vs `off`),
//!
//! plus micro cells timing a single `point()` call in the disabled and
//! enabled states. Everything merges into `BENCH_8.json` (override with
//! `KG_BENCH_OUTPUT`). Run with
//! `cargo bench -p kg-bench --bench telemetry_overhead`.
//!
//! Overhead percentages are recorded, not asserted: shared CI hosts are too
//! noisy for a hard sub-10% gate, and the committed record documents the
//! measured ratio instead — now *against an explicit noise floor*. Each
//! overhead is stored as `{raw_pct, pct, noise_pct, within_noise}`: the raw
//! reading verbatim, a clamped headline (an overhead cannot be negative —
//! a below-zero raw reading is run-to-run noise, not speedup), the
//! measured min→max spread of the burst samples, and a flag saying the
//! reading is indistinguishable from zero.

use criterion::{criterion_group, criterion_main, Criterion};
use kg_aqp::EngineConfig;
use kg_bench::bench_record::{median, noise_pct, num, overhead_reading, record_section_for, row};
use kg_datagen::{
    build_workload, generate, profiles, DatasetScale, GeneratedDataset, WorkloadConfig,
};
use kg_service::{run_in_process, QueryRequest, Service, ServiceConfig};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

const ERROR_BOUND: f64 = 0.02;
const CONFIDENCE: f64 = 0.95;
const CLIENTS: usize = 4;
const WORKERS: usize = 2;

/// Which telemetry posture a burst runs under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mode {
    Off,
    Ring,
    Full,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Ring => "ring",
            Mode::Full => "full",
        }
    }
}

fn dataset_and_requests() -> (GeneratedDataset, Vec<QueryRequest>) {
    let dataset = generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let requests: Vec<QueryRequest> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| QueryRequest::new(q.query, ERROR_BOUND, CONFIDENCE))
        .collect();
    assert!(!requests.is_empty());
    (dataset, requests)
}

/// One cold burst under the given telemetry mode; returns wall ms. The
/// recorder ring is cleared afterwards so one mode's events never inflate
/// the next mode's buffer handling.
fn burst(dataset: &GeneratedDataset, base: &[QueryRequest], mode: Mode) -> f64 {
    match mode {
        Mode::Off => kg_telemetry::disable(),
        Mode::Ring | Mode::Full => kg_telemetry::enable(),
    }
    let requests: Vec<QueryRequest> = base
        .iter()
        .enumerate()
        .map(|(i, r)| match mode {
            Mode::Full => r.clone().with_request_id(format!("bench-{i}")).with_trace(),
            _ => r.clone(),
        })
        .collect();
    let svc = Service::new(
        Arc::new(dataset.graph.clone()),
        Arc::new(dataset.oracle.clone()),
        ServiceConfig {
            engine: EngineConfig {
                error_bound: ERROR_BOUND,
                confidence: CONFIDENCE,
                ..EngineConfig::default()
            },
            workers: WORKERS,
            ..ServiceConfig::default()
        },
    );
    let report = run_in_process(&svc, &requests, CLIENTS);
    svc.shutdown();
    assert_eq!(report.failed, 0, "telemetry bursts must not fail requests");
    kg_telemetry::global().clear();
    kg_telemetry::disable();
    report.wall_ms
}

/// All `reps` burst samples for one mode (cold service each time, so all
/// three modes pay identical cache-warming costs). The caller takes the
/// median for the headline and the spread for the noise floor.
fn burst_samples_ms(
    dataset: &GeneratedDataset,
    base: &[QueryRequest],
    mode: Mode,
    reps: usize,
) -> Vec<f64> {
    (0..reps).map(|_| burst(dataset, base, mode)).collect()
}

/// Nanoseconds per `point()` call in the current recorder state, measured
/// over `n` calls.
fn point_ns(n: u64) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        kg_telemetry::point("bench.point", &[("i", i.into())]);
    }
    start.elapsed().as_secs_f64() * 1e9 / n as f64
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let (dataset, base) = dataset_and_requests();
    let reps = if std::env::var("KG_BENCH_QUICK").is_ok() {
        3
    } else {
        7
    };

    // Criterion cells: the off and full bursts, timed.
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for mode in [Mode::Off, Mode::Full] {
        group.bench_function(format!("burst/{}", mode.name()), |b| {
            b.iter(|| burst(&dataset, &base, mode))
        });
    }
    group.finish();

    // Instrumented medians for the committed record, plus the run's noise
    // floor: the worst per-mode min→max spread. Any overhead whose
    // magnitude sits below that spread is indistinguishable from zero.
    let off_samples = burst_samples_ms(&dataset, &base, Mode::Off, reps);
    let ring_samples = burst_samples_ms(&dataset, &base, Mode::Ring, reps);
    let full_samples = burst_samples_ms(&dataset, &base, Mode::Full, reps);
    let off_ms = median(&off_samples);
    let ring_ms = median(&ring_samples);
    let full_ms = median(&full_samples);
    let noise = [&off_samples, &ring_samples, &full_samples]
        .iter()
        .map(|s| noise_pct(s))
        .fold(0.0f64, f64::max);
    let ring_raw_pct = (ring_ms / off_ms - 1.0) * 100.0;
    let full_raw_pct = (full_ms / off_ms - 1.0) * 100.0;
    println!(
        "telemetry_overhead: off {off_ms:.2} ms, ring {ring_ms:.2} ms ({ring_raw_pct:+.1}%), \
         full {full_ms:.2} ms ({full_raw_pct:+.1}%), noise floor {noise:.1}%"
    );

    // Micro cells: the per-call cost of a disabled and an enabled point.
    kg_telemetry::disable();
    let disabled_point_ns = point_ns(1_000_000);
    kg_telemetry::enable();
    let enabled_point_ns = point_ns(100_000);
    kg_telemetry::global().clear();
    kg_telemetry::disable();
    println!(
        "telemetry_overhead: point() disabled {disabled_point_ns:.1} ns, \
         enabled {enabled_point_ns:.1} ns"
    );

    record_section_for(
        "8",
        "telemetry_overhead",
        row(&[
            ("queries", num(base.len() as f64)),
            ("clients", num(CLIENTS as f64)),
            ("workers", num(WORKERS as f64)),
            ("reps", num(reps as f64)),
            ("off_ms", num(off_ms)),
            ("ring_ms", num(ring_ms)),
            ("full_ms", num(full_ms)),
            ("noise_pct", num(noise)),
            ("ring_overhead", overhead_reading(ring_raw_pct, noise)),
            ("full_overhead", overhead_reading(full_raw_pct, noise)),
            ("target_off_overhead_pct", num(2.0)),
            ("target_full_overhead_pct", num(10.0)),
            ("point_disabled_ns", num(disabled_point_ns)),
            ("point_enabled_ns", num(enabled_point_ns)),
            (
                "modes",
                Value::Array(
                    [Mode::Off, Mode::Ring, Mode::Full]
                        .iter()
                        .map(|m| Value::String(m.name().to_string()))
                        .collect(),
                ),
            ),
        ]),
    );
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
