//! Per-query vs. batched multi-query throughput of the engine, across a
//! thread-count matrix.
//!
//! The serial baseline answers a workload by calling `AqpEngine::execute`
//! once per query, re-preparing the sampler every time. The batched path
//! answers the same workload through `BatchEngine`, which prepares each
//! distinct simple component once and fans the per-query refine loops out
//! on the rayon pool — so besides the serial/batched comparison, the bench
//! replays the batched path under 1-, 2-, 4- and 8-thread pools and
//! reports a `threads × workload` q/s matrix (merged into `BENCH_5.json`
//! together with the 4-vs-1-thread speedup). Answers are
//! bitwise-identical in every cell (asserted in `kg-aqp`'s batch and
//! thread-determinism tests); only the throughput differs.
//!
//! `KG_BENCH_QUICK=1` shrinks the matrix to {1, 2} threads for smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_aqp::{AqpEngine, BatchEngine, EngineConfig};
use kg_bench::bench_record::{num, record_section, row};
use kg_datagen::{
    build_workload, domains, profiles, DatasetScale, GeneratedDataset, GeneratorConfig,
    WorkloadConfig,
};
use kg_query::AggregateQuery;
use serde_json::Value;
use std::time::Instant;

/// The thread counts of the matrix (shrunk under `KG_BENCH_QUICK`).
fn thread_counts() -> Vec<usize> {
    if std::env::var("KG_BENCH_QUICK").is_ok() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Runs `op` under a dedicated rayon pool of `threads` workers.
fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    }
}

/// The two workloads of the comparison: the SSB-style evaluation workload
/// over the DBpedia-like profile (every shape and operator variant the
/// workload generator emits), and a single-domain automotive workload.
fn workloads() -> Vec<(&'static str, GeneratedDataset, Vec<AggregateQuery>)> {
    let ssb = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let ssb_queries: Vec<AggregateQuery> = build_workload(&ssb, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    let auto = kg_datagen::generate(&GeneratorConfig::new(
        "automotive-bench",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        11,
    ));
    let auto_queries: Vec<AggregateQuery> = build_workload(&auto, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    vec![
        ("ssb", ssb, ssb_queries),
        ("automotive", auto, auto_queries),
    ]
}

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    let mut matrix: Vec<Value> = Vec::new();
    let mut speedups: Vec<Value> = Vec::new();
    for (name, dataset, queries) in workloads() {
        let engine = AqpEngine::new(engine_config());
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{name}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| engine.execute(&dataset.graph, q, &dataset.oracle))
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );
        let batch = BatchEngine::new(engine_config());
        group.bench_with_input(
            BenchmarkId::new("batched", format!("{name}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    batch
                        .execute(&dataset.graph, queries, &dataset.oracle)
                        .iter()
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );

        // Thread-count matrix: one measured pass of the batched path per
        // pool size (plus the 1-thread serial loop as the absolute
        // baseline), reported as q/s and merged into BENCH_5.json.
        let serial_start = Instant::now();
        let serial_ok = at_threads(1, || {
            queries
                .iter()
                .map(|q| engine.execute(&dataset.graph, q, &dataset.oracle))
                .filter(|a| a.is_ok())
                .count()
        });
        let serial_s = serial_start.elapsed().as_secs_f64();
        matrix.push(row(&[
            ("workload", Value::String(name.to_string())),
            ("mode", Value::String("serial".to_string())),
            ("threads", num(1.0)),
            ("queries", num(queries.len() as f64)),
            ("seconds", num(serial_s)),
            ("qps", num(serial_ok as f64 / serial_s)),
        ]));
        let mut per_thread_qps: Vec<(usize, f64)> = Vec::new();
        for threads in thread_counts() {
            let start = Instant::now();
            let ok = at_threads(threads, || {
                batch
                    .execute(&dataset.graph, &queries, &dataset.oracle)
                    .iter()
                    .filter(|a| a.is_ok())
                    .count()
            });
            let elapsed = start.elapsed().as_secs_f64();
            let qps = ok as f64 / elapsed;
            println!(
                "batch_throughput: {name} batched threads={threads} → {qps:.1} q/s \
                 ({ok} queries in {elapsed:.2}s)"
            );
            per_thread_qps.push((threads, qps));
            matrix.push(row(&[
                ("workload", Value::String(name.to_string())),
                ("mode", Value::String("batched".to_string())),
                ("threads", num(threads as f64)),
                ("queries", num(queries.len() as f64)),
                ("seconds", num(elapsed)),
                ("qps", num(qps)),
            ]));
        }
        let base = per_thread_qps
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, q)| *q)
            .unwrap_or(f64::NAN);
        for (threads, qps) in &per_thread_qps {
            if *threads != 1 {
                println!(
                    "batch_throughput: {name} speedup({threads}t vs 1t) = {:.2}×",
                    qps / base
                );
            }
        }
        if let Some((_, qps4)) = per_thread_qps.iter().find(|(t, _)| *t == 4) {
            speedups.push(row(&[
                ("workload", Value::String(name.to_string())),
                ("speedup_4t_vs_1t", num(qps4 / base)),
            ]));
        }
    }
    group.finish();
    record_section(
        "batch_throughput",
        row(&[
            ("matrix", Value::Array(matrix)),
            ("speedups", Value::Array(speedups)),
        ]),
    );
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
