//! Per-query vs. batched multi-query throughput of the engine.
//!
//! The serial baseline answers a workload by calling `AqpEngine::execute`
//! once per query, re-preparing the sampler every time. The batched path
//! answers the same workload through `BatchEngine`, which prepares each
//! distinct simple component once and reuses it across the operator
//! variants of the workload. Answers are bitwise-identical either way
//! (asserted in `kg-aqp`'s batch tests); only the throughput differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_aqp::{AqpEngine, BatchEngine, EngineConfig};
use kg_datagen::{
    build_workload, domains, profiles, DatasetScale, GeneratedDataset, GeneratorConfig,
    WorkloadConfig,
};
use kg_query::AggregateQuery;

fn engine_config() -> EngineConfig {
    EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    }
}

/// The two workloads of the comparison: the SSB-style evaluation workload
/// over the DBpedia-like profile (every shape and operator variant the
/// workload generator emits), and a single-domain automotive workload.
fn workloads() -> Vec<(&'static str, GeneratedDataset, Vec<AggregateQuery>)> {
    let ssb = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let ssb_queries: Vec<AggregateQuery> = build_workload(&ssb, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    let auto = kg_datagen::generate(&GeneratorConfig::new(
        "automotive-bench",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        11,
    ));
    let auto_queries: Vec<AggregateQuery> = build_workload(&auto, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    vec![
        ("ssb", ssb, ssb_queries),
        ("automotive", auto, auto_queries),
    ]
}

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for (name, dataset, queries) in workloads() {
        let engine = AqpEngine::new(engine_config());
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{name}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| engine.execute(&dataset.graph, q, &dataset.oracle))
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );
        let batch = BatchEngine::new(engine_config());
        group.bench_with_input(
            BenchmarkId::new("batched", format!("{name}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    batch
                        .execute(&dataset.graph, queries, &dataset.oracle)
                        .iter()
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
