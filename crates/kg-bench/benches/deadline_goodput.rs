//! Goodput under deadlines: the overload burst that admission control used
//! to shed almost entirely, re-run with anytime answers.
//!
//! The scenario is the PR-3 stress cell — queue capacity 4, ONE worker,
//! closed-loop clients hammering the mixed evaluation workload — which
//! previously shed ~97% of requests with 503s. With a deadline attached to
//! every request, the scheduler admits them under per-tenant quotas and the
//! worker interleaves refinement rounds, returning a best-so-far estimate
//! when the deadline fires. The bench:
//!
//! * tunes the per-request deadline over 40–100 ms until the 16-client cell
//!   answers at least 90% of the burst (the PR's acceptance bar),
//! * sweeps clients ∈ {2, 4, 8, 16} at that deadline and records the
//!   goodput / tail-latency curve,
//! * re-runs the 16-client cell *without* deadlines as a baseline, showing
//!   the legacy shed cliff is still there for deadline-less traffic,
//!
//! and merges everything into `BENCH_6.json` (override the path with
//! `KG_BENCH_OUTPUT`). Run with
//! `cargo bench -p kg-bench --bench deadline_goodput`.

use criterion::{criterion_group, criterion_main, Criterion};
use kg_aqp::EngineConfig;
use kg_bench::bench_record::{num, record_section_for, row};
use kg_datagen::{
    build_workload, generate, profiles, DatasetScale, GeneratedDataset, WorkloadConfig,
};
use kg_service::{run_in_process, LoadReport, QueryRequest, Service, ServiceConfig};
use serde_json::Value;
use std::sync::Arc;

const ERROR_BOUND: f64 = 0.02;
const CONFIDENCE: f64 = 0.95;
/// The PR-3 stress cell: a tiny admission queue and a single worker.
const QUEUE_CAPACITY: usize = 4;
const WORKERS: usize = 1;
/// Deadlines tried in order until the 16-client cell clears 90% goodput.
const DEADLINE_CANDIDATES_MS: [f64; 4] = [40.0, 60.0, 75.0, 100.0];
const GOODPUT_BAR: f64 = 0.9;

fn dataset_and_requests() -> (GeneratedDataset, Vec<QueryRequest>) {
    let dataset = generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let requests: Vec<QueryRequest> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| QueryRequest::new(q.query, ERROR_BOUND, CONFIDENCE))
        .collect();
    assert!(!requests.is_empty());
    (dataset, requests)
}

fn stress_service(dataset: &GeneratedDataset) -> Service {
    Service::new(
        Arc::new(dataset.graph.clone()),
        Arc::new(dataset.oracle.clone()),
        ServiceConfig {
            engine: EngineConfig {
                error_bound: ERROR_BOUND,
                confidence: CONFIDENCE,
                ..EngineConfig::default()
            },
            queue_capacity: QUEUE_CAPACITY,
            workers: WORKERS,
            ..ServiceConfig::default()
        },
    )
}

/// One cold burst: fresh service, `clients` closed-loop threads, optional
/// per-request deadline.
fn burst(
    dataset: &GeneratedDataset,
    base: &[QueryRequest],
    clients: usize,
    deadline_ms: Option<f64>,
) -> LoadReport {
    let requests: Vec<QueryRequest> = base
        .iter()
        .map(|r| match deadline_ms {
            Some(ms) => r.clone().with_deadline_ms(ms),
            None => r.clone(),
        })
        .collect();
    let svc = stress_service(dataset);
    let report = run_in_process(&svc, &requests, clients);
    svc.shutdown();
    report
}

fn ok_rate(report: &LoadReport) -> f64 {
    report.ok as f64 / report.total().max(1) as f64
}

fn client_sweep() -> Vec<usize> {
    if std::env::var("KG_BENCH_QUICK").is_ok() {
        vec![2, 16]
    } else {
        vec![2, 4, 8, 16]
    }
}

fn cell_row(clients: usize, deadline_ms: Option<f64>, report: &LoadReport) -> Value {
    row(&[
        ("clients", num(clients as f64)),
        ("deadline_ms", deadline_ms.map_or(Value::Null, num)),
        ("requests", num(report.total() as f64)),
        ("ok", num(report.ok as f64)),
        ("guaranteed", num(report.guaranteed as f64)),
        ("anytime", num(report.anytime as f64)),
        ("shed", num(report.shed as f64)),
        ("failed", num(report.failed as f64)),
        ("ok_rate", num(ok_rate(report))),
        ("qps", num(report.throughput_qps())),
        ("p50_ms", num(report.percentile_ms(0.50))),
        ("p95_ms", num(report.percentile_ms(0.95))),
        ("p99_ms", num(report.percentile_ms(0.99))),
    ])
}

fn bench_deadline_goodput(c: &mut Criterion) {
    let (dataset, base) = dataset_and_requests();

    // ------------------------------------------------------------------
    // Tune the deadline: smallest candidate whose 16-client cell clears
    // the 90% goodput bar.
    // ------------------------------------------------------------------
    let mut deadline_ms = *DEADLINE_CANDIDATES_MS.last().unwrap();
    for candidate in DEADLINE_CANDIDATES_MS {
        let probe = burst(&dataset, &base, 16, Some(candidate));
        let rate = ok_rate(&probe);
        println!(
            "deadline_goodput: probe deadline={candidate} ms → ok_rate {:.3} ({probe})",
            rate
        );
        if rate >= GOODPUT_BAR {
            deadline_ms = candidate;
            break;
        }
    }

    // Criterion cell: the tuned 16-client anytime burst, timed.
    let mut group = c.benchmark_group("deadline_goodput");
    group.sample_size(10);
    group.bench_function(format!("burst/16c/{deadline_ms}ms"), |b| {
        b.iter(|| {
            let report = burst(&dataset, &base, 16, Some(deadline_ms));
            assert!(
                ok_rate(&report) >= GOODPUT_BAR,
                "goodput regressed below {GOODPUT_BAR}: {report}"
            );
            report.ok
        })
    });
    group.finish();

    // ------------------------------------------------------------------
    // Instrumented sweep: goodput / tail-latency curve over client counts
    // at the tuned deadline, plus the deadline-less baseline cliff.
    // ------------------------------------------------------------------
    let mut curve: Vec<Value> = Vec::new();
    for clients in client_sweep() {
        let report = burst(&dataset, &base, clients, Some(deadline_ms));
        println!(
            "deadline_goodput: clients={clients:2} deadline={deadline_ms} ms → \
             ok_rate {:.3}, p95 {:.2} ms ({report})",
            ok_rate(&report),
            report.percentile_ms(0.95),
        );
        if clients == 16 {
            assert!(
                ok_rate(&report) >= GOODPUT_BAR,
                "16-client goodput below the acceptance bar: {report}"
            );
        }
        curve.push(cell_row(clients, Some(deadline_ms), &report));
    }

    let baseline = burst(&dataset, &base, 16, None);
    println!(
        "deadline_goodput: no-deadline baseline (16 clients) → shed rate {:.1}% ({baseline})",
        baseline.shed_rate() * 100.0,
    );
    assert!(
        baseline.shed > 0,
        "the deadline-less baseline must still shed at queue capacity {QUEUE_CAPACITY}: {baseline}"
    );

    record_section_for(
        "6",
        "deadline_goodput",
        row(&[
            ("queries", num(base.len() as f64)),
            ("error_bound", num(ERROR_BOUND)),
            ("confidence", num(CONFIDENCE)),
            ("queue_capacity", num(QUEUE_CAPACITY as f64)),
            ("workers", num(WORKERS as f64)),
            ("deadline_ms", num(deadline_ms)),
            ("goodput_bar", num(GOODPUT_BAR)),
            ("curve", Value::Array(curve)),
            ("no_deadline_baseline", cell_row(16, None, &baseline)),
        ]),
    );
}

criterion_group!(benches, bench_deadline_goodput);
criterion_main!(benches);
