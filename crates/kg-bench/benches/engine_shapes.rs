//! End-to-end engine latency per query shape (the latency side of Table VIII).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_aqp::{AqpEngine, EngineConfig};
use kg_bench::harness::QueryCategory;
use kg_datagen::{build_workload, profiles, DatasetScale, WorkloadConfig};
use kg_query::QueryShape;

fn bench_engine_shapes(c: &mut Criterion) {
    let dataset = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 9));
    let workload = build_workload(&dataset, &WorkloadConfig::default());
    let engine = AqpEngine::new(EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    });
    let mut group = c.benchmark_group("engine_shapes");
    group.sample_size(10);
    for shape in QueryShape::all() {
        let Some(query) = workload
            .iter()
            .find(|q| q.shape == shape && q.category == QueryCategory::Plain)
        else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("execute", shape.name()), query, |b, q| {
            b.iter(|| {
                engine
                    .execute(&dataset.graph, &q.query, &dataset.oracle)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_shapes);
criterion_main!(benches);
