//! Micro-benchmarks of the sampling substrate: transition-matrix
//! construction, random-walk convergence and i.i.d. draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_datagen::{domains, generate, DatasetScale, GeneratorConfig};
use kg_query::{QuerySpec, SimpleQuery};
use kg_sampling::{prepare, SamplerConfig, SamplingStrategy};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let dataset = generate(&GeneratorConfig::new(
        "bench",
        DatasetScale::tiny(),
        vec![domains::automotive(&["Germany", "China", "Korea"])],
        5,
    ));
    let query = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
        .resolve(&dataset.graph)
        .unwrap();
    let _ = QuerySpec::Simple(SimpleQuery::new(
        "Germany",
        &["Country"],
        "product",
        &["Automobile"],
    ));

    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    for strategy in [
        SamplingStrategy::SemanticAware,
        SamplingStrategy::Cnarw,
        SamplingStrategy::Uniform,
    ] {
        group.bench_with_input(
            BenchmarkId::new("prepare", strategy.name()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    prepare(
                        &dataset.graph,
                        &query,
                        &dataset.oracle,
                        *s,
                        &SamplerConfig::default(),
                    )
                })
            },
        );
    }
    let prepared = prepare(
        &dataset.graph,
        &query,
        &dataset.oracle,
        SamplingStrategy::SemanticAware,
        &SamplerConfig::default(),
    )
    .unwrap();
    group.bench_function("draw_1000", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| prepared.draw(&mut rng, 1000))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
