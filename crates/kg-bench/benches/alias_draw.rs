//! Draw-path microbenchmark: the shared [`AliasTable`] (expected O(1) per
//! draw) against the inverse-CDF binary search it replaced (O(log n)), on
//! the answer distributions the SSB-style workload actually produces.
//!
//! The two draw rules are bit-identical (pinned by kg-sampling's property
//! tests); only the cost differs. The bench prepares the samplers of every
//! distinct simple component of the SSB workload, times `draws` uniform
//! variates through each rule over each distribution, prints ns/draw, and
//! merges a `alias_draw` section into `BENCH_5.json` — the acceptance bar
//! is `ratio ≤ 1` (alias no slower than search) on this workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kg_bench::bench_record::{num, record_section, row};
use kg_query::QuerySpec;
use kg_sampling::alias::{reference_cdf_index, AliasTable};
use kg_sampling::{prepare, SamplerConfig, SamplingStrategy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::time::Instant;

const DRAWS_PER_TABLE: usize = 200_000;

/// The answer distributions of the SSB workload's distinct simple
/// components (one prepared sampler each).
fn workload_distributions() -> Vec<Vec<f64>> {
    let dataset = kg_datagen::generate(&kg_datagen::profiles::dbpedia_like(
        DatasetScale::tiny(),
        11,
    ));
    let mut seen = std::collections::HashSet::new();
    let mut distributions = Vec::new();
    for item in kg_datagen::build_workload(&dataset, &kg_datagen::WorkloadConfig::default()) {
        let QuerySpec::Simple(simple) = &item.query.query else {
            continue;
        };
        let Ok(resolved) = simple.resolve(&dataset.graph) else {
            continue;
        };
        if !seen.insert((resolved.specific, resolved.predicate)) {
            continue;
        }
        let sampler = prepare(
            &dataset.graph,
            &resolved,
            &dataset.oracle,
            SamplingStrategy::SemanticAware,
            &SamplerConfig::default(),
        )
        .expect("SSB components have well-formed weights");
        if sampler.candidate_count() > 0 {
            distributions.push(
                sampler
                    .answer_distribution()
                    .iter()
                    .map(|a| a.probability)
                    .collect(),
            );
        }
    }
    assert!(
        !distributions.is_empty(),
        "the SSB workload must yield at least one simple component"
    );
    distributions
}

use kg_datagen::DatasetScale;

fn bench_alias_draw(c: &mut Criterion) {
    let distributions = workload_distributions();
    let tables: Vec<AliasTable> = distributions
        .iter()
        .map(|weights| AliasTable::new(weights).unwrap())
        .collect();
    let sizes: Vec<usize> = tables.iter().map(AliasTable::len).collect();
    println!(
        "alias_draw: {} SSB component distributions, sizes {:?}",
        tables.len(),
        sizes
    );

    let mut group = c.benchmark_group("alias_draw");
    group.sample_size(20);
    group.bench_function(format!("alias/{}tables", tables.len()), |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0usize;
            for table in &tables {
                for _ in 0..1000 {
                    acc += table.sample(&mut rng);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(format!("binary_search/{}tables", tables.len()), |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0usize;
            for table in &tables {
                for _ in 0..1000 {
                    let x: f64 = rng.gen();
                    acc += reference_cdf_index(table.cumulative(), x);
                }
            }
            black_box(acc)
        })
    });
    group.finish();

    // One long measured pass per rule for the ns/draw summary (same
    // variate transcript for both, so the work is identical).
    let mut total_alias_ns = 0.0;
    let mut total_search_ns = 0.0;
    let mut total_draws = 0usize;
    let mut per_table: Vec<Value> = Vec::new();
    for table in &tables {
        let mut rng = SmallRng::seed_from_u64(42);
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..DRAWS_PER_TABLE {
            acc += table.sample(&mut rng);
        }
        let alias_ns = start.elapsed().as_nanos() as f64 / DRAWS_PER_TABLE as f64;
        black_box(acc);

        let mut rng = SmallRng::seed_from_u64(42);
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..DRAWS_PER_TABLE {
            let x: f64 = rng.gen();
            acc += reference_cdf_index(table.cumulative(), x);
        }
        let search_ns = start.elapsed().as_nanos() as f64 / DRAWS_PER_TABLE as f64;
        black_box(acc);

        total_alias_ns += alias_ns * DRAWS_PER_TABLE as f64;
        total_search_ns += search_ns * DRAWS_PER_TABLE as f64;
        total_draws += DRAWS_PER_TABLE;
        per_table.push(row(&[
            ("answers", num(table.len() as f64)),
            ("alias_ns_per_draw", num(alias_ns)),
            ("binary_search_ns_per_draw", num(search_ns)),
            ("ratio", num(alias_ns / search_ns)),
        ]));
    }
    let alias_ns = total_alias_ns / total_draws as f64;
    let search_ns = total_search_ns / total_draws as f64;
    println!(
        "alias_draw: alias {alias_ns:.1} ns/draw vs binary search {search_ns:.1} ns/draw \
         (ratio {:.2}, {} draws over {} SSB distributions)",
        alias_ns / search_ns,
        total_draws,
        tables.len(),
    );
    record_section(
        "alias_draw",
        row(&[
            ("workload", Value::String("ssb".to_string())),
            ("distributions", num(tables.len() as f64)),
            ("draws_per_distribution", num(DRAWS_PER_TABLE as f64)),
            ("alias_ns_per_draw", num(alias_ns)),
            ("binary_search_ns_per_draw", num(search_ns)),
            ("ratio_alias_vs_search", num(alias_ns / search_ns)),
            ("per_distribution", Value::Array(per_table)),
        ]),
    );
}

criterion_group!(benches, bench_alias_draw);
criterion_main!(benches);
