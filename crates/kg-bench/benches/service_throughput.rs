//! Throughput of the query service under a mixed closed-loop workload.
//!
//! Three measurements over the SSB-style evaluation workload (122 queries,
//! every shape and operator class):
//!
//! * `service/cold` — a fresh service per iteration: every query pays
//!   planning + sampling + estimation (the result cache never hits).
//! * `service/warm` — one long-lived service whose confidence-aware result
//!   cache was filled by a first pass: repeated queries are served from
//!   dominating cached intervals.
//! * a printed summary (percentiles, queue depth, shed rate, cache hit
//!   rate, and the cold/warm throughput ratio) from one instrumented run of
//!   each mode plus an overload burst against a tiny admission queue.
//!
//! Plus the sustained-QPS-at-X-writes/sec axis: a paced writer streams
//! delta writes (edges into a queried component) into the live graph while
//! the query drivers run, sweeping the write rate — the cost of
//! component-scoped invalidation under churn, recorded in `BENCH_10.json`
//! (section `write_load`).
//!
//! Run with `cargo bench -p kg-bench --bench service_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use kg_aqp::EngineConfig;
use kg_bench::bench_record::{num, record_section, record_section_for, row};
use kg_datagen::{
    build_workload, generate, profiles, DatasetScale, GeneratedDataset, WorkloadConfig,
};
use kg_service::{run_in_process, QueryRequest, Service, ServiceConfig, WriteOp, WriteRequest};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

const ERROR_BOUND: f64 = 0.05;
const CONFIDENCE: f64 = 0.95;
const CONCURRENCY: usize = 4;

fn dataset_and_requests() -> (GeneratedDataset, Vec<QueryRequest>) {
    let dataset = generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let requests: Vec<QueryRequest> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| QueryRequest::new(q.query, ERROR_BOUND, CONFIDENCE))
        .collect();
    assert!(
        requests.len() >= 100,
        "the mixed workload must be ≥100 queries, got {}",
        requests.len()
    );
    (dataset, requests)
}

fn service(dataset: &GeneratedDataset, queue_capacity: usize, workers: usize) -> Service {
    sharded_service(dataset, queue_capacity, workers, 1)
}

fn sharded_service(
    dataset: &GeneratedDataset,
    queue_capacity: usize,
    workers: usize,
    shards: usize,
) -> Service {
    Service::new(
        Arc::new(dataset.graph.clone()),
        Arc::new(dataset.oracle.clone()),
        ServiceConfig {
            engine: EngineConfig {
                error_bound: ERROR_BOUND,
                confidence: CONFIDENCE,
                ..EngineConfig::default()
            },
            queue_capacity,
            workers,
            shards,
            ..ServiceConfig::default()
        },
    )
}

/// The `workers × shards` matrix swept by the bench: each worker is a real
/// OS thread draining the queue, and each request additionally fans its
/// per-shard refine steps out on the (now threaded) rayon pool. Shrunk
/// under `KG_BENCH_QUICK`.
fn worker_shard_matrix() -> Vec<(usize, usize)> {
    if std::env::var("KG_BENCH_QUICK").is_ok() {
        vec![(1, 1), (2, 1)]
    } else {
        vec![(1, 1), (1, 4), (4, 1), (4, 4)]
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let (dataset, requests) = dataset_and_requests();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    group.bench_function(format!("service/cold/{}q", requests.len()), |b| {
        b.iter(|| {
            let svc = service(&dataset, 1024, CONCURRENCY);
            let report = run_in_process(&svc, &requests, CONCURRENCY);
            svc.shutdown();
            assert_eq!(report.ok, requests.len());
            report.ok
        })
    });

    let warm_svc = service(&dataset, 1024, CONCURRENCY);
    let warmup = run_in_process(&warm_svc, &requests, CONCURRENCY);
    assert_eq!(warmup.ok, requests.len());
    group.bench_function(format!("service/warm/{}q", requests.len()), |b| {
        b.iter(|| {
            let report = run_in_process(&warm_svc, &requests, CONCURRENCY);
            assert_eq!(report.ok, requests.len());
            report.ok
        })
    });
    group.finish();

    // ------------------------------------------------------------------
    // Instrumented summary: one cold run, one warm run, one overload burst.
    // ------------------------------------------------------------------
    let cold_svc = service(&dataset, 1024, CONCURRENCY);
    let cold_start = Instant::now();
    let cold = run_in_process(&cold_svc, &requests, CONCURRENCY);
    let cold_s = cold_start.elapsed().as_secs_f64();
    let cold_metrics = cold_svc.metrics();
    cold_svc.shutdown();

    let warm_start = Instant::now();
    let warm = run_in_process(&warm_svc, &requests, CONCURRENCY);
    let warm_s = warm_start.elapsed().as_secs_f64();
    let warm_metrics = warm_svc.metrics();
    warm_svc.shutdown();

    // Overload burst: a tiny queue with one worker and many clients must
    // shed rather than build unbounded backlog.
    let burst_svc = service(&dataset, 4, 1);
    let burst = run_in_process(&burst_svc, &requests, 16);
    let burst_metrics = burst_svc.metrics();
    burst_svc.shutdown();

    println!("\n=== service_throughput summary ({} queries, eb {ERROR_BOUND}, confidence {CONFIDENCE}, {CONCURRENCY} clients) ===", requests.len());
    println!(
        "cold : {:6.2} q/s  latency ms p50={:7.2} p95={:7.2} p99={:7.2}  max queue depth {:3}  shed {:4.1}%  cache reuse {:4.1}%",
        cold.throughput_qps(),
        cold.percentile_ms(0.50),
        cold.percentile_ms(0.95),
        cold.percentile_ms(0.99),
        cold_metrics.max_queue_depth,
        cold.shed_rate() * 100.0,
        cold_metrics.cache.reuse_rate() * 100.0,
    );
    println!(
        "warm : {:6.2} q/s  latency ms p50={:7.2} p95={:7.2} p99={:7.2}  max queue depth {:3}  shed {:4.1}%  cache reuse {:4.1}%",
        warm.throughput_qps(),
        warm.percentile_ms(0.50),
        warm.percentile_ms(0.95),
        warm.percentile_ms(0.99),
        warm_metrics.max_queue_depth,
        warm.shed_rate() * 100.0,
        warm_metrics.cache.reuse_rate() * 100.0,
    );
    println!(
        "burst: queue capacity 4, 16 clients, 1 worker → shed rate {:4.1}% ({} of {}), max queue depth {}",
        burst.shed_rate() * 100.0,
        burst.shed,
        burst.total(),
        burst_metrics.max_queue_depth,
    );
    println!(
        "confidence-aware cache throughput win (warm vs cold): {:.2}x",
        cold_s / warm_s.max(1e-9),
    );

    // ------------------------------------------------------------------
    // workers × shards matrix: one cold pass per cell, merged into
    // BENCH_5.json next to the cold/warm/burst headline numbers.
    // ------------------------------------------------------------------
    let mut matrix: Vec<Value> = Vec::new();
    for (workers, shards) in worker_shard_matrix() {
        let svc = sharded_service(&dataset, 1024, workers, shards);
        let start = Instant::now();
        let report = run_in_process(&svc, &requests, workers.max(1));
        let elapsed = start.elapsed().as_secs_f64();
        svc.shutdown();
        assert_eq!(report.ok, requests.len());
        let qps = report.ok as f64 / elapsed;
        println!(
            "service_throughput: workers={workers} shards={shards} (cold) → {qps:.1} q/s \
             ({} queries in {elapsed:.2}s, p95 {:.2} ms)",
            report.ok,
            report.percentile_ms(0.95),
        );
        matrix.push(row(&[
            ("workers", num(workers as f64)),
            ("shards", num(shards as f64)),
            ("queries", num(report.ok as f64)),
            ("seconds", num(elapsed)),
            ("qps", num(qps)),
            ("p50_ms", num(report.percentile_ms(0.50))),
            ("p95_ms", num(report.percentile_ms(0.95))),
        ]));
    }
    // ------------------------------------------------------------------
    // Sustained-QPS-at-X-writes/sec axis (the bench axis left open by
    // ROADMAP item 1): a paced writer streams delta writes into the live
    // graph while the closed-loop query drivers run. Each write upserts an
    // edge incident to a queried component ("Germany" sits in the
    // automotive workload), so component-scoped invalidation — not just
    // overlay bookkeeping — is on the hot path. Recorded in BENCH_10.json
    // next to the distributed round-trip bench.
    // ------------------------------------------------------------------
    let write_rates: &[f64] = if std::env::var("KG_BENCH_QUICK").is_ok() {
        &[0.0, 50.0]
    } else {
        &[0.0, 50.0, 200.0]
    };
    let mut write_rows: Vec<Value> = Vec::new();
    for &rate in write_rates {
        let svc = service(&dataset, 1024, CONCURRENCY);
        // Warm pass first: with a cold cache every query re-samples anyway
        // and the write-induced evictions would be invisible.
        let warmup = run_in_process(&svc, &requests, CONCURRENCY);
        assert_eq!(warmup.ok, requests.len());
        let stop = std::sync::atomic::AtomicBool::new(false);
        let writes_applied = std::sync::atomic::AtomicUsize::new(0);
        let (report, elapsed) = std::thread::scope(|scope| {
            if rate > 0.0 {
                scope.spawn(|| {
                    let interval = std::time::Duration::from_secs_f64(1.0 / rate);
                    let mut i = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let write = WriteRequest {
                            ops: vec![WriteOp::UpsertEdge {
                                subject: "Germany".to_string(),
                                predicate: "product".to_string(),
                                object: format!("bench_write_car_{i}"),
                            }],
                            compact: false,
                        };
                        if svc.apply_write(write).is_ok() {
                            writes_applied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        i += 1;
                        std::thread::sleep(interval);
                    }
                });
            }
            let start = Instant::now();
            let report = run_in_process(&svc, &requests, CONCURRENCY);
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (report, elapsed)
        });
        svc.shutdown();
        assert_eq!(report.ok, requests.len());
        let writes = writes_applied.load(std::sync::atomic::Ordering::Relaxed);
        let qps = report.ok as f64 / elapsed;
        println!(
            "service_throughput: {rate:.0} writes/s target ({writes} applied, \
             {:.1}/s achieved) → {qps:.1} q/s (p95 {:.2} ms)",
            writes as f64 / elapsed,
            report.percentile_ms(0.95),
        );
        write_rows.push(row(&[
            ("target_writes_per_sec", num(rate)),
            ("writes_applied", num(writes as f64)),
            ("achieved_writes_per_sec", num(writes as f64 / elapsed)),
            ("queries", num(report.ok as f64)),
            ("seconds", num(elapsed)),
            ("qps", num(qps)),
            ("p50_ms", num(report.percentile_ms(0.50))),
            ("p95_ms", num(report.percentile_ms(0.95))),
        ]));
    }
    record_section_for(
        "10",
        "write_load",
        row(&[
            ("concurrency", num(CONCURRENCY as f64)),
            ("matrix", Value::Array(write_rows)),
        ]),
    );

    record_section(
        "service_throughput",
        row(&[
            ("queries", num(requests.len() as f64)),
            ("cold_qps", num(cold.throughput_qps())),
            ("warm_qps", num(warm.throughput_qps())),
            ("warm_vs_cold", num(cold_s / warm_s.max(1e-9))),
            ("cold_cache_reuse", num(cold_metrics.cache.reuse_rate())),
            ("warm_cache_reuse", num(warm_metrics.cache.reuse_rate())),
            ("burst_shed_rate", num(burst.shed_rate())),
            (
                "burst_max_queue_depth",
                num(burst_metrics.max_queue_depth as f64),
            ),
            ("matrix", Value::Array(matrix)),
        ]),
    );
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
