//! Batch-workload throughput as a function of the shard count K.
//!
//! The SSB-style evaluation workload runs through
//! `BatchEngine::execute_sharded` against the same graph partitioned into
//! K ∈ {1, 2, 4, 8} degree-balanced shards. K = 1 is the identity
//! configuration (bitwise the unsharded engine, BLB intervals and all), so
//! the K = 1 row is the baseline the speedup is measured against.
//!
//! Where the single-thread speedup comes from: stratified sampling
//! eliminates the between-shard component of the estimator variance and
//! Neyman allocation concentrates refinement draws on high-variance
//! shards, so queries reach the Theorem-2 guarantee with fewer draws and
//! fewer validations; and the per-stratum bootstrap costs `B`·n draws per
//! round against the BLB's t·`B`·n. The rayon pool is **threaded** (the
//! per-shard refine steps genuinely fan out), so the bench sweeps a
//! `threads × K` matrix — every cell is one measured pass, printed as
//! `q/s` and merged into `BENCH_5.json`; results are bitwise-identical
//! across the thread axis (pinned by kg-aqp's thread-determinism tests).
//!
//! `KG_BENCH_QUICK=1` shrinks the matrix ({1, 2} threads × {1, 2} shards)
//! for smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_aqp::{BatchEngine, EngineConfig};
use kg_bench::bench_record::{num, record_section, row};
use kg_core::{DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{build_workload, profiles, DatasetScale, WorkloadConfig};
use kg_query::AggregateQuery;
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// Shard counts of the matrix (shrunk under `KG_BENCH_QUICK`).
fn shard_counts() -> Vec<usize> {
    if std::env::var("KG_BENCH_QUICK").is_ok() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Thread counts of the matrix (shrunk under `KG_BENCH_QUICK`).
fn thread_counts() -> Vec<usize> {
    if std::env::var("KG_BENCH_QUICK").is_ok() {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// Runs `op` under a dedicated rayon pool of `threads` workers.
fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    }
}

fn bench_shard_scaling(c: &mut Criterion) {
    let dataset = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let queries: Vec<AggregateQuery> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    let graph = Arc::new(dataset.graph.clone());

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    let mut matrix: Vec<Value> = Vec::new();
    // (threads, k) → qps, for the speedup summary lines.
    let mut throughput: Vec<(usize, usize, f64)> = Vec::new();
    for k in shard_counts() {
        let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, k);
        let stats = sharded.stats();
        let batch = BatchEngine::new(engine_config());

        // One measured pass per matrix cell, outside criterion.
        for threads in thread_counts() {
            let start = Instant::now();
            let ok = at_threads(threads, || {
                batch
                    .execute_sharded(&sharded, &queries, &dataset.oracle)
                    .iter()
                    .filter(|a| a.is_ok())
                    .count()
            });
            let elapsed = start.elapsed().as_secs_f64();
            let qps = ok as f64 / elapsed;
            println!(
                "shard_scaling: K={k} threads={threads} → {qps:.1} q/s \
                 ({ok} queries in {elapsed:.2}s; owned {:?}, cut edges {}, replication {:.3})",
                stats.owned, stats.cut_edges, stats.replication_factor,
            );
            throughput.push((threads, k, qps));
            matrix.push(row(&[
                ("k", num(k as f64)),
                ("threads", num(threads as f64)),
                ("queries", num(queries.len() as f64)),
                ("seconds", num(elapsed)),
                ("qps", num(qps)),
                ("cut_edges", num(stats.cut_edges as f64)),
                ("replication_factor", num(stats.replication_factor)),
            ]));
        }

        group.bench_with_input(
            BenchmarkId::new("ssb", format!("K={k}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    batch
                        .execute_sharded(&sharded, queries, &dataset.oracle)
                        .iter()
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );
    }
    group.finish();

    let cell = |threads: usize, k: usize| {
        throughput
            .iter()
            .find(|(t, kk, _)| *t == threads && *kk == k)
            .map(|(_, _, qps)| *qps)
            .unwrap_or(f64::NAN)
    };
    let base = cell(1, 1);
    let mut speedups: Vec<Value> = Vec::new();
    for &(threads, k, qps) in &throughput {
        if threads == 1 && k == 1 {
            continue;
        }
        let vs_base = qps / base;
        let vs_1t_same_k = qps / cell(1, k);
        println!(
            "shard_scaling: speedup(K={k},{threads}t vs K=1,1t) = {vs_base:.2}× \
             (vs 1t at same K: {vs_1t_same_k:.2}×)"
        );
        speedups.push(row(&[
            ("k", num(k as f64)),
            ("threads", num(threads as f64)),
            ("speedup_vs_k1_1t", num(vs_base)),
            ("speedup_vs_1t_same_k", num(vs_1t_same_k)),
        ]));
    }
    record_section(
        "shard_scaling",
        row(&[
            ("matrix", Value::Array(matrix)),
            ("speedups", Value::Array(speedups)),
        ]),
    );
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
