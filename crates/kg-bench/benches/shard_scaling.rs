//! Batch-workload throughput as a function of the shard count K.
//!
//! The SSB-style evaluation workload runs through
//! `BatchEngine::execute_sharded` against the same graph partitioned into
//! K ∈ {1, 2, 4, 8} degree-balanced shards. K = 1 is the identity
//! configuration (bitwise the unsharded engine, BLB intervals and all), so
//! the K = 1 row is the baseline the speedup is measured against.
//!
//! Where the speedup comes from on a single core (offline rayon shim — no
//! thread parallelism involved): stratified sampling eliminates the
//! between-shard component of the estimator variance and Neyman allocation
//! concentrates refinement draws on high-variance shards, so queries reach
//! the Theorem-2 guarantee with fewer draws and fewer validations; and the
//! per-stratum bootstrap costs `B`·n draws per round against the BLB's
//! t·`B`·n. A real rayon pool adds shard-parallel refinement on top.
//!
//! Besides the criterion timings, the bench prints one `q/s` line per K
//! and a `speedup(K=4 vs K=1)` summary line.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_aqp::{BatchEngine, EngineConfig};
use kg_core::{DegreeBalancedPartitioner, ShardedGraph};
use kg_datagen::{build_workload, profiles, DatasetScale, WorkloadConfig};
use kg_query::AggregateQuery;
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn engine_config() -> EngineConfig {
    EngineConfig {
        error_bound: 0.05,
        ..EngineConfig::default()
    }
}

fn bench_shard_scaling(c: &mut Criterion) {
    let dataset = kg_datagen::generate(&profiles::dbpedia_like(DatasetScale::tiny(), 11));
    let queries: Vec<AggregateQuery> = build_workload(&dataset, &WorkloadConfig::default())
        .into_iter()
        .map(|q| q.query)
        .collect();
    let graph = Arc::new(dataset.graph.clone());

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    for k in SHARD_COUNTS {
        let sharded = ShardedGraph::new(Arc::clone(&graph), &DegreeBalancedPartitioner, k);
        let stats = sharded.stats();
        let batch = BatchEngine::new(engine_config());

        // One measured pass outside criterion for the q/s report.
        let start = Instant::now();
        let ok = batch
            .execute_sharded(&sharded, &queries, &dataset.oracle)
            .iter()
            .filter(|a| a.is_ok())
            .count();
        let elapsed = start.elapsed().as_secs_f64();
        let qps = ok as f64 / elapsed;
        println!(
            "shard_scaling: K={k} → {qps:.1} q/s ({ok} queries in {elapsed:.2}s; \
             owned {:?}, cut edges {}, replication {:.3})",
            stats.owned, stats.cut_edges, stats.replication_factor,
        );
        throughput.push((k, qps));

        group.bench_with_input(
            BenchmarkId::new("ssb", format!("K={k}/{}q", queries.len())),
            &queries,
            |b, queries| {
                b.iter(|| {
                    batch
                        .execute_sharded(&sharded, queries, &dataset.oracle)
                        .iter()
                        .filter(|a| a.is_ok())
                        .count()
                })
            },
        );
    }
    group.finish();

    let base = throughput
        .iter()
        .find(|(k, _)| *k == 1)
        .map(|(_, qps)| *qps)
        .unwrap_or(f64::NAN);
    for (k, qps) in &throughput {
        if *k != 1 {
            println!("shard_scaling: speedup(K={k} vs K=1) = {:.2}×", qps / base);
        }
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
