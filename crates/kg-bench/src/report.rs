//! Plain-text and JSON reporting of experiment results.

use std::fmt;

/// A printable experiment table (one per paper table / figure panel).
/// Serialisation is hand-rolled in [`Table::to_json`] (the single JSON
/// path), not derived.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `table6`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Serialises the table to a JSON value.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let strings = |items: &[String]| {
            Value::Array(items.iter().map(|s| Value::String(s.clone())).collect())
        };
        let mut obj = Map::new();
        obj.insert("id".to_string(), Value::String(self.id.clone()));
        obj.insert("title".to_string(), Value::String(self.title.clone()));
        obj.insert("headers".to_string(), strings(&self.headers));
        obj.insert(
            "rows".to_string(),
            Value::Array(self.rows.iter().map(|r| strings(r)).collect()),
        );
        Value::Object(obj)
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join(" | ")
        };
        writeln!(f, "{}", line(&self.headers, &widths))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-|-")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", line(row, &widths))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        let mut t = Table::new("table6", "Relative error", &["Method", "Simple", "Chain"]);
        t.push_row(vec!["Ours".into(), "0.84".into(), "0.33".into()]);
        t.push_row(vec!["EAQ".into(), "20.02".into(), "-".into()]);
        let text = t.to_string();
        assert!(text.contains("table6"));
        assert!(text.contains("Ours"));
        assert!(text.contains("EAQ"));
        let json = t.to_json();
        assert_eq!(json["headers"].as_array().unwrap().len(), 3);
        assert_eq!(json["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(12345.678), "12345.7");
        assert_eq!(fmt_num(12.345), "12.35");
        assert_eq!(fmt_num(0.01234), "0.0123");
        assert_eq!(fmt_num(f64::INFINITY), "-");
    }
}
