//! Shared experiment infrastructure: dataset bundles, the competing methods
//! and ground-truth helpers.

use kg_aqp::{AqpEngine, EngineConfig};
use kg_datagen::{
    build_workload, DatasetProfileKind, DatasetScale, GeneratedDataset, WorkloadConfig,
    WorkloadQuery,
};
use kg_query::{evaluate_with_engine, FactoidEngineKind, GroundTruthConfig, QueryShape, SsbEngine};
use std::time::Instant;

// `QueryCategory` lives in kg-datagen; re-export for experiment code.
pub use kg_datagen::QueryCategory;

/// One generated dataset plus its workload and an SSB engine for τ-GT.
pub struct DatasetBundle {
    /// Which real-world KG this profile imitates.
    pub kind: DatasetProfileKind,
    /// The generated dataset (graph, oracle embedding, annotation).
    pub dataset: GeneratedDataset,
    /// The generated query workload.
    pub workload: Vec<WorkloadQuery>,
    /// Exhaustive SSB engine used to compute τ-GT.
    pub ssb: SsbEngine,
}

impl DatasetBundle {
    /// Queries of the given shape and category, up to `limit`.
    pub fn queries(
        &self,
        shape: QueryShape,
        category: QueryCategory,
        limit: usize,
    ) -> Vec<&WorkloadQuery> {
        self.workload
            .iter()
            .filter(|q| q.shape == shape && q.category == category)
            .take(limit)
            .collect()
    }

    /// τ-relevant ground truth of a workload query (exact SSB evaluation).
    pub fn tau_gt(&self, query: &WorkloadQuery) -> f64 {
        self.ssb
            .evaluate(&self.dataset.graph, &query.query, &self.dataset.oracle)
            .map(|r| r.value)
            .unwrap_or(0.0)
    }

    /// Human-annotation ground truth of a workload query (planted schemas).
    pub fn ha_gt(&self, query: &WorkloadQuery) -> f64 {
        query.ha_value(&self.dataset)
    }
}

/// All methods compared in Tables VI–XI.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// The paper's sampling–estimation engine (this repository's `kg-aqp`).
    Ours,
    /// EAQ-style link prediction.
    Eaq,
    /// GraB-style structural similarity.
    Grab,
    /// QGA-style keyword search.
    Qga,
    /// SGQ-style top-k semantic search.
    Sgq,
    /// JENA-style exact SPARQL.
    Jena,
    /// Virtuoso/Neo4j-style exact SPARQL (same answers as JENA, slightly
    /// different constant overhead — exactly as in the paper's tables).
    Virtuoso,
    /// The exhaustive SSB baseline (Algorithm 1).
    Ssb,
}

impl Method {
    /// All methods in the paper's row order.
    pub fn all() -> [Method; 8] {
        [
            Method::Ours,
            Method::Eaq,
            Method::Grab,
            Method::Qga,
            Method::Sgq,
            Method::Jena,
            Method::Virtuoso,
            Method::Ssb,
        ]
    }

    /// Row label used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::Ours => "Ours",
            Method::Eaq => "EAQ",
            Method::Grab => "GraB",
            Method::Qga => "QGA",
            Method::Sgq => "SGQ",
            Method::Jena => "JENA",
            Method::Virtuoso => "Virtuoso",
            Method::Ssb => "SSB",
        }
    }
}

/// Outcome of running one method on one query.
#[derive(Clone, Copy, Debug)]
pub struct MethodOutcome {
    /// The aggregate value the method produced.
    pub value: f64,
    /// Wall-clock time in milliseconds.
    pub elapsed_ms: f64,
    /// False when the method cannot answer this query shape (EAQ on complex
    /// shapes).
    pub supported: bool,
}

/// The experiment context: the three dataset profiles with their workloads.
pub struct BenchContext {
    /// Dataset bundles in Table III order.
    pub bundles: Vec<DatasetBundle>,
    /// Engine configuration used for "Ours".
    pub engine_config: EngineConfig,
    /// How many queries per (shape, dataset) cell experiments evaluate.
    pub queries_per_cell: usize,
}

impl BenchContext {
    /// Builds the context at the given scale. `KG_BENCH_QUERIES_PER_CELL`
    /// overrides the per-cell query budget.
    pub fn build(scale: DatasetScale, seed: u64) -> Self {
        let bundles = DatasetProfileKind::all()
            .into_iter()
            .map(|kind| {
                let dataset = kg_datagen::generate(&kind.config(scale.clone(), seed));
                let workload = build_workload(&dataset, &WorkloadConfig::default());
                DatasetBundle {
                    kind,
                    dataset,
                    workload,
                    ssb: SsbEngine::new(GroundTruthConfig::default()),
                }
            })
            .collect();
        let queries_per_cell = std::env::var("KG_BENCH_QUERIES_PER_CELL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Self {
            bundles,
            engine_config: EngineConfig::default(),
            queries_per_cell,
        }
    }

    /// The scale selected by the `KG_BENCH_SCALE` environment variable
    /// (`tiny`, `default` or `large`), defaulting to `tiny` so that the whole
    /// suite runs in minutes.
    pub fn scale_from_env() -> DatasetScale {
        match std::env::var("KG_BENCH_SCALE").as_deref() {
            Ok("large") => DatasetScale::large(),
            Ok("default") => DatasetScale::default(),
            _ => DatasetScale::tiny(),
        }
    }
}

/// Runs one method on one workload query.
pub fn run_method(
    method: Method,
    bundle: &DatasetBundle,
    query: &WorkloadQuery,
    engine_config: &EngineConfig,
) -> MethodOutcome {
    let graph = &bundle.dataset.graph;
    let oracle = &bundle.dataset.oracle;
    match method {
        Method::Ours => {
            let engine = AqpEngine::new(engine_config.clone());
            let start = Instant::now();
            match engine.execute(graph, &query.query, oracle) {
                Ok(answer) => MethodOutcome {
                    value: answer.estimate,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    supported: true,
                },
                Err(_) => MethodOutcome {
                    value: 0.0,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    supported: false,
                },
            }
        }
        Method::Ssb => {
            let start = Instant::now();
            match bundle.ssb.evaluate(graph, &query.query, oracle) {
                Ok(r) => MethodOutcome {
                    value: r.value,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    supported: true,
                },
                Err(_) => MethodOutcome {
                    value: 0.0,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    supported: false,
                },
            }
        }
        other => {
            let kind = match other {
                Method::Eaq => FactoidEngineKind::LinkPrediction,
                Method::Grab => FactoidEngineKind::Structural,
                Method::Qga => FactoidEngineKind::Keyword,
                Method::Sgq => FactoidEngineKind::TopKSemantic,
                Method::Jena | Method::Virtuoso => FactoidEngineKind::ExactSparql,
                Method::Ours | Method::Ssb => unreachable!(),
            };
            let engine = kind.build();
            let start = Instant::now();
            match evaluate_with_engine(engine.as_ref(), graph, &query.query, oracle) {
                Ok(r) => {
                    let mut elapsed = start.elapsed().as_secs_f64() * 1e3;
                    if other == Method::Virtuoso {
                        // Virtuoso carries a slightly different constant
                        // overhead than JENA in the paper's setup.
                        elapsed *= 1.02;
                    }
                    MethodOutcome {
                        value: r.value,
                        elapsed_ms: elapsed,
                        supported: r.supported,
                    }
                }
                Err(_) => MethodOutcome {
                    value: 0.0,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    supported: false,
                },
            }
        }
    }
}

/// Relative error in percent, with the paper's convention that an exact match
/// of a zero ground truth is 0%.
pub fn relative_error_pct(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_convention() {
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert_eq!(relative_error_pct(5.0, 0.0), 100.0);
        assert!((relative_error_pct(99.0, 100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::all().len(), 8);
        assert_eq!(Method::Ours.name(), "Ours");
        assert_eq!(Method::Virtuoso.name(), "Virtuoso");
    }
}
