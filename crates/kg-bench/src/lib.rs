//! # kg-bench — experiment harness for the ICDE 2022 reproduction
//!
//! One function per table / figure of the paper's evaluation (§VII). Each
//! experiment builds (or reuses) the three dataset profiles, runs the
//! competing methods over the generated workload and prints rows in the same
//! layout as the paper. Absolute numbers differ from the authors' testbed —
//! the *shape* of the comparison (who wins, by roughly what factor, where the
//! trends go) is what the harness reproduces; see `EXPERIMENTS.md`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p kg-bench --release --bin run_experiments -- all
//! ```
//!
//! or a single experiment with its id (`table5` … `table13`, `fig5a` …
//! `fig6f`).
//!
//! Result tables render both as aligned text and as JSON:
//!
//! ```
//! use kg_bench::report::fmt_num;
//! use kg_bench::Table;
//!
//! let mut table = Table::new("table6", "Relative error", &["Method", "Simple"]);
//! table.push_row(vec!["Ours".into(), fmt_num(0.84)]);
//! assert!(table.to_string().contains("Relative error"));
//! assert_eq!(table.to_json()["id"].as_str(), Some("table6"));
//! ```

pub mod bench_record;
pub mod experiments;
pub mod harness;
pub mod report;

pub use bench_record::{bench_output_path, record_section};
pub use harness::{BenchContext, Method};
pub use report::Table;
