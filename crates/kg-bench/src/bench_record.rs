//! Machine-readable bench output: every throughput bench merges its
//! section into one `BENCH_5.json` at the workspace root, so the perf
//! story of a run (thread-count × shard-count matrices, alias-vs-search
//! draw costs, service throughput) is a single committed artifact instead
//! of scrollback.
//!
//! The file is a JSON object keyed by section name; a bench run replaces
//! only its own section, so `batch_throughput`, `shard_scaling` and
//! `service_throughput` can be (re-)run independently and accumulate into
//! the same file. `KG_BENCH_OUTPUT` overrides the path (CI's bench-smoke
//! job writes to a scratch file and validates it).

use serde_json::{Map, Value};
use std::env;
use std::path::PathBuf;

/// Where sections of bench artifact `bench_id` are merged:
/// `$KG_BENCH_OUTPUT` if set, else `BENCH_{bench_id}.json` at the
/// workspace root.
pub fn bench_output_path_for(bench_id: &str) -> PathBuf {
    if let Ok(path) = env::var("KG_BENCH_OUTPUT") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{bench_id}.json"))
}

/// Where bench sections are merged: `$KG_BENCH_OUTPUT` if set, else
/// `BENCH_5.json` at the workspace root.
pub fn bench_output_path() -> PathBuf {
    bench_output_path_for("5")
}

/// Context every section carries so recorded numbers are interpretable:
/// the host's core count bounds any thread-scaling claim (a 1-core
/// container cannot show multi-core speedup, however real the threads).
pub fn host_context() -> Value {
    let mut obj = Map::new();
    obj.insert(
        "available_parallelism".to_string(),
        Value::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
    );
    obj.insert(
        "rayon_num_threads_env".to_string(),
        match env::var("RAYON_NUM_THREADS") {
            Ok(v) => Value::String(v),
            Err(_) => Value::Null,
        },
    );
    Value::Object(obj)
}

/// Merges `section` into the bench output file for artifact `"5"` (the
/// shard/thread-scaling perf story). See [`record_section_for`].
pub fn record_section(section: &str, value: Value) {
    record_section_for("5", section, value);
}

/// Merges `section` into the output file of bench artifact `bench_id`,
/// replacing any previous value under the same key and stamping the file's
/// `bench` id. Errors are printed, not propagated — a read-only checkout
/// must not fail a bench.
pub fn record_section_for(bench_id: &str, section: &str, value: Value) {
    let path = bench_output_path_for(bench_id);
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .and_then(|v: Value| match v {
            Value::Object(map) => Some(map),
            _ => None,
        })
        .unwrap_or_default();
    root.insert("bench".to_string(), Value::String(bench_id.to_string()));
    root.insert("host".to_string(), host_context());
    root.insert(section.to_string(), value);
    let text = serde_json::to_string_pretty(&Value::Object(root)).expect("serialising is total");
    match std::fs::write(&path, text + "\n") {
        Ok(()) => println!("bench section {section:?} recorded in {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Builds one row of a matrix section from `(key, value)` pairs; numbers
/// go in as-is, everything else via `Value`.
pub fn row(pairs: &[(&str, Value)]) -> Value {
    let mut obj = Map::new();
    for (key, value) in pairs {
        obj.insert((*key).to_string(), value.clone());
    }
    Value::Object(obj)
}

/// Shorthand for a JSON number.
pub fn num(v: f64) -> Value {
    Value::Number(v)
}

/// Median of a sample set (empty → NaN).
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// Run-to-run noise of a repeated measurement, as a percentage of its
/// median: the full min→max spread of the samples relative to the median.
/// This is the floor below which a derived overhead/speedup percentage is
/// indistinguishable from measurement noise — a shared CI host routinely
/// shows 10–20% here, which is how a committed record once showed a
/// *negative* instrumentation overhead. Empty/degenerate input → NaN.
pub fn noise_pct(samples: &[f64]) -> f64 {
    let m = median(samples);
    if !m.is_finite() || m <= 0.0 {
        return f64::NAN;
    }
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
    }
    (max - min) / m * 100.0
}

/// An overhead percentage interpreted against the run's noise floor.
/// Records the raw reading verbatim, a clamped headline value (an overhead
/// cannot be negative — a below-zero reading is noise, not speedup), and
/// whether the reading's magnitude is within the noise floor (in which
/// case the headline number means "indistinguishable from zero").
pub fn overhead_reading(raw_pct: f64, noise_pct: f64) -> Value {
    row(&[
        ("raw_pct", num(raw_pct)),
        ("pct", num(raw_pct.max(0.0))),
        ("noise_pct", num(noise_pct)),
        (
            "within_noise",
            Value::Bool(raw_pct.is_finite() && noise_pct.is_finite() && raw_pct.abs() <= noise_pct),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_and_replace() {
        let dir = std::env::temp_dir().join(format!("bench_record_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        // Not via the env var (tests share a process): exercise the merge
        // logic directly against a scratch file.
        let write = |section: &str, value: Value| {
            let mut root = std::fs::read_to_string(&path)
                .ok()
                .and_then(|t| serde_json::from_str(&t).ok())
                .and_then(|v: Value| match v {
                    Value::Object(map) => Some(map),
                    _ => None,
                })
                .unwrap_or_default();
            root.insert(section.to_string(), value);
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&Value::Object(root)).unwrap(),
            )
            .unwrap();
        };
        write("a", num(1.0));
        write("b", num(2.0));
        write("a", num(3.0));
        let parsed: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.get("a").and_then(Value::as_f64), Some(3.0));
        assert_eq!(parsed.get("b").and_then(Value::as_f64), Some(2.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noise_floor_and_clamped_overheads() {
        // 10% spread around a median of 100.
        let samples = [95.0, 100.0, 105.0];
        let noise = noise_pct(&samples);
        assert!((noise - 10.0).abs() < 1e-9, "noise = {noise}");
        assert!((median(&samples) - 100.0).abs() < 1e-12);

        // A −9% reading under a 10% noise floor: clamped and flagged.
        let r = overhead_reading(-9.0, noise);
        assert_eq!(r.get("raw_pct").and_then(Value::as_f64), Some(-9.0));
        assert_eq!(r.get("pct").and_then(Value::as_f64), Some(0.0));
        assert_eq!(r.get("within_noise").and_then(Value::as_bool), Some(true));

        // A +25% reading over the same floor: kept, not flagged.
        let r = overhead_reading(25.0, noise);
        assert_eq!(r.get("pct").and_then(Value::as_f64), Some(25.0));
        assert_eq!(r.get("within_noise").and_then(Value::as_bool), Some(false));

        assert!(noise_pct(&[]).is_nan());
        assert!(noise_pct(&[0.0]).is_nan());
    }

    #[test]
    fn host_context_reports_parallelism() {
        let host = host_context();
        assert!(host.get("available_parallelism").and_then(Value::as_f64) >= Some(1.0));
    }
}
