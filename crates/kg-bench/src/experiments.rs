//! One function per table / figure of the paper's evaluation (§VII).
//!
//! Each experiment returns one or more [`Table`]s; `run_experiments` prints
//! them and dumps JSON for `EXPERIMENTS.md`. Experiments share a single
//! [`BenchContext`] (the three dataset profiles and their workloads).

use crate::harness::{relative_error_pct, BenchContext, Method, QueryCategory};
use crate::report::{fmt_num, Table};
use kg_aqp::{AqpEngine, EngineConfig};
use kg_datagen::WorkloadQuery;
use kg_embed::{EmbeddingModelKind, PredicateSimilarity, TrainerConfig};
use kg_query::{jaccard, GroundTruthConfig, QueryShape, QuerySpec};
use kg_sampling::SamplingStrategy;

/// The ids of every experiment, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table5", "table6", "table7", "table8", "table9", "table10", "table11", "table12", "table13",
    "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
];

/// Runs one experiment by id.
pub fn run(id: &str, ctx: &BenchContext) -> Vec<Table> {
    match id {
        "table5" => table5(ctx),
        "table6" => table6_7_8(ctx, Grid::TauError),
        "table7" => table6_7_8(ctx, Grid::HaError),
        "table8" => table6_7_8(ctx, Grid::Time),
        "table9" => table9(ctx),
        "table10" => table10_11(ctx, true),
        "table11" => table10_11(ctx, false),
        "table12" => table12(ctx),
        "table13" => table13(ctx),
        "fig5a" => fig5a(ctx),
        "fig5b" => fig5b(ctx),
        "fig5c" => fig5c(ctx),
        "fig6a" => fig6a(ctx),
        "fig6b" => fig6b(ctx),
        "fig6c" => fig6c(ctx),
        "fig6d" => fig6d(ctx),
        "fig6e" => fig6e(ctx),
        "fig6f" => fig6f(ctx),
        other => panic!("unknown experiment id {other:?}"),
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Table V — AJS between human-annotated and τ-relevant correct answers.
// ---------------------------------------------------------------------------
fn table5(ctx: &BenchContext) -> Vec<Table> {
    let taus = [0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];
    let mut table = Table::new(
        "table5",
        "Average Jaccard similarity (AJS) between HA and τ-relevant answers, and its variance",
        &[
            "Dataset", "metric", "0.60", "0.65", "0.70", "0.75", "0.80", "0.85", "0.90", "0.95",
        ],
    );
    for bundle in &ctx.bundles {
        let queries = bundle.queries(
            QueryShape::Simple,
            QueryCategory::Plain,
            ctx.queries_per_cell.max(3),
        );
        let mut ajs_row = vec![bundle.kind.name().to_string(), "AJS".to_string()];
        let mut var_row = vec![bundle.kind.name().to_string(), "Var".to_string()];
        for tau in taus {
            let mut sims = Vec::new();
            for q in &queries {
                let QuerySpec::Simple(simple) = &q.query.query else {
                    continue;
                };
                let resolved = simple.resolve(&bundle.dataset.graph).unwrap();
                let gt = kg_query::simple_ground_truth(
                    &bundle.dataset.graph,
                    &resolved,
                    &bundle.dataset.oracle,
                    &GroundTruthConfig {
                        tau,
                        ..GroundTruthConfig::default()
                    },
                );
                let ha = q.ha_answers(&bundle.dataset);
                sims.push(jaccard(&gt.correct, &ha));
            }
            let m = mean(&sims);
            let var = mean(&sims.iter().map(|s| (s - m) * (s - m)).collect::<Vec<_>>());
            ajs_row.push(fmt_num(m));
            var_row.push(fmt_num(var));
        }
        table.push_row(ajs_row);
        table.push_row(var_row);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Tables VI / VII / VIII — error vs τ-GT, error vs HA-GT, response time,
// per shape × dataset × method.
// ---------------------------------------------------------------------------
enum Grid {
    TauError,
    HaError,
    Time,
}

fn table6_7_8(ctx: &BenchContext, grid: Grid) -> Vec<Table> {
    let (id, title) = match grid {
        Grid::TauError => ("table6", "Relative error (%) w.r.t. τ-GT per query shape"),
        Grid::HaError => ("table7", "Relative error (%) w.r.t. HA-GT per query shape"),
        Grid::Time => ("table8", "Average response time (ms) per query shape"),
    };
    let mut tables = Vec::new();
    for bundle in &ctx.bundles {
        let mut table = Table::new(
            id,
            &format!("{title} — {}", bundle.kind.name()),
            &["Method", "Simple", "Chain", "Star", "Cycle", "Flower"],
        );
        for method in Method::all() {
            let mut row = vec![method.name().to_string()];
            for shape in QueryShape::all() {
                let queries = bundle.queries(shape, QueryCategory::Plain, ctx.queries_per_cell);
                if queries.is_empty() {
                    row.push("-".into());
                    continue;
                }
                let mut cells = Vec::new();
                let mut unsupported = false;
                for q in queries {
                    let outcome = run_method_cached(method, bundle, q, &ctx.engine_config);
                    if !outcome.supported {
                        unsupported = true;
                        break;
                    }
                    let cell = match grid {
                        Grid::TauError => relative_error_pct(outcome.value, bundle.tau_gt(q)),
                        Grid::HaError => relative_error_pct(outcome.value, bundle.ha_gt(q)),
                        Grid::Time => outcome.elapsed_ms,
                    };
                    cells.push(cell);
                }
                row.push(if unsupported {
                    "-".into()
                } else {
                    fmt_num(mean(&cells))
                });
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

fn run_method_cached(
    method: Method,
    bundle: &crate::harness::DatasetBundle,
    query: &WorkloadQuery,
    cfg: &EngineConfig,
) -> crate::harness::MethodOutcome {
    crate::harness::run_method(method, bundle, query, cfg)
}

// ---------------------------------------------------------------------------
// Table IX — per-round refinement case study.
// ---------------------------------------------------------------------------
fn table9(ctx: &BenchContext) -> Vec<Table> {
    let mut table = Table::new(
        "table9",
        "Case study: per-round refinement (V̂, MoE ε, relative error %) until eb = 1% is met",
        &["Query", "Round", "V̂", "MoE ε", "error %"],
    );
    let bundle = &ctx.bundles[0];
    let queries = bundle.queries(QueryShape::Simple, QueryCategory::Plain, 3);
    for q in queries {
        let truth = bundle.tau_gt(q);
        let engine = AqpEngine::new(ctx.engine_config.clone());
        if let Ok(answer) = engine.execute(&bundle.dataset.graph, &q.query, &bundle.dataset.oracle)
        {
            for round in &answer.rounds {
                table.push_row(vec![
                    q.id.clone(),
                    round.round.to_string(),
                    fmt_num(round.estimate),
                    fmt_num(round.moe),
                    fmt_num(relative_error_pct(round.estimate, truth)),
                ]);
            }
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Tables X / XI — operators (Filter, GROUP-BY, MAX/MIN): time and error.
// ---------------------------------------------------------------------------
fn table10_11(ctx: &BenchContext, time: bool) -> Vec<Table> {
    let bundle = &ctx.bundles[0];
    let (id, title) = if time {
        (
            "table10",
            "Efficiency (ms) for Filter / GROUP-BY / MAX-MIN operators (DBpedia-like)",
        )
    } else {
        (
            "table11",
            "Relative error (%) for Filter / GROUP-BY / MAX-MIN operators (DBpedia-like)",
        )
    };
    let headers = if time {
        vec!["Method", "Filter", "GROUP-BY", "MAX/MIN"]
    } else {
        vec![
            "Method",
            "Filter (τ-GT)",
            "MAX/MIN (τ-GT)",
            "Filter (HA-GT)",
            "MAX/MIN (HA-GT)",
        ]
    };
    let headers: Vec<&str> = headers.iter().map(|s| &**s).collect();
    let mut table = Table::new(id, title, &headers);
    let categories = [
        QueryCategory::Filtered,
        QueryCategory::Grouped,
        QueryCategory::Extreme,
    ];
    for method in Method::all() {
        let mut row = vec![method.name().to_string()];
        if time {
            for category in categories {
                let queries = bundle.queries(QueryShape::Simple, category, ctx.queries_per_cell);
                // GROUP-BY is only supported by Ours, SSB, JENA/Virtuoso (paper Table X).
                if category == QueryCategory::Grouped
                    && !matches!(
                        method,
                        Method::Ours | Method::Ssb | Method::Jena | Method::Virtuoso
                    )
                {
                    row.push("-".into());
                    continue;
                }
                let times: Vec<f64> = queries
                    .iter()
                    .map(|q| run_method_cached(method, bundle, q, &ctx.engine_config).elapsed_ms)
                    .collect();
                row.push(fmt_num(mean(&times)));
            }
        } else {
            for category in [QueryCategory::Filtered, QueryCategory::Extreme] {
                let queries = bundle.queries(QueryShape::Simple, category, ctx.queries_per_cell);
                let errs: Vec<f64> = queries
                    .iter()
                    .map(|q| {
                        let o = run_method_cached(method, bundle, q, &ctx.engine_config);
                        relative_error_pct(o.value, bundle.tau_gt(q))
                    })
                    .collect();
                row.push(fmt_num(mean(&errs)));
            }
            for category in [QueryCategory::Filtered, QueryCategory::Extreme] {
                let queries = bundle.queries(QueryShape::Simple, category, ctx.queries_per_cell);
                let errs: Vec<f64> = queries
                    .iter()
                    .map(|q| {
                        let o = run_method_cached(method, bundle, q, &ctx.engine_config);
                        relative_error_pct(o.value, bundle.ha_gt(q))
                    })
                    .collect();
                row.push(fmt_num(mean(&errs)));
            }
        }
        table.push_row(row);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Table XII — per-step time (S1 sampling, S2 estimation, S3 guarantee).
// ---------------------------------------------------------------------------
fn table12(ctx: &BenchContext) -> Vec<Table> {
    let mut table = Table::new(
        "table12",
        "Per-step time (ms): S1 sampling, S2 estimation, S3 guarantee (DBpedia-like, simple)",
        &["Operator", "S1", "S2", "S3"],
    );
    let bundle = &ctx.bundles[0];
    for wanted in ["COUNT", "AVG", "SUM"] {
        let queries: Vec<&WorkloadQuery> = bundle
            .workload
            .iter()
            .filter(|q| {
                q.shape == QueryShape::Simple
                    && q.category == QueryCategory::Plain
                    && q.query.function.name() == wanted
            })
            .take(ctx.queries_per_cell)
            .collect();
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let mut s3 = Vec::new();
        for q in queries {
            let engine = AqpEngine::new(ctx.engine_config.clone());
            if let Ok(a) = engine.execute(&bundle.dataset.graph, &q.query, &bundle.dataset.oracle) {
                s1.push(a.timings.sampling_ms);
                s2.push(a.timings.estimation_ms);
                s3.push(a.timings.guarantee_ms);
            }
        }
        table.push_row(vec![
            wanted.to_string(),
            fmt_num(mean(&s1)),
            fmt_num(mean(&s2)),
            fmt_num(mean(&s3)),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Table XIII — effect of the KG embedding model.
// ---------------------------------------------------------------------------
fn table13(ctx: &BenchContext) -> Vec<Table> {
    let mut table = Table::new(
        "table13",
        "Effect of KG embedding models (DBpedia-like, simple, HA-GT): train time, parameters, error",
        &["Model", "Embed time (ms)", "Parameters", "Relative error (%)"],
    );
    let bundle = &ctx.bundles[0];
    let queries = bundle.queries(
        QueryShape::Simple,
        QueryCategory::Plain,
        ctx.queries_per_cell,
    );
    let trainer = TrainerConfig {
        dimension: 24,
        epochs: 12,
        ..TrainerConfig::default()
    };
    for kind in EmbeddingModelKind::all() {
        let trained = kg_embed::train(&bundle.dataset.graph, kind, &trainer);
        let errs: Vec<f64> = queries
            .iter()
            .map(|q| {
                let engine = AqpEngine::new(ctx.engine_config.clone());
                match engine.execute(&bundle.dataset.graph, &q.query, &trained.store) {
                    Ok(a) => relative_error_pct(a.estimate, bundle.ha_gt(q)),
                    Err(_) => 100.0,
                }
            })
            .collect();
        table.push_row(vec![
            kind.name().to_string(),
            fmt_num(trained.stats.train_time_ms),
            trained.stats.parameters.to_string(),
            fmt_num(mean(&errs)),
        ]);
    }
    // Extra ablation called out in DESIGN.md: the oracle embedding.
    let errs: Vec<f64> = queries
        .iter()
        .map(|q| {
            let engine = AqpEngine::new(ctx.engine_config.clone());
            match engine.execute(&bundle.dataset.graph, &q.query, &bundle.dataset.oracle) {
                Ok(a) => relative_error_pct(a.estimate, bundle.ha_gt(q)),
                Err(_) => 100.0,
            }
        })
        .collect();
    table.push_row(vec![
        "Oracle".to_string(),
        "0".to_string(),
        bundle.dataset.oracle.stored_floats().to_string(),
        fmt_num(mean(&errs)),
    ]);
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 5(a) — S1 ablation: semantic-aware vs CNARW vs Node2Vec.
// ---------------------------------------------------------------------------
fn run_with_config<S: PredicateSimilarity + ?Sized>(
    bundle: &crate::harness::DatasetBundle,
    query: &WorkloadQuery,
    cfg: &EngineConfig,
    similarity: &S,
) -> (f64, f64) {
    let engine = AqpEngine::new(cfg.clone());
    let start = std::time::Instant::now();
    match engine.execute(&bundle.dataset.graph, &query.query, similarity) {
        Ok(a) => (a.estimate, start.elapsed().as_secs_f64() * 1e3),
        Err(_) => (0.0, start.elapsed().as_secs_f64() * 1e3),
    }
}

fn aggregate_ablation(
    ctx: &BenchContext,
    id: &str,
    title: &str,
    variants: Vec<(String, EngineConfig)>,
) -> Vec<Table> {
    let mut error_table = Table::new(
        id,
        &format!("{title} — relative error (%)"),
        &["Variant", "COUNT", "AVG", "SUM"],
    );
    let mut time_table = Table::new(
        id,
        &format!("{title} — response time (ms)"),
        &["Variant", "COUNT", "AVG", "SUM"],
    );
    let bundle = &ctx.bundles[0];
    for (name, cfg) in variants {
        let mut err_row = vec![name.clone()];
        let mut time_row = vec![name.clone()];
        for wanted in ["COUNT", "AVG", "SUM"] {
            let queries: Vec<&WorkloadQuery> = bundle
                .workload
                .iter()
                .filter(|q| {
                    q.shape == QueryShape::Simple
                        && q.category == QueryCategory::Plain
                        && q.query.function.name() == wanted
                })
                .take(ctx.queries_per_cell)
                .collect();
            let mut errs = Vec::new();
            let mut times = Vec::new();
            for q in queries {
                let (value, ms) = run_with_config(bundle, q, &cfg, &bundle.dataset.oracle);
                errs.push(relative_error_pct(value, bundle.ha_gt(q)));
                times.push(ms);
            }
            err_row.push(fmt_num(mean(&errs)));
            time_row.push(fmt_num(mean(&times)));
        }
        error_table.push_row(err_row);
        time_table.push_row(time_row);
    }
    vec![error_table, time_table]
}

fn fig5a(ctx: &BenchContext) -> Vec<Table> {
    aggregate_ablation(
        ctx,
        "fig5a",
        "Effect of S1: semantic-aware sampling vs CNARW vs Node2Vec",
        vec![
            ("semantic-aware".into(), ctx.engine_config.clone()),
            (
                "CNARW".into(),
                EngineConfig {
                    strategy: SamplingStrategy::Cnarw,
                    ..ctx.engine_config.clone()
                },
            ),
            (
                "Node2Vec".into(),
                EngineConfig {
                    strategy: SamplingStrategy::Node2Vec { p: 4.0, q: 0.5 },
                    ..ctx.engine_config.clone()
                },
            ),
        ],
    )
}

fn fig5b(ctx: &BenchContext) -> Vec<Table> {
    aggregate_ablation(
        ctx,
        "fig5b",
        "Effect of S2: with vs without correctness validation",
        vec![
            ("w/ validation".into(), ctx.engine_config.clone()),
            (
                "w/o validation".into(),
                EngineConfig {
                    validate: false,
                    ..ctx.engine_config.clone()
                },
            ),
        ],
    )
}

fn fig5c(ctx: &BenchContext) -> Vec<Table> {
    aggregate_ablation(
        ctx,
        "fig5c",
        "Effect of S3: error-based Δ|S_A| vs fixed increment",
        vec![
            ("error-based".into(), ctx.engine_config.clone()),
            (
                "fixed (50)".into(),
                EngineConfig {
                    fixed_increment: Some(50),
                    ..ctx.engine_config.clone()
                },
            ),
        ],
    )
}

// ---------------------------------------------------------------------------
// Fig. 6(a) — interactive error-bound refinement.
// ---------------------------------------------------------------------------
fn fig6a(ctx: &BenchContext) -> Vec<Table> {
    let mut table = Table::new(
        "fig6a",
        "Interactive performance: incremental time (ms) as eb is tightened 5%→4%→3%→2%→1%",
        &["Aggregate", "5%→4%", "4%→3%", "3%→2%", "2%→1%"],
    );
    let bundle = &ctx.bundles[0];
    for wanted in ["COUNT", "AVG", "SUM"] {
        let query = bundle.workload.iter().find(|q| {
            q.shape == QueryShape::Simple
                && q.category == QueryCategory::Plain
                && q.query.function.name() == wanted
        });
        let Some(query) = query else { continue };
        let engine = AqpEngine::new(EngineConfig {
            error_bound: 0.05,
            ..ctx.engine_config.clone()
        });
        let mut session = engine
            .open_session(&bundle.dataset.graph, &query.query, &bundle.dataset.oracle)
            .unwrap();
        session.refine_to(&bundle.dataset.graph, &bundle.dataset.oracle, 0.05);
        let mut row = vec![wanted.to_string()];
        for eb in [0.04, 0.03, 0.02, 0.01] {
            let start = std::time::Instant::now();
            session.refine_to(&bundle.dataset.graph, &bundle.dataset.oracle, eb);
            row.push(fmt_num(start.elapsed().as_secs_f64() * 1e3));
        }
        table.push_row(row);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 6(b)–(f) — parameter sensitivity sweeps.
// ---------------------------------------------------------------------------
fn sweep<F>(
    ctx: &BenchContext,
    id: &str,
    title: &str,
    axis: &str,
    values: Vec<(String, EngineConfig)>,
    mut truth: F,
) -> Vec<Table>
where
    F: FnMut(&crate::harness::DatasetBundle, &WorkloadQuery) -> f64,
{
    let mut error_table = Table::new(
        id,
        &format!("{title} — relative error (%)"),
        &[axis, "COUNT", "AVG", "SUM"],
    );
    let mut time_table = Table::new(
        id,
        &format!("{title} — response time (ms)"),
        &[axis, "COUNT", "AVG", "SUM"],
    );
    let bundle = &ctx.bundles[0];
    for (label, cfg) in values {
        let mut err_row = vec![label.clone()];
        let mut time_row = vec![label.clone()];
        for wanted in ["COUNT", "AVG", "SUM"] {
            let queries: Vec<&WorkloadQuery> = bundle
                .workload
                .iter()
                .filter(|q| {
                    q.shape == QueryShape::Simple
                        && q.category == QueryCategory::Plain
                        && q.query.function.name() == wanted
                })
                .take(ctx.queries_per_cell)
                .collect();
            let mut errs = Vec::new();
            let mut times = Vec::new();
            for q in queries {
                let (value, ms) = run_with_config(bundle, q, &cfg, &bundle.dataset.oracle);
                errs.push(relative_error_pct(value, truth(bundle, q)));
                times.push(ms);
            }
            err_row.push(fmt_num(mean(&errs)));
            time_row.push(fmt_num(mean(&times)));
        }
        error_table.push_row(err_row);
        time_table.push_row(time_row);
    }
    vec![error_table, time_table]
}

fn fig6b(ctx: &BenchContext) -> Vec<Table> {
    let values = [0.86, 0.89, 0.92, 0.95, 0.98]
        .into_iter()
        .map(|c| {
            (
                format!("{:.0}%", c * 100.0),
                EngineConfig {
                    confidence: c,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    sweep(
        ctx,
        "fig6b",
        "Effect of confidence level 1−α",
        "1−α",
        values,
        |b, q| b.ha_gt(q),
    )
}

fn fig6c(ctx: &BenchContext) -> Vec<Table> {
    let values = (1..=5)
        .map(|r| {
            (
                r.to_string(),
                EngineConfig {
                    repeat_factor: r,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    sweep(
        ctx,
        "fig6c",
        "Effect of repeat factor r",
        "r",
        values,
        |b, q| b.ha_gt(q),
    )
}

fn fig6d(ctx: &BenchContext) -> Vec<Table> {
    let values = [0.1, 0.2, 0.3, 0.4, 0.5]
        .into_iter()
        .map(|l| {
            (
                format!("{l:.1}"),
                EngineConfig {
                    desired_sample_ratio: l,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    sweep(
        ctx,
        "fig6d",
        "Effect of desired sample ratio λ",
        "λ",
        values,
        |b, q| b.ha_gt(q),
    )
}

fn fig6e(ctx: &BenchContext) -> Vec<Table> {
    let values = (1..=5)
        .map(|n| {
            (
                n.to_string(),
                EngineConfig {
                    n_bound: n,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    sweep(
        ctx,
        "fig6e",
        "Effect of the n-bounded subgraph",
        "n",
        values,
        |b, q| b.ha_gt(q),
    )
}

fn fig6f(ctx: &BenchContext) -> Vec<Table> {
    let taus = [0.70, 0.75, 0.80, 0.85, 0.90];
    // Left panel: error w.r.t. τ-GT (the ground truth moves with τ).
    let left_values: Vec<(String, EngineConfig)> = taus
        .iter()
        .map(|t| {
            (
                format!("{t:.2}"),
                EngineConfig {
                    tau: *t,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    let mut tables = Vec::new();
    {
        let bundle = &ctx.bundles[0];
        let mut tau_tables = sweep(
            ctx,
            "fig6f",
            "Effect of τ — error w.r.t. τ-GT",
            "τ",
            left_values,
            |b, q| {
                // Recompute τ-GT with the engine's τ for the left panel.
                let _ = b;
                let _ = q;
                0.0
            },
        );
        // The closure above cannot see the current τ, so recompute properly here.
        tau_tables[0].rows.clear();
        for t in taus {
            let cfg = EngineConfig {
                tau: t,
                ..ctx.engine_config.clone()
            };
            let mut err_row = vec![format!("{t:.2}")];
            for wanted in ["COUNT", "AVG", "SUM"] {
                let queries: Vec<&WorkloadQuery> = bundle
                    .workload
                    .iter()
                    .filter(|q| {
                        q.shape == QueryShape::Simple
                            && q.category == QueryCategory::Plain
                            && q.query.function.name() == wanted
                    })
                    .take(ctx.queries_per_cell)
                    .collect();
                let mut errs = Vec::new();
                for q in queries {
                    let QuerySpec::Simple(simple) = &q.query.query else {
                        continue;
                    };
                    let resolved = simple.resolve(&bundle.dataset.graph).unwrap();
                    let gt = kg_query::simple_ground_truth(
                        &bundle.dataset.graph,
                        &resolved,
                        &bundle.dataset.oracle,
                        &GroundTruthConfig {
                            tau: t,
                            ..GroundTruthConfig::default()
                        },
                    );
                    let aggregate = q.query.function.resolve(&bundle.dataset.graph).unwrap();
                    let truth = gt.value(&bundle.dataset.graph, &aggregate);
                    let (value, _) = run_with_config(bundle, q, &cfg, &bundle.dataset.oracle);
                    errs.push(relative_error_pct(value, truth));
                }
                err_row.push(fmt_num(mean(&errs)));
            }
            tau_tables[0].push_row(err_row);
        }
        tau_tables[0].title = "Effect of τ — error w.r.t. τ-GT (left panel)".into();
        tables.push(tau_tables.remove(0));
    }
    // Right panel: error w.r.t. HA-GT (fixed ground truth).
    let right_values: Vec<(String, EngineConfig)> = taus
        .iter()
        .map(|t| {
            (
                format!("{t:.2}"),
                EngineConfig {
                    tau: *t,
                    ..ctx.engine_config.clone()
                },
            )
        })
        .collect();
    let mut right = sweep(
        ctx,
        "fig6f",
        "Effect of τ — error w.r.t. HA-GT (right panel)",
        "τ",
        right_values,
        |b, q| b.ha_gt(q),
    );
    tables.push(right.remove(0));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::DatasetScale;

    fn tiny_ctx() -> BenchContext {
        std::env::set_var("KG_BENCH_QUERIES_PER_CELL", "1");
        BenchContext::build(DatasetScale::tiny(), 3)
    }

    #[test]
    fn experiment_registry_is_complete() {
        assert_eq!(ALL_EXPERIMENTS.len(), 18);
    }

    #[test]
    fn table5_and_table9_run_on_tiny_context() {
        let ctx = tiny_ctx();
        let t5 = run("table5", &ctx);
        assert_eq!(t5.len(), 1);
        assert!(!t5[0].rows.is_empty());
        let t9 = run("table9", &ctx);
        assert!(!t9[0].rows.is_empty());
    }

    #[test]
    fn fig5b_shows_validation_benefit_shape() {
        let ctx = tiny_ctx();
        let tables = run("fig5b", &ctx);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2);
    }
}
