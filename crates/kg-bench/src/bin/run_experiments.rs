//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p kg-bench --release --bin run_experiments -- all
//! cargo run -p kg-bench --release --bin run_experiments -- table6 fig5a
//! ```
//!
//! Environment variables:
//! * `KG_BENCH_SCALE` = `tiny` (default) | `default` | `large`
//! * `KG_BENCH_QUERIES_PER_CELL` = queries evaluated per (shape, dataset) cell

use kg_bench::experiments::{run, ALL_EXPERIMENTS};
use kg_bench::BenchContext;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    eprintln!("building dataset profiles (scale from KG_BENCH_SCALE, default tiny)...");
    let ctx = BenchContext::build(BenchContext::scale_from_env(), 2022);
    for bundle in &ctx.bundles {
        eprintln!(
            "  {}: {} ({} workload queries)",
            bundle.kind.name(),
            kg_core::GraphStats::compute(&bundle.dataset.graph),
            bundle.workload.len()
        );
    }

    let mut json_tables = Vec::new();
    for id in requested {
        eprintln!("running {id} ...");
        let start = std::time::Instant::now();
        let tables = run(id, &ctx);
        for table in &tables {
            println!("{table}");
            json_tables.push(table.to_json());
        }
        eprintln!("  {id} done in {:.1}s", start.elapsed().as_secs_f64());
    }

    let out_dir = std::path::Path::new("experiments_output");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("results.json");
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&serde_json::Value::Array(json_tables)).unwrap()
            );
            eprintln!("wrote {}", path.display());
        }
    }
}
