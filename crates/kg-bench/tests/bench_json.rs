//! The committed `BENCH_*.json` files at the workspace root are the
//! machine-readable perf records of this revision: `BENCH_5.json` holds the
//! thread-count × shard-count matrices, alias-vs-search draw costs and
//! service throughput; `BENCH_6.json` holds the deadline-goodput curve;
//! `BENCH_8.json` holds the telemetry overhead record (instrumented vs
//! disabled, read against a measured noise floor); `BENCH_9.json` holds the
//! cold-start record (parse+build+sampler-prep vs snapshot load);
//! `BENCH_10.json` holds the distributed-execution record (scatter-gather
//! round-trip medians per wire codec, and the sustained-QPS-at-X-writes/sec
//! matrix). These tests keep them present and well-formed: regenerating one with
//! `cargo bench -p kg-bench --bench <name>` must always produce a file
//! the schema check accepts, and a stale/corrupt commit fails tier-1.

use serde_json::Value;
use std::path::PathBuf;

fn committed_doc(file: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{file}"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{file} must be committed at the workspace root ({}): {e}",
            path.display()
        )
    });
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{file} parses as JSON: {e}"))
}

fn section<'doc>(doc: &'doc Value, name: &str) -> &'doc Value {
    doc.get(name)
        .unwrap_or_else(|| panic!("the bench json is missing the {name:?} section"))
}

fn positive_qps_rows(matrix: &Value, context: &str) {
    let rows = matrix.as_array().unwrap_or_else(|| {
        panic!("{context}: matrix must be an array");
    });
    assert!(!rows.is_empty(), "{context}: matrix must not be empty");
    for row in rows {
        let qps = row.get("qps").and_then(Value::as_f64).unwrap_or(f64::NAN);
        assert!(qps.is_finite() && qps > 0.0, "{context}: bad qps in {row}");
        let threads_or_workers = row
            .get("threads")
            .or(row.get("workers"))
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(threads_or_workers >= 1.0, "{context}: bad row {row}");
    }
}

#[test]
fn committed_bench_json_is_well_formed() {
    let doc = committed_doc("BENCH_5.json");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("5"));
    let host = section(&doc, "host");
    assert!(
        host.get("available_parallelism")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );

    positive_qps_rows(
        section(&doc, "batch_throughput")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "batch_throughput",
    );
    positive_qps_rows(
        section(&doc, "shard_scaling")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "shard_scaling",
    );
    positive_qps_rows(
        section(&doc, "service_throughput")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "service_throughput",
    );

    let alias = section(&doc, "alias_draw");
    for key in [
        "alias_ns_per_draw",
        "binary_search_ns_per_draw",
        "ratio_alias_vs_search",
    ] {
        let v = alias.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        assert!(v.is_finite() && v > 0.0, "alias_draw.{key} = {v}");
    }
}

/// `BENCH_6.json`: the deadline-goodput record. The burst that legacy
/// admission control shed almost entirely must answer ≥ 90% with anytime
/// answers at the tuned deadline, and the deadline-less baseline must still
/// show the shed cliff (the 503 contract was not silently relaxed).
#[test]
fn committed_deadline_goodput_json_is_well_formed() {
    let doc = committed_doc("BENCH_6.json");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("6"));
    let goodput = section(&doc, "deadline_goodput");

    let deadline_ms = goodput
        .get("deadline_ms")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    assert!(
        (40.0..=100.0).contains(&deadline_ms),
        "tuned deadline out of range: {deadline_ms}"
    );

    let curve = goodput
        .get("curve")
        .and_then(Value::as_array)
        .expect("deadline_goodput.curve is an array");
    assert!(curve.len() >= 2, "curve needs at least two client counts");
    let mut saw_sixteen = false;
    for cell in curve {
        let clients = cell.get("clients").and_then(Value::as_f64).unwrap_or(0.0);
        let ok_rate = cell
            .get("ok_rate")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        let p95 = cell
            .get("p95_ms")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(clients >= 1.0, "bad cell {cell}");
        assert!((0.0..=1.0).contains(&ok_rate), "bad ok_rate in {cell}");
        assert!(p95.is_finite() && p95 > 0.0, "bad p95 in {cell}");
        if clients == 16.0 {
            saw_sixteen = true;
            assert!(
                ok_rate >= 0.9,
                "the 16-client anytime burst must answer ≥ 90%: {cell}"
            );
        }
    }
    assert!(saw_sixteen, "the curve must include the 16-client cell");

    let baseline = section(goodput, "no_deadline_baseline");
    let shed = baseline
        .get("shed")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    assert!(
        shed > 0.0,
        "the deadline-less baseline must still shed: {baseline}"
    );
    assert!(baseline.get("deadline_ms").is_some_and(Value::is_null));
}

/// `BENCH_8.json`: the telemetry overhead record. Burst medians for the
/// three recorder postures must be present and positive, each overhead is an
/// `{raw_pct, pct, noise_pct, within_noise}` object whose headline `pct` is
/// clamped to ≥ 0 (a negative raw reading is run-to-run noise, not speedup),
/// the run's noise floor is recorded, and the per-call `point()` costs must
/// show the disabled path is cheaper than the recording path.
#[test]
fn committed_telemetry_overhead_json_is_well_formed() {
    let doc = committed_doc("BENCH_8.json");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("8"));
    let overhead = section(&doc, "telemetry_overhead");

    for key in ["off_ms", "ring_ms", "full_ms", "noise_pct"] {
        let v = overhead
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(v.is_finite() && v > 0.0, "telemetry_overhead.{key} = {v}");
    }
    let noise = overhead
        .get("noise_pct")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    for key in ["ring_overhead", "full_overhead"] {
        let reading = section(overhead, key);
        let raw = reading
            .get("raw_pct")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        let pct = reading
            .get("pct")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(raw.is_finite(), "telemetry_overhead.{key}.raw_pct = {raw}");
        assert!(
            pct.is_finite() && pct >= 0.0,
            "telemetry_overhead.{key}.pct must be a clamped headline: {pct}"
        );
        assert!(
            (pct - raw.max(0.0)).abs() < 1e-9,
            "{key}: pct != max(raw, 0)"
        );
        assert!(
            pct < 50.0,
            "telemetry_overhead.{key}.pct = {pct}: instrumentation cost blew past any noise margin"
        );
        assert_eq!(
            reading.get("noise_pct").and_then(Value::as_f64),
            Some(noise),
            "{key}: reading must carry the run's noise floor"
        );
        let within = reading
            .get("within_noise")
            .and_then(Value::as_bool)
            .unwrap_or_else(|| panic!("{key}.within_noise is a bool"));
        assert_eq!(
            within,
            raw.abs() <= noise,
            "{key}: within_noise inconsistent with raw_pct {raw} vs noise {noise}"
        );
    }
    // The targets the record documents itself against.
    assert_eq!(
        overhead
            .get("target_off_overhead_pct")
            .and_then(Value::as_f64),
        Some(2.0)
    );
    assert_eq!(
        overhead
            .get("target_full_overhead_pct")
            .and_then(Value::as_f64),
        Some(10.0)
    );

    let disabled_ns = overhead
        .get("point_disabled_ns")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    let enabled_ns = overhead
        .get("point_enabled_ns")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    assert!(disabled_ns.is_finite() && disabled_ns > 0.0);
    assert!(enabled_ns.is_finite() && enabled_ns > 0.0);
    assert!(
        disabled_ns < enabled_ns,
        "the disabled fast path ({disabled_ns} ns) must undercut recording ({enabled_ns} ns)"
    );

    let modes = overhead
        .get("modes")
        .and_then(Value::as_array)
        .expect("telemetry_overhead.modes is an array");
    assert_eq!(
        modes.iter().filter_map(Value::as_str).collect::<Vec<_>>(),
        ["off", "ring", "full"]
    );
}

/// `BENCH_9.json`: the cold-start record. Each dataset row compares the
/// parse+build+sampler-prep path against loading a prebuilt snapshot bundle
/// (graph + similarity + alias tables); the acceptance floor is a 10×
/// speedup on the SSB-scale dataset, and the record must show it.
#[test]
fn committed_cold_start_json_is_well_formed() {
    let doc = committed_doc("BENCH_9.json");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("9"));
    let cold = section(&doc, "cold_start");

    let datasets = cold
        .get("datasets")
        .and_then(Value::as_array)
        .expect("cold_start.datasets is an array");
    let mut names = Vec::new();
    for row in datasets {
        let name = row
            .get("dataset")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("row without dataset name: {row}"));
        names.push(name.to_string());
        for key in [
            "parse_ms",
            "build_ms",
            "snapshot_load_ms",
            "compressed_load_ms",
            "speedup",
            "compressed_speedup",
            "entities",
            "edges",
            "warmed_samplers",
            "tsv_bytes",
            "snapshot_bytes",
            "compressed_bytes",
        ] {
            let v = row.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            assert!(v.is_finite() && v > 0.0, "cold_start/{name}.{key} = {v}");
        }
        let build_ms = row.get("build_ms").and_then(Value::as_f64).unwrap();
        let parse_ms = row.get("parse_ms").and_then(Value::as_f64).unwrap();
        assert!(
            parse_ms < build_ms,
            "cold_start/{name}: parse is a component of build ({parse_ms} vs {build_ms})"
        );
        assert_eq!(
            row.get("target_speedup").and_then(Value::as_f64),
            Some(10.0)
        );
        if name == "ssb" {
            let speedup = row.get("speedup").and_then(Value::as_f64).unwrap();
            assert!(
                speedup >= 10.0,
                "the SSB-scale snapshot load must be ≥ 10× faster than parse+build: {speedup}"
            );
        }
    }
    assert!(
        names.contains(&"ssb".to_string()) && names.contains(&"automotive".to_string()),
        "cold_start must cover both datasets: {names:?}"
    );
}

/// `BENCH_10.json`: the distributed-execution record. `remote_rpc` holds
/// the scatter-gather round-trip medians for both wire codecs (same RPC
/// count — the codecs are answer-equivalent, so the ratio is pure wire +
/// codec cost); `write_load` holds the sustained-QPS-at-X-writes/sec
/// matrix, which must include the zero-write baseline.
#[test]
fn committed_remote_and_write_load_json_is_well_formed() {
    let doc = committed_doc("BENCH_10.json");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("10"));
    let rpc = section(&doc, "remote_rpc");
    let codecs = rpc
        .get("codecs")
        .and_then(Value::as_array)
        .expect("remote_rpc.codecs is an array");
    let mut names = Vec::new();
    let mut rpcs_seen = Vec::new();
    for row in codecs {
        let name = row
            .get("codec")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("codec row without name: {row}"));
        names.push(name.to_string());
        for key in ["queries", "shards", "rpcs", "pass_ms_median", "ms_per_rpc"] {
            let v = row.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            assert!(v.is_finite() && v > 0.0, "remote_rpc/{name}.{key} = {v}");
        }
        rpcs_seen.push(row.get("rpcs").and_then(Value::as_f64).unwrap());
    }
    assert_eq!(names, ["json", "binary"], "both codecs must be recorded");
    assert_eq!(
        rpcs_seen[0], rpcs_seen[1],
        "equivalent codecs must issue identical RPC counts"
    );
    let ratio = rpc
        .get("json_vs_binary")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    assert!(ratio.is_finite() && ratio > 0.0, "json_vs_binary = {ratio}");

    let write_load = section(&doc, "write_load");
    let matrix = write_load
        .get("matrix")
        .and_then(Value::as_array)
        .expect("write_load.matrix is an array");
    assert!(matrix.len() >= 2, "write_load needs ≥ 2 rates");
    let mut saw_baseline = false;
    for row in matrix {
        let rate = row
            .get("target_writes_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(rate.is_finite() && rate >= 0.0, "bad rate in {row}");
        let qps = row.get("qps").and_then(Value::as_f64).unwrap_or(f64::NAN);
        assert!(qps.is_finite() && qps > 0.0, "bad qps in {row}");
        if rate == 0.0 {
            saw_baseline = true;
        } else {
            let applied = row
                .get("writes_applied")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            assert!(applied > 0.0, "a nonzero rate must apply writes: {row}");
        }
    }
    assert!(
        saw_baseline,
        "write_load must include the 0-writes baseline"
    );
}
