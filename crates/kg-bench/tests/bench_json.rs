//! The committed `BENCH_5.json` at the workspace root is the
//! machine-readable perf record of this revision (thread-count ×
//! shard-count matrices, alias-vs-search draw costs, service throughput).
//! This test keeps it present and well-formed: regenerating it with
//! `cargo bench -p kg-bench --bench <name>` must always produce a file
//! this schema check accepts, and a stale/corrupt commit fails tier-1.

use serde_json::Value;
use std::path::PathBuf;

fn committed_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json")
}

fn section<'doc>(doc: &'doc Value, name: &str) -> &'doc Value {
    doc.get(name)
        .unwrap_or_else(|| panic!("BENCH_5.json is missing the {name:?} section"))
}

fn positive_qps_rows(matrix: &Value, context: &str) {
    let rows = matrix.as_array().unwrap_or_else(|| {
        panic!("{context}: matrix must be an array");
    });
    assert!(!rows.is_empty(), "{context}: matrix must not be empty");
    for row in rows {
        let qps = row.get("qps").and_then(Value::as_f64).unwrap_or(f64::NAN);
        assert!(qps.is_finite() && qps > 0.0, "{context}: bad qps in {row}");
        let threads_or_workers = row
            .get("threads")
            .or(row.get("workers"))
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        assert!(threads_or_workers >= 1.0, "{context}: bad row {row}");
    }
}

#[test]
fn committed_bench_json_is_well_formed() {
    let path = committed_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "BENCH_5.json must be committed at the workspace root ({}): {e}",
            path.display()
        )
    });
    let doc: Value = serde_json::from_str(&text).expect("BENCH_5.json parses as JSON");

    assert_eq!(doc.get("bench").and_then(Value::as_str), Some("5"));
    let host = section(&doc, "host");
    assert!(
        host.get("available_parallelism")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );

    positive_qps_rows(
        section(&doc, "batch_throughput")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "batch_throughput",
    );
    positive_qps_rows(
        section(&doc, "shard_scaling")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "shard_scaling",
    );
    positive_qps_rows(
        section(&doc, "service_throughput")
            .get("matrix")
            .unwrap_or(&Value::Null),
        "service_throughput",
    );

    let alias = section(&doc, "alias_draw");
    for key in [
        "alias_ns_per_draw",
        "binary_search_ns_per_draw",
        "ratio_alias_vs_search",
    ] {
        let v = alias.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        assert!(v.is_finite() && v > 0.0, "alias_draw.{key} = {v}");
    }
}
