//! End-to-end tests of the `kg-snap` binary: the build → verify → inspect
//! happy path, and the exit-code contract on corruption — every section
//! kind, when a single byte is flipped, must fail `verify` with a non-zero
//! exit and the failing section named on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kg_snap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_kg-snap"))
        .args(args)
        .output()
        .expect("spawn kg-snap")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kg-snap-cli-{tag}-{}.kgsnap", std::process::id()))
}

fn build_snapshot(tag: &str, extra: &[&str]) -> PathBuf {
    let path = temp_path(tag);
    let path_str = path.to_str().unwrap();
    let mut args = vec!["build", path_str, "--seed", "7", "--warm", "2"];
    args.extend_from_slice(extra);
    let out = kg_snap(&args);
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn build_verify_inspect_round_trip() {
    let path = build_snapshot("ok", &[]);
    let path_str = path.to_str().unwrap();

    let verify = kg_snap(&["verify", path_str]);
    assert!(
        verify.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let stdout = String::from_utf8_lossy(&verify.stdout);
    assert!(stdout.contains("OK"), "stdout: {stdout}");
    assert!(stdout.contains("format v1"), "stdout: {stdout}");

    let inspect = kg_snap(&["inspect", path_str]);
    assert!(inspect.status.success());
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    for section in [
        "meta",
        "entity_names",
        "csr_offsets",
        "csr_edges",
        "similarity",
        "samplers",
    ] {
        assert!(stdout.contains(section), "missing {section}: {stdout}");
    }

    std::fs::remove_file(&path).unwrap();
}

/// The regression demanded by the exit-code contract: flip one byte in the
/// middle of *each* section and assert `verify` exits non-zero naming that
/// very section on stderr.
#[test]
fn verify_names_the_corrupted_section() {
    let path = build_snapshot("flip", &[]);
    let bytes = std::fs::read(&path).unwrap();
    let snap = kg_core::snapshot::Snapshot::from_bytes(bytes.clone()).unwrap();
    let sections: Vec<(String, u64, u64)> = snap
        .sections()
        .iter()
        .map(|s| (s.name().to_string(), s.offset, s.len))
        .collect();
    assert!(sections.len() >= 10, "expected a full bundle: {sections:?}");

    for (name, offset, len) in sections {
        let mut corrupt = bytes.clone();
        let target = (offset + len / 2) as usize;
        corrupt[target] ^= 0x01;
        let corrupt_path = temp_path(&format!("flip-{name}"));
        std::fs::write(&corrupt_path, &corrupt).unwrap();
        let out = kg_snap(&["verify", corrupt_path.to_str().unwrap()]);
        std::fs::remove_file(&corrupt_path).unwrap();
        assert!(
            !out.status.success(),
            "corrupted {name} still verified cleanly"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&name),
            "stderr does not name section {name}: {stderr}"
        );
    }

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn verify_rejects_header_corruption_and_truncation() {
    let path = build_snapshot("hdr", &[]);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // Bad magic.
    let mut corrupt = bytes.clone();
    corrupt[0] ^= 0xFF;
    let p = temp_path("bad-magic");
    std::fs::write(&p, &corrupt).unwrap();
    let out = kg_snap(&["verify", p.to_str().unwrap()]);
    std::fs::remove_file(&p).unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("header"));

    // Truncated to half.
    let p = temp_path("truncated");
    std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
    let out = kg_snap(&["verify", p.to_str().unwrap()]);
    std::fs::remove_file(&p).unwrap();
    assert!(!out.status.success());

    // Version skew: bump the version field and re-checksum the header so
    // only the skew itself is the failure.
    let mut skewed = bytes.clone();
    skewed[8..12].copy_from_slice(&2u32.to_le_bytes());
    let crc = kg_core::snapshot::crc64(&skewed[..48]);
    skewed[48..56].copy_from_slice(&crc.to_le_bytes());
    let p = temp_path("skewed");
    std::fs::write(&p, &skewed).unwrap();
    let out = kg_snap(&["verify", p.to_str().unwrap()]);
    std::fs::remove_file(&p).unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rebuild"), "stderr: {stderr}");
}

#[test]
fn compressed_build_verifies_and_reports_flag() {
    let path = build_snapshot("gz", &["--compress"]);
    let path_str = path.to_str().unwrap();
    let verify = kg_snap(&["verify", path_str]);
    assert!(
        verify.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let inspect = kg_snap(&["inspect", path_str]);
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(stdout.contains("compressed_csr=true"), "stdout: {stdout}");
    assert!(stdout.contains("csr_edges_varint"), "stdout: {stdout}");
    std::fs::remove_file(&path).unwrap();
}
