//! `kg-snap`: build, inspect and verify binary knowledge-graph snapshots.
//!
//! ```text
//! kg-snap build OUT.kgsnap [--profile dbpedia|freebase|yago] [--seed 42]
//!                          [--compress] [--warm N]
//! kg-snap inspect PATH
//! kg-snap verify PATH
//! ```
//!
//! `build` generates a synthetic dataset (the same profiles `kg-serve` and
//! `kg-load` agree on), optionally pre-prepares up to `--warm N` simple-query
//! samplers over the generated workload, and writes the full bundle — graph
//! sections, predicate-similarity store and prepared alias tables — to
//! `OUT.kgsnap` atomically.
//!
//! `inspect` prints the header and section table of a snapshot without
//! decoding the graph (it still validates checksums: a corrupt file is
//! reported, not inspected).
//!
//! `verify` runs the full validation chain — container (magic, header CRC,
//! version, table of contents, per-section CRCs), structural decode of every
//! section, a deep CSR recheck (the stored adjacency must equal a fresh
//! rebuild from the stored triples), and the similarity/sampler sections if
//! present. Exit code 0 means every check passed; any failure exits
//! non-zero with the failing section named on stderr.

use kg_core::snapshot::{verify_graph_sections, Snapshot, SnapshotOptions};
use kg_core::KgError;
use kg_datagen::{build_workload, generate, profiles, DatasetScale, WorkloadConfig};
use kg_query::QuerySpec;
use kg_sampling::{bundle_from_snapshot, write_bundle, SamplerCache, SamplerConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ! {
    eprintln!(
        "usage: kg-snap build OUT.kgsnap [--profile dbpedia|freebase|yago] \
         [--seed N] [--compress] [--warm N]\n       kg-snap inspect PATH\n       \
         kg-snap verify PATH"
    );
    std::process::exit(2);
}

/// Renders a snapshot error with its failing section up front — the
/// contract the CI smoke job and the corruption regression tests grep for.
fn report(context: &str, e: &KgError) -> ! {
    match e {
        KgError::Snapshot { section, message } => {
            eprintln!("kg-snap {context}: section {section}: {message}");
        }
        other => eprintln!("kg-snap {context}: {other}"),
    }
    std::process::exit(1);
}

fn cmd_build(args: &[String]) {
    let Some(out) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let profile: String = parse_flag(args, "--profile", "dbpedia".to_string());
    let seed: u64 = parse_flag(args, "--seed", 42);
    let compress = args.iter().any(|a| a == "--compress");
    let warm: usize = parse_flag(args, "--warm", 0);

    let config = match profile.as_str() {
        "dbpedia" => profiles::dbpedia_like(DatasetScale::tiny(), seed),
        "freebase" => profiles::freebase_like(DatasetScale::tiny(), seed),
        "yago" => profiles::yago_like(DatasetScale::tiny(), seed),
        other => {
            eprintln!("kg-snap build: unknown profile {other:?} (want dbpedia|freebase|yago)");
            std::process::exit(2);
        }
    };
    eprintln!("kg-snap build: generating {profile} dataset (tiny scale, seed {seed})…");
    let dataset = generate(&config);

    // Pre-prepare samplers for the first `--warm` distinct simple-query
    // components of the standard workload, so a snapshot boot starts with
    // the alias tables those queries draw from already built.
    let samplers = SamplerCache::new(
        kg_sampling::SamplingStrategy::SemanticAware,
        SamplerConfig::default(),
    );
    if warm > 0 {
        let workload = build_workload(&dataset, &WorkloadConfig::default());
        for wq in &workload {
            if samplers.len() >= warm {
                break;
            }
            let QuerySpec::Simple(simple) = &wq.query.query else {
                continue;
            };
            let Ok(resolved) = simple.resolve(&dataset.graph) else {
                continue;
            };
            if let Err(e) = samplers.get_or_prepare(&dataset.graph, &resolved, &dataset.oracle) {
                eprintln!("kg-snap build: skipping {}: {e}", wq.id);
            }
        }
        eprintln!("kg-snap build: warmed {} sampler(s)", samplers.len());
    }

    let options = SnapshotOptions {
        compress_csr: compress,
    };
    if let Err(e) = write_bundle(
        out,
        &dataset.graph,
        &options,
        Some(&dataset.oracle),
        Some(&samplers),
    ) {
        report("build", &e);
    }
    let len = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "kg-snap build: wrote {out} ({len} bytes, {} entities, {} triples, \
         {} sampler(s), compressed_csr={compress})",
        dataset.graph.entity_count(),
        dataset.graph.triples().len(),
        samplers.len(),
    );
}

fn cmd_inspect(path: &str) {
    let snap = match Snapshot::open(path) {
        Ok(snap) => snap,
        Err(e) => report("inspect", &e),
    };
    println!(
        "{path}: format v{} flags {:#x} compressed_csr={}",
        snap.version(),
        snap.flags(),
        snap.compressed_csr()
    );
    println!(
        "{:<16} {:>10} {:>10} {:>18}",
        "section", "offset", "len", "crc64"
    );
    for s in snap.sections() {
        println!(
            "{:<16} {:>10} {:>10} {:>18x}",
            s.name(),
            s.offset,
            s.len,
            s.checksum
        );
    }
}

fn cmd_verify(path: &str) {
    // Container validation (magic, header CRC, version, TOC, section CRCs)
    // happens in `open`; the rest is structural.
    let snap = match Snapshot::open(path) {
        Ok(snap) => snap,
        Err(e) => report("verify", &e),
    };
    if let Err(e) = verify_graph_sections(&snap) {
        report("verify", &e);
    }
    // Full bundle decode: similarity and sampler sections included.
    if let Err(e) = bundle_from_snapshot(&snap) {
        report("verify", &e);
    }
    println!(
        "kg-snap verify: {path} OK (format v{}, {} section(s))",
        snap.version(),
        snap.sections().len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    match args.get(1).map(String::as_str) {
        Some("build") => cmd_build(&args[2..]),
        Some("inspect") => match args.get(2) {
            Some(path) => cmd_inspect(path),
            None => usage(),
        },
        Some("verify") => match args.get(2) {
            Some(path) => cmd_verify(path),
            None => usage(),
        },
        _ => usage(),
    }
}
