//! Range filters on numerical attributes (Definition 6).

use kg_core::{AttrId, EntityId, KgError, KgResult, KnowledgeGraph};
use serde::{Deserialize, Serialize};

/// A filter `L ≤ b ≤ U` on attribute `b` of each answer (Definition 6).
/// Either bound may be open.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// Attribute name, e.g. `fuel_economy`.
    pub attribute: String,
    /// Lower bound `L` (inclusive), if any.
    pub lower: Option<f64>,
    /// Upper bound `U` (inclusive), if any.
    pub upper: Option<f64>,
}

impl Filter {
    /// A two-sided range filter.
    pub fn range(attribute: &str, lower: f64, upper: f64) -> Self {
        Self {
            attribute: attribute.to_string(),
            lower: Some(lower),
            upper: Some(upper),
        }
    }

    /// `attribute ≥ lower`.
    pub fn at_least(attribute: &str, lower: f64) -> Self {
        Self {
            attribute: attribute.to_string(),
            lower: Some(lower),
            upper: None,
        }
    }

    /// `attribute ≤ upper`.
    pub fn at_most(attribute: &str, upper: f64) -> Self {
        Self {
            attribute: attribute.to_string(),
            lower: None,
            upper: Some(upper),
        }
    }

    /// Resolves the attribute name against a graph.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedFilter> {
        let attr = graph
            .attr_id(&self.attribute)
            .ok_or_else(|| KgError::UnknownAttribute(self.attribute.clone()))?;
        Ok(ResolvedFilter {
            attribute: attr,
            lower: self.lower,
            upper: self.upper,
        })
    }
}

/// A [`Filter`] with the attribute resolved to an id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResolvedFilter {
    /// Attribute to test.
    pub attribute: AttrId,
    /// Lower bound (inclusive), if any.
    pub lower: Option<f64>,
    /// Upper bound (inclusive), if any.
    pub upper: Option<f64>,
}

impl ResolvedFilter {
    /// True when `entity` satisfies the filter. Entities missing the
    /// attribute fail the filter (the paper's correctness indicator
    /// `c(u) = (L ≤ u.b ≤ U && s_i ≥ τ)` requires the attribute).
    pub fn matches(&self, graph: &KnowledgeGraph, entity: EntityId) -> bool {
        match graph.attribute_value(entity, self.attribute) {
            None => false,
            Some(v) => self.lower.map_or(true, |l| v >= l) && self.upper.map_or(true, |u| v <= u),
        }
    }
}

/// Applies a conjunction of filters.
pub fn matches_all(graph: &KnowledgeGraph, entity: EntityId, filters: &[ResolvedFilter]) -> bool {
    filters.iter().all(|f| f.matches(graph, entity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_entity("car_a", &["Automobile"]);
        let c = b.add_entity("car_b", &["Automobile"]);
        let d = b.add_entity("car_c", &["Automobile"]);
        b.set_attribute(a, "mpg", 27.0);
        b.set_attribute(c, "mpg", 35.0);
        // car_c has no mpg attribute at all.
        b.set_attribute(d, "price", 10_000.0);
        b.build()
    }

    #[test]
    fn range_filter_matches() {
        let g = graph();
        let f = Filter::range("mpg", 25.0, 30.0).resolve(&g).unwrap();
        let a = g.entity_by_name("car_a").unwrap();
        let b = g.entity_by_name("car_b").unwrap();
        let c = g.entity_by_name("car_c").unwrap();
        assert!(f.matches(&g, a));
        assert!(!f.matches(&g, b));
        assert!(!f.matches(&g, c), "missing attribute fails the filter");
    }

    #[test]
    fn open_bounds() {
        let g = graph();
        let a = g.entity_by_name("car_a").unwrap();
        let b = g.entity_by_name("car_b").unwrap();
        assert!(Filter::at_least("mpg", 30.0)
            .resolve(&g)
            .unwrap()
            .matches(&g, b));
        assert!(!Filter::at_least("mpg", 30.0)
            .resolve(&g)
            .unwrap()
            .matches(&g, a));
        assert!(Filter::at_most("mpg", 30.0)
            .resolve(&g)
            .unwrap()
            .matches(&g, a));
    }

    #[test]
    fn unknown_attribute_fails_resolution() {
        let g = graph();
        assert!(Filter::range("weight", 0.0, 1.0).resolve(&g).is_err());
    }

    #[test]
    fn conjunction_of_filters() {
        let g = graph();
        let a = g.entity_by_name("car_a").unwrap();
        let filters = vec![
            Filter::at_least("mpg", 20.0).resolve(&g).unwrap(),
            Filter::at_most("mpg", 28.0).resolve(&g).unwrap(),
        ];
        assert!(matches_all(&g, a, &filters));
        let b = g.entity_by_name("car_b").unwrap();
        assert!(!matches_all(&g, b, &filters));
        assert!(matches_all(&g, b, &[]));
    }
}
