//! Complex query shapes: chain, star, cycle, flower (§V-B).
//!
//! The paper supports complex shapes via a *decomposition–assembly* framework:
//! a complex query is decomposed into simple and chain-shaped components that
//! share the same target node; each component is answered independently and
//! the answer sets are intersected. This module only models the query
//! structure — execution lives in the engine crate.

use crate::query_graph::{QueryNode, ResolvedSimpleQuery, SimpleQuery};
use kg_core::{EntityId, KgError, KgResult, KnowledgeGraph, PredicateId, TypeId};
use serde::{Deserialize, Serialize};

/// The query-graph shapes studied in the paper (Figure 4 and reference \[17\]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryShape {
    /// One specific node, one edge, one target node.
    Simple,
    /// A multi-hop path from the specific node to the target node.
    Chain,
    /// Several components sharing the target node.
    Star,
    /// Components forming a cycle through the target node.
    Cycle,
    /// Star with at least one chain petal ("flower").
    Flower,
}

impl QueryShape {
    /// All shapes in the order used by the paper's tables.
    pub fn all() -> [QueryShape; 5] {
        [
            QueryShape::Simple,
            QueryShape::Chain,
            QueryShape::Star,
            QueryShape::Cycle,
            QueryShape::Flower,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryShape::Simple => "Simple",
            QueryShape::Chain => "Chain",
            QueryShape::Star => "Star",
            QueryShape::Cycle => "Cycle",
            QueryShape::Flower => "Flower",
        }
    }
}

impl std::fmt::Display for QueryShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One hop of a chain query: a predicate and the types of the node it leads
/// to. Only the types of intermediate nodes are known (Definition of `AQ_C`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainHop {
    /// Predicate of this hop.
    pub predicate: String,
    /// Types of the node reached by this hop.
    pub node_types: Vec<String>,
}

impl ChainHop {
    /// Creates a hop.
    pub fn new(predicate: &str, node_types: &[&str]) -> Self {
        Self {
            predicate: predicate.to_string(),
            node_types: node_types.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A chain-shaped query `AQ_C`: a multi-hop path from a specific node to the
/// target node, e.g. *"How many cars are designed by German designers?"*
/// (Germany → designer:Person → design:Automobile).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainQuery {
    /// The specific node (name and types known).
    pub specific: QueryNode,
    /// The hops from the specific node; the last hop reaches the target node.
    pub hops: Vec<ChainHop>,
}

impl ChainQuery {
    /// Creates a chain query.
    pub fn new(specific_name: &str, specific_types: &[&str], hops: Vec<ChainHop>) -> Self {
        Self {
            specific: QueryNode::specific(specific_name, specific_types),
            hops,
        }
    }

    /// The target node's types (types of the last hop).
    pub fn target_types(&self) -> &[String] {
        self.hops
            .last()
            .map(|h| h.node_types.as_slice())
            .unwrap_or(&[])
    }

    /// Resolves against a graph.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedChainQuery> {
        if self.hops.is_empty() {
            return Err(KgError::UnknownPredicate("<empty chain>".into()));
        }
        let name = self
            .specific
            .name
            .as_deref()
            .ok_or_else(|| KgError::UnknownEntity("<specific node without name>".into()))?;
        let specific = graph.require_entity(name)?;
        let mut hops = Vec::with_capacity(self.hops.len());
        for hop in &self.hops {
            let predicate = graph
                .predicate_id(&hop.predicate)
                .ok_or_else(|| KgError::UnknownPredicate(hop.predicate.clone()))?;
            let node_types: Vec<TypeId> = hop
                .node_types
                .iter()
                .filter_map(|t| graph.type_id(t))
                .collect();
            if node_types.is_empty() {
                return Err(KgError::UnknownType(hop.node_types.join(",")));
            }
            hops.push(ResolvedChainHop {
                predicate,
                node_types,
            });
        }
        Ok(ResolvedChainQuery { specific, hops })
    }
}

/// A resolved hop of a chain query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedChainHop {
    /// Predicate of this hop.
    pub predicate: PredicateId,
    /// Types of the node reached by this hop.
    pub node_types: Vec<TypeId>,
}

/// A resolved chain query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedChainQuery {
    /// Mapping node of the specific node.
    pub specific: EntityId,
    /// Resolved hops.
    pub hops: Vec<ResolvedChainHop>,
}

impl ResolvedChainQuery {
    /// The target types (last hop's node types).
    pub fn target_types(&self) -> &[TypeId] {
        self.hops
            .last()
            .map(|h| h.node_types.as_slice())
            .unwrap_or(&[])
    }

    /// Views the `i`-th hop as a simple query anchored at `anchor` — the
    /// engine answers chains by cascading simple queries (§V-B step 2).
    pub fn hop_as_simple(&self, i: usize, anchor: EntityId) -> ResolvedSimpleQuery {
        let hop = &self.hops[i];
        ResolvedSimpleQuery {
            specific: anchor,
            predicate: hop.predicate,
            target_types: hop.node_types.clone(),
        }
    }
}

/// One component of a complex query: a simple query or a chain, sharing the
/// common target node with the other components.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryComponent {
    /// A single-edge component.
    Simple(SimpleQuery),
    /// A multi-hop component.
    Chain(ChainQuery),
}

impl QueryComponent {
    /// The target types of this component.
    pub fn target_types(&self) -> Vec<String> {
        match self {
            QueryComponent::Simple(q) => q.target.types.clone(),
            QueryComponent::Chain(q) => q.target_types().to_vec(),
        }
    }

    /// Resolves against a graph.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedComponent> {
        match self {
            QueryComponent::Simple(q) => Ok(ResolvedComponent::Simple(q.resolve(graph)?)),
            QueryComponent::Chain(q) => Ok(ResolvedComponent::Chain(q.resolve(graph)?)),
        }
    }
}

/// A resolved component of a complex query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolvedComponent {
    /// Resolved simple component.
    Simple(ResolvedSimpleQuery),
    /// Resolved chain component.
    Chain(ResolvedChainQuery),
}

impl ResolvedComponent {
    /// The target types of this component.
    pub fn target_types(&self) -> &[TypeId] {
        match self {
            ResolvedComponent::Simple(q) => &q.target_types,
            ResolvedComponent::Chain(q) => q.target_types(),
        }
    }

    /// The specific (anchor) entity of this component.
    pub fn specific(&self) -> EntityId {
        match self {
            ResolvedComponent::Simple(q) => q.specific,
            ResolvedComponent::Chain(q) => q.specific,
        }
    }
}

/// A complex query: several components that share the target node, assembled
/// by intersecting their answer sets (decomposition–assembly, §V-B).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplexQuery {
    /// Declared shape (affects reporting only; execution is shape-agnostic).
    pub shape: QueryShape,
    /// The decomposed components.
    pub components: Vec<QueryComponent>,
}

impl ComplexQuery {
    /// A chain query (single chain component).
    pub fn chain(chain: ChainQuery) -> Self {
        Self {
            shape: QueryShape::Chain,
            components: vec![QueryComponent::Chain(chain)],
        }
    }

    /// A star query from several simple components sharing the target type.
    pub fn star(components: Vec<SimpleQuery>) -> Self {
        Self {
            shape: QueryShape::Star,
            components: components.into_iter().map(QueryComponent::Simple).collect(),
        }
    }

    /// A cycle query: like a star but the specific entities are themselves
    /// connected; execution-wise it is decomposed the same way.
    pub fn cycle(components: Vec<QueryComponent>) -> Self {
        Self {
            shape: QueryShape::Cycle,
            components,
        }
    }

    /// A flower query: a mix of simple and chain petals.
    pub fn flower(components: Vec<QueryComponent>) -> Self {
        Self {
            shape: QueryShape::Flower,
            components,
        }
    }

    /// Resolves all components.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedComplexQuery> {
        if self.components.is_empty() {
            return Err(KgError::UnknownPredicate("<empty complex query>".into()));
        }
        let components = self
            .components
            .iter()
            .map(|c| c.resolve(graph))
            .collect::<KgResult<Vec<_>>>()?;
        Ok(ResolvedComplexQuery {
            shape: self.shape,
            components,
        })
    }
}

/// A resolved complex query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedComplexQuery {
    /// Declared shape.
    pub shape: QueryShape,
    /// Resolved components.
    pub components: Vec<ResolvedComponent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let cn = b.add_entity("China", &["Country"]);
        let person = b.add_entity("Peter_Schreyer", &["Person"]);
        let car = b.add_entity("KIA_K5", &["Automobile"]);
        b.add_edge(person, "nationality", de);
        b.add_edge(car, "designer", person);
        b.add_edge(cn, "product", car);
        b.build()
    }

    #[test]
    fn chain_query_resolution() {
        let g = graph();
        let chain = ChainQuery::new(
            "Germany",
            &["Country"],
            vec![
                ChainHop::new("nationality", &["Person"]),
                ChainHop::new("designer", &["Automobile"]),
            ],
        );
        assert_eq!(chain.target_types(), &["Automobile".to_string()]);
        let r = chain.resolve(&g).unwrap();
        assert_eq!(r.hops.len(), 2);
        assert_eq!(r.specific, g.entity_by_name("Germany").unwrap());
        assert_eq!(r.target_types(), &[g.type_id("Automobile").unwrap()]);
        let anchor = g.entity_by_name("Peter_Schreyer").unwrap();
        let simple = r.hop_as_simple(1, anchor);
        assert_eq!(simple.specific, anchor);
        assert_eq!(simple.predicate, g.predicate_id("designer").unwrap());
    }

    #[test]
    fn empty_chain_fails() {
        let g = graph();
        let chain = ChainQuery::new("Germany", &["Country"], vec![]);
        assert!(chain.resolve(&g).is_err());
        let chain = ChainQuery::new(
            "Germany",
            &["Country"],
            vec![ChainHop::new("unknown_pred", &["Person"])],
        );
        assert!(chain.resolve(&g).is_err());
    }

    #[test]
    fn star_query_decomposition() {
        let g = graph();
        let star = ComplexQuery::star(vec![
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            SimpleQuery::new("China", &["Country"], "product", &["Automobile"]),
        ]);
        assert_eq!(star.shape, QueryShape::Star);
        let r = star.resolve(&g).unwrap();
        assert_eq!(r.components.len(), 2);
        assert_eq!(
            r.components[0].target_types(),
            &[g.type_id("Automobile").unwrap()]
        );
        assert_eq!(
            r.components[1].specific(),
            g.entity_by_name("China").unwrap()
        );
    }

    #[test]
    fn flower_mixes_components() {
        let g = graph();
        let flower = ComplexQuery::flower(vec![
            QueryComponent::Simple(SimpleQuery::new(
                "China",
                &["Country"],
                "product",
                &["Automobile"],
            )),
            QueryComponent::Chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("nationality", &["Person"]),
                    ChainHop::new("designer", &["Automobile"]),
                ],
            )),
        ]);
        assert_eq!(flower.shape, QueryShape::Flower);
        assert_eq!(flower.components[1].target_types(), vec!["Automobile"]);
        assert!(flower.resolve(&g).is_ok());
        assert!(ComplexQuery::cycle(vec![]).resolve(&g).is_err());
    }

    #[test]
    fn shape_metadata() {
        assert_eq!(QueryShape::all().len(), 5);
        assert_eq!(QueryShape::Flower.to_string(), "Flower");
        assert_eq!(QueryShape::Simple.name(), "Simple");
    }
}
