//! The query graph of a simple question (Definition 3).

use kg_core::{EntityId, KgError, KgResult, KnowledgeGraph, PredicateId, TypeId};
use serde::{Deserialize, Serialize};

/// A query node: either the *specific* node (name and types known) or the
/// *target* node (only types known).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryNode {
    /// Entity name; `None` for the target node.
    pub name: Option<String>,
    /// Type names the node must carry (at least one must match).
    pub types: Vec<String>,
}

impl QueryNode {
    /// A specific node with known name and types, e.g. `Germany : Country`.
    pub fn specific(name: impl Into<String>, types: &[&str]) -> Self {
        Self {
            name: Some(name.into()),
            types: types.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A target node with known types only, e.g. `? : Automobile`.
    pub fn target(types: &[&str]) -> Self {
        Self {
            name: None,
            types: types.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A simple question's query graph: one specific node `q_s`, one target node
/// `q_t` and a single query edge with a predicate (Definition 3).
///
/// Example (the paper's running example): *"what is the average price of
/// cars produced in Germany?"* has `q_s = Germany : Country`,
/// `q_t = ? : Automobile` and predicate `product`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimpleQuery {
    /// The specific node `q_s`.
    pub specific: QueryNode,
    /// The target node `q_t`.
    pub target: QueryNode,
    /// The query-edge predicate `L_Q(e)`.
    pub predicate: String,
}

impl SimpleQuery {
    /// Convenience constructor.
    pub fn new(
        specific_name: &str,
        specific_types: &[&str],
        predicate: &str,
        target_types: &[&str],
    ) -> Self {
        Self {
            specific: QueryNode::specific(specific_name, specific_types),
            target: QueryNode::target(target_types),
            predicate: predicate.to_string(),
        }
    }

    /// Resolves names against a concrete knowledge graph.
    ///
    /// The specific node maps to the unique entity `u_s` with the same name
    /// and an overlapping type set; the predicate and target types map to
    /// their ids. Unknown target-type names are dropped (a query may mention
    /// a type absent from the graph); resolution fails only when *no* target
    /// type or the specific entity or the predicate cannot be resolved.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedSimpleQuery> {
        let name = self
            .specific
            .name
            .as_deref()
            .ok_or_else(|| KgError::UnknownEntity("<specific node without name>".into()))?;
        let specific = graph.require_entity(name)?;
        if !self.specific.types.is_empty() {
            let wanted: Vec<TypeId> = self
                .specific
                .types
                .iter()
                .filter_map(|t| graph.type_id(t))
                .collect();
            if !wanted.is_empty() && !graph.entity(specific).shares_type(&wanted) {
                return Err(KgError::UnknownEntity(format!(
                    "{name} exists but carries none of the requested types"
                )));
            }
        }
        let predicate = graph
            .predicate_id(&self.predicate)
            .ok_or_else(|| KgError::UnknownPredicate(self.predicate.clone()))?;
        let target_types: Vec<TypeId> = self
            .target
            .types
            .iter()
            .filter_map(|t| graph.type_id(t))
            .collect();
        if target_types.is_empty() {
            return Err(KgError::UnknownType(self.target.types.join(",")));
        }
        Ok(ResolvedSimpleQuery {
            specific,
            predicate,
            target_types,
        })
    }
}

/// A [`SimpleQuery`] with all names resolved to graph identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedSimpleQuery {
    /// The mapping node `u_s` of the specific node `q_s`.
    pub specific: EntityId,
    /// The query-edge predicate.
    pub predicate: PredicateId,
    /// Resolved target types (a candidate answer must share at least one).
    pub target_types: Vec<TypeId>,
}

impl ResolvedSimpleQuery {
    /// True when `entity` satisfies the target-type condition of Definition 4.
    pub fn is_candidate(&self, graph: &KnowledgeGraph, entity: EntityId) -> bool {
        entity != self.specific && graph.entity(entity).shares_type(&self.target_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile"]);
        b.add_edge(de, "product", bmw);
        b.build()
    }

    #[test]
    fn resolve_happy_path() {
        let g = graph();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]);
        let r = q.resolve(&g).unwrap();
        assert_eq!(r.specific, g.entity_by_name("Germany").unwrap());
        assert_eq!(r.predicate, g.predicate_id("product").unwrap());
        assert_eq!(r.target_types, vec![g.type_id("Automobile").unwrap()]);
        let bmw = g.entity_by_name("BMW_320").unwrap();
        assert!(r.is_candidate(&g, bmw));
        assert!(!r.is_candidate(&g, r.specific));
    }

    #[test]
    fn resolve_unknown_entity_or_predicate_fails() {
        let g = graph();
        let q = SimpleQuery::new("France", &["Country"], "product", &["Automobile"]);
        assert!(q.resolve(&g).is_err());
        let q = SimpleQuery::new("Germany", &["Country"], "madeIn", &["Automobile"]);
        assert!(q.resolve(&g).is_err());
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Starship"]);
        assert!(q.resolve(&g).is_err());
    }

    #[test]
    fn resolve_checks_specific_type_overlap() {
        let g = graph();
        let q = SimpleQuery::new("Germany", &["Automobile"], "product", &["Automobile"]);
        assert!(q.resolve(&g).is_err());
        // Unknown specific types are ignored as long as one is absent from the graph entirely.
        let q = SimpleQuery::new("Germany", &["NotAType"], "product", &["Automobile"]);
        assert!(q.resolve(&g).is_ok());
    }

    #[test]
    fn query_node_constructors() {
        let s = QueryNode::specific("Germany", &["Country"]);
        assert_eq!(s.name.as_deref(), Some("Germany"));
        let t = QueryNode::target(&["Automobile"]);
        assert!(t.name.is_none());
        assert_eq!(t.types, vec!["Automobile".to_string()]);
    }
}
