//! JSON wire format for query specifications.
//!
//! The service layer ships queries between processes as JSON. This module
//! gives every query type an explicit, *pinned* encoding — the field names
//! and enum tagging mirror exactly what `serde`'s derive would emit
//! (externally-tagged enums, struct field names verbatim), so swapping the
//! offline serde shim for the real crate cannot change the structure of
//! the wire format. One caveat is numbers: the shim stores every number as
//! `f64` and renders whole values without a fractional part (`1000`),
//! while real `serde_json` renders an `f64`-sourced number as `1000.0` —
//! structurally identical JSON, different text. The pinned-string tests
//! below will flag that rendering shift on swap-back.
//!
//! Encoding goes through [`serde_json::Value`]; objects are key-sorted maps,
//! so the compact rendering of a value is canonical *within one process*:
//! two structurally equal queries always serialise to the same string.
//! The service's result cache keys on that string
//! ([`AggregateQuery::canonical_key`]) — safe, because the cache is
//! in-memory and never outlives the process that wrote it.
//!
//! ```
//! use kg_query::{AggregateFunction, AggregateQuery, SimpleQuery};
//!
//! let q = AggregateQuery::simple(
//!     SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
//!     AggregateFunction::Count,
//! );
//! let round_tripped = AggregateQuery::from_json(&q.to_json()).unwrap();
//! assert_eq!(q, round_tripped);
//! ```

use crate::aggregate::{AggregateFunction, AggregateQuery, GroupBy, QuerySpec};
use crate::filter::Filter;
use crate::query_graph::{QueryNode, SimpleQuery};
use crate::shapes::{ChainHop, ChainQuery, ComplexQuery, QueryComponent, QueryShape};
use serde_json::{Map, Value};
use std::fmt;

/// A malformed wire value: what was expected and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path from the document root to the offending value.
    pub path: String,
    /// What the decoder expected there.
    pub expected: String,
}

impl WireError {
    /// An error at `path` where `expected` was required.
    pub fn new(path: &str, expected: impl Into<String>) -> Self {
        Self {
            path: path.to_string(),
            expected: expected.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: expected {}", self.path, self.expected)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Decoding helpers — public so every wire module in the workspace
// (kg-aqp's result encoding, the service request types) shares one set of
// accessors and one error-path format.
// ---------------------------------------------------------------------

/// Looks up `field` of an object, erroring with the dotted path.
pub fn get_field<'a>(value: &'a Value, path: &str, field: &str) -> Result<&'a Value, WireError> {
    value
        .get(field)
        .ok_or_else(|| WireError::new(&format!("{path}.{field}"), "a value"))
}

/// Decodes a string, erroring with `path`.
pub fn as_str(value: &Value, path: &str) -> Result<String, WireError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::new(path, "a string"))
}

/// Decodes a number, erroring with `path`.
pub fn as_f64(value: &Value, path: &str) -> Result<f64, WireError> {
    value
        .as_f64()
        .ok_or_else(|| WireError::new(path, "a number"))
}

/// Decodes a non-negative integer, erroring with `path`.
pub fn as_usize(value: &Value, path: &str) -> Result<usize, WireError> {
    value
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| WireError::new(path, "a non-negative integer"))
}

/// Decodes a boolean, erroring with `path`.
pub fn as_bool(value: &Value, path: &str) -> Result<bool, WireError> {
    value
        .as_bool()
        .ok_or_else(|| WireError::new(path, "a boolean"))
}

/// Borrows an array, erroring with `path`.
pub fn as_array<'a>(value: &'a Value, path: &str) -> Result<&'a Vec<Value>, WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::new(path, "an array"))
}

fn string_vec(value: &Value, path: &str) -> Result<Vec<String>, WireError> {
    as_array(value, path)?
        .iter()
        .enumerate()
        .map(|(i, v)| as_str(v, &format!("{path}[{i}]")))
        .collect()
}

fn strings(items: &[String]) -> Value {
    Value::Array(items.iter().cloned().map(Value::String).collect())
}

/// Decodes an externally-tagged enum: `{"Variant": payload}` must be a
/// one-entry object; returns the tag and payload.
fn variant<'a>(value: &'a Value, path: &str) -> Result<(&'a str, &'a Value), WireError> {
    let map = value
        .as_object()
        .filter(|m| m.len() == 1)
        .ok_or_else(|| WireError::new(path, "a single-variant object"))?;
    let (tag, payload) = map.iter().next().expect("len checked above");
    Ok((tag.as_str(), payload))
}

fn tagged(tag: &str, payload: Value) -> Value {
    let mut map = Map::new();
    map.insert(tag.to_string(), payload);
    Value::Object(map)
}

/// Builds a JSON object from `(field, value)` pairs.
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Per-type encodings
// ---------------------------------------------------------------------

impl QueryNode {
    /// Encodes as `{"name": <string|null>, "types": [..]}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            (
                "name",
                match &self.name {
                    Some(n) => Value::String(n.clone()),
                    None => Value::Null,
                },
            ),
            ("types", strings(&self.types)),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        Self::decode(value, "node")
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        let name = match get_field(value, path, "name")? {
            Value::Null => None,
            v => Some(as_str(v, &format!("{path}.name"))?),
        };
        let types = string_vec(get_field(value, path, "types")?, &format!("{path}.types"))?;
        Ok(Self { name, types })
    }
}

impl SimpleQuery {
    /// Encodes as `{"specific": node, "target": node, "predicate": <string>}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("specific", self.specific.to_json()),
            ("target", self.target.to_json()),
            ("predicate", Value::String(self.predicate.clone())),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        Self::decode(value, "simple")
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        Ok(Self {
            specific: QueryNode::decode(
                get_field(value, path, "specific")?,
                &format!("{path}.specific"),
            )?,
            target: QueryNode::decode(
                get_field(value, path, "target")?,
                &format!("{path}.target"),
            )?,
            predicate: as_str(
                get_field(value, path, "predicate")?,
                &format!("{path}.predicate"),
            )?,
        })
    }
}

impl ChainHop {
    /// Encodes as `{"predicate": <string>, "node_types": [..]}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("predicate", Value::String(self.predicate.clone())),
            ("node_types", strings(&self.node_types)),
        ])
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        Ok(Self {
            predicate: as_str(
                get_field(value, path, "predicate")?,
                &format!("{path}.predicate"),
            )?,
            node_types: string_vec(
                get_field(value, path, "node_types")?,
                &format!("{path}.node_types"),
            )?,
        })
    }
}

impl ChainQuery {
    /// Encodes as `{"specific": node, "hops": [hop, ..]}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("specific", self.specific.to_json()),
            (
                "hops",
                Value::Array(self.hops.iter().map(ChainHop::to_json).collect()),
            ),
        ])
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        let hops = as_array(get_field(value, path, "hops")?, &format!("{path}.hops"))?
            .iter()
            .enumerate()
            .map(|(i, v)| ChainHop::decode(v, &format!("{path}.hops[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            specific: QueryNode::decode(
                get_field(value, path, "specific")?,
                &format!("{path}.specific"),
            )?,
            hops,
        })
    }
}

impl QueryShape {
    /// Encodes as the bare variant name, e.g. `"Star"`.
    pub fn to_json(&self) -> Value {
        Value::String(self.name().to_string())
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        let text = as_str(value, path)?;
        QueryShape::all()
            .into_iter()
            .find(|s| s.name() == text)
            .ok_or_else(|| WireError::new(path, "one of Simple|Chain|Star|Cycle|Flower"))
    }
}

impl QueryComponent {
    /// Encodes externally tagged: `{"Simple": ..}` or `{"Chain": ..}`.
    pub fn to_json(&self) -> Value {
        match self {
            QueryComponent::Simple(q) => tagged("Simple", q.to_json()),
            QueryComponent::Chain(q) => tagged("Chain", q.to_json()),
        }
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        match variant(value, path)? {
            ("Simple", payload) => Ok(QueryComponent::Simple(SimpleQuery::decode(
                payload,
                &format!("{path}.Simple"),
            )?)),
            ("Chain", payload) => Ok(QueryComponent::Chain(ChainQuery::decode(
                payload,
                &format!("{path}.Chain"),
            )?)),
            _ => Err(WireError::new(path, "variant Simple or Chain")),
        }
    }
}

impl ComplexQuery {
    /// Encodes as `{"shape": <shape>, "components": [component, ..]}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("shape", self.shape.to_json()),
            (
                "components",
                Value::Array(
                    self.components
                        .iter()
                        .map(QueryComponent::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        let components = as_array(
            get_field(value, path, "components")?,
            &format!("{path}.components"),
        )?
        .iter()
        .enumerate()
        .map(|(i, v)| QueryComponent::decode(v, &format!("{path}.components[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shape: QueryShape::decode(get_field(value, path, "shape")?, &format!("{path}.shape"))?,
            components,
        })
    }
}

impl AggregateFunction {
    /// Encodes externally tagged: `"Count"` for the unit variant,
    /// `{"Sum": "price"}` and friends for the attribute variants.
    pub fn to_json(&self) -> Value {
        match self {
            AggregateFunction::Count => Value::String("Count".to_string()),
            AggregateFunction::Sum(a) => tagged("Sum", Value::String(a.clone())),
            AggregateFunction::Avg(a) => tagged("Avg", Value::String(a.clone())),
            AggregateFunction::Max(a) => tagged("Max", Value::String(a.clone())),
            AggregateFunction::Min(a) => tagged("Min", Value::String(a.clone())),
        }
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        if value.as_str() == Some("Count") {
            return Ok(AggregateFunction::Count);
        }
        let (tag, payload) = variant(value, path)?;
        let attribute = as_str(payload, &format!("{path}.{tag}"))?;
        match tag {
            "Sum" => Ok(AggregateFunction::Sum(attribute)),
            "Avg" => Ok(AggregateFunction::Avg(attribute)),
            "Max" => Ok(AggregateFunction::Max(attribute)),
            "Min" => Ok(AggregateFunction::Min(attribute)),
            _ => Err(WireError::new(path, "variant Count|Sum|Avg|Max|Min")),
        }
    }
}

impl Filter {
    /// Encodes as `{"attribute": <string>, "lower": <num|null>, "upper": <num|null>}`.
    pub fn to_json(&self) -> Value {
        let bound = |b: Option<f64>| b.map(Value::Number).unwrap_or(Value::Null);
        object(vec![
            ("attribute", Value::String(self.attribute.clone())),
            ("lower", bound(self.lower)),
            ("upper", bound(self.upper)),
        ])
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        let bound = |field: &str| -> Result<Option<f64>, WireError> {
            match get_field(value, path, field)? {
                Value::Null => Ok(None),
                v => Ok(Some(as_f64(v, &format!("{path}.{field}"))?)),
            }
        };
        Ok(Self {
            attribute: as_str(
                get_field(value, path, "attribute")?,
                &format!("{path}.attribute"),
            )?,
            lower: bound("lower")?,
            upper: bound("upper")?,
        })
    }
}

impl GroupBy {
    /// Encodes as `{"attribute": <string>, "bucket_width": <number>}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("attribute", Value::String(self.attribute.clone())),
            ("bucket_width", Value::Number(self.bucket_width)),
        ])
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        Ok(Self {
            attribute: as_str(
                get_field(value, path, "attribute")?,
                &format!("{path}.attribute"),
            )?,
            bucket_width: as_f64(
                get_field(value, path, "bucket_width")?,
                &format!("{path}.bucket_width"),
            )?,
        })
    }
}

impl QuerySpec {
    /// Encodes externally tagged: `{"Simple": ..}` or `{"Complex": ..}`.
    pub fn to_json(&self) -> Value {
        match self {
            QuerySpec::Simple(q) => tagged("Simple", q.to_json()),
            QuerySpec::Complex(q) => tagged("Complex", q.to_json()),
        }
    }

    fn decode(value: &Value, path: &str) -> Result<Self, WireError> {
        match variant(value, path)? {
            ("Simple", payload) => Ok(QuerySpec::Simple(SimpleQuery::decode(
                payload,
                &format!("{path}.Simple"),
            )?)),
            ("Complex", payload) => Ok(QuerySpec::Complex(ComplexQuery::decode(
                payload,
                &format!("{path}.Complex"),
            )?)),
            _ => Err(WireError::new(path, "variant Simple or Complex")),
        }
    }
}

impl AggregateQuery {
    /// Encodes as `{"query": spec, "function": fn, "filters": [..], "group_by": <gb|null>}`.
    pub fn to_json(&self) -> Value {
        object(vec![
            ("query", self.query.to_json()),
            ("function", self.function.to_json()),
            (
                "filters",
                Value::Array(self.filters.iter().map(Filter::to_json).collect()),
            ),
            (
                "group_by",
                match &self.group_by {
                    Some(gb) => gb.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Decodes the [`Self::to_json`] encoding.
    pub fn from_json(value: &Value) -> Result<Self, WireError> {
        let path = "query";
        let filters = as_array(
            get_field(value, path, "filters")?,
            &format!("{path}.filters"),
        )?
        .iter()
        .enumerate()
        .map(|(i, v)| Filter::decode(v, &format!("{path}.filters[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
        let group_by = match get_field(value, path, "group_by")? {
            Value::Null => None,
            v => Some(GroupBy::decode(v, &format!("{path}.group_by"))?),
        };
        Ok(Self {
            query: QuerySpec::decode(get_field(value, path, "query")?, &format!("{path}.query"))?,
            function: AggregateFunction::decode(
                get_field(value, path, "function")?,
                &format!("{path}.function"),
            )?,
            filters,
            group_by,
        })
    }

    /// The canonical wire rendering of this query: compact JSON with
    /// key-sorted objects. Structurally equal queries produce equal strings,
    /// so this is the result-cache key of the service layer.
    pub fn canonical_key(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("shim serialiser is total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complex_query() -> AggregateQuery {
        AggregateQuery::complex(
            ComplexQuery::flower(vec![
                QueryComponent::Simple(SimpleQuery::new(
                    "China",
                    &["Country"],
                    "product",
                    &["Automobile"],
                )),
                QueryComponent::Chain(ChainQuery::new(
                    "Germany",
                    &["Country"],
                    vec![
                        ChainHop::new("country", &["Company"]),
                        ChainHop::new("manufacturer", &["Automobile"]),
                    ],
                )),
            ]),
            AggregateFunction::Avg("price".into()),
        )
        .with_filter(Filter::at_least("price", 10_000.0))
        .with_group_by(GroupBy::new("price", 25_000.0))
    }

    #[test]
    fn simple_query_round_trips() {
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        assert_eq!(AggregateQuery::from_json(&q.to_json()).unwrap(), q);
    }

    #[test]
    fn complex_query_round_trips() {
        let q = complex_query();
        assert_eq!(AggregateQuery::from_json(&q.to_json()).unwrap(), q);
    }

    #[test]
    fn all_aggregate_functions_round_trip() {
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum("a".into()),
            AggregateFunction::Avg("b".into()),
            AggregateFunction::Max("c".into()),
            AggregateFunction::Min("d".into()),
        ] {
            let text = serde_json::to_string(&f.to_json()).unwrap();
            let back: Value = serde_json::from_str(&text).unwrap();
            assert_eq!(AggregateFunction::decode(&back, "f").unwrap(), f);
        }
    }

    /// The wire format is a contract: field names and enum tags are pinned
    /// to the exact rendering `serde`'s derive would produce, so this test
    /// asserts the full canonical string for a representative query.
    #[test]
    fn field_names_are_pinned() {
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Sum("price".into()),
        )
        .with_filter(Filter::range("price", 1_000.0, 2_000.0));
        assert_eq!(
            q.canonical_key(),
            concat!(
                r#"{"filters":[{"attribute":"price","lower":1000,"upper":2000}],"#,
                r#""function":{"Sum":"price"},"group_by":null,"#,
                r#""query":{"Simple":{"predicate":"product","#,
                r#""specific":{"name":"Germany","types":["Country"]},"#,
                r#""target":{"name":null,"types":["Automobile"]}}}}"#
            )
        );
    }

    #[test]
    fn canonical_key_is_stable_across_clones_and_round_trips() {
        let q = complex_query();
        let round_tripped = AggregateQuery::from_json(&q.to_json()).unwrap();
        assert_eq!(q.canonical_key(), round_tripped.canonical_key());
        // A structurally different query gets a different key.
        let other = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        assert_ne!(q.canonical_key(), other.canonical_key());
    }

    #[test]
    fn malformed_wire_values_decode_to_errors_with_paths() {
        // Not an object at all.
        assert!(AggregateQuery::from_json(&Value::Number(3.0)).is_err());
        // Missing fields name the path of the first absent field.
        let mut map = Map::new();
        map.insert("query".to_string(), Value::Null);
        let err = AggregateQuery::from_json(&Value::Object(map)).unwrap_err();
        assert_eq!(err.path, "query.filters", "{err}");
        // Unknown enum tag.
        let bad = tagged("Median", Value::String("price".into()));
        let err = AggregateFunction::decode(&bad, "f").unwrap_err();
        assert!(err.to_string().contains("Count|Sum|Avg|Max|Min"), "{err}");
        // Wrong payload type deep inside a chain.
        let mut q = complex_query().to_json();
        if let Value::Object(top) = &mut q {
            let spec = top.get_mut("query").unwrap();
            if let Value::Object(spec) = spec {
                let complex = spec.get_mut("Complex").unwrap();
                if let Value::Object(complex) = complex {
                    complex.insert("shape".to_string(), Value::String("Pentagon".into()));
                }
            }
        }
        let err = AggregateQuery::from_json(&q).unwrap_err();
        assert!(err.path.contains("shape"), "{err}");
    }
}
