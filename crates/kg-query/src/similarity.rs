//! Semantic similarity of a path / subgraph match to a query edge (Eq. 2).

use kg_core::{Path, PredicateId};
use kg_embed::PredicateSimilarity;

/// How the per-edge predicate similarities along a path are aggregated into
/// the path's semantic similarity.
///
/// The paper uses the **geometric mean** (Eq. 2), following its reference
/// \[13\], but notes that the method only requires the aggregate to be monotone
/// in the per-edge similarities. `Min` and `Product` are provided for the
/// ablation called out in DESIGN.md.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PathAggregation {
    /// Geometric mean of the edge similarities (the paper's Eq. 2).
    #[default]
    GeometricMean,
    /// Minimum edge similarity (bottleneck semantics).
    Min,
    /// Product of edge similarities (penalises long paths heavily).
    Product,
}

impl PathAggregation {
    /// Aggregates a non-empty list of per-edge similarities into `[0, 1]`.
    pub fn aggregate(self, sims: &[f64]) -> f64 {
        if sims.is_empty() {
            return 0.0;
        }
        match self {
            PathAggregation::GeometricMean => {
                let product: f64 = sims.iter().product();
                if product <= 0.0 {
                    0.0
                } else {
                    product.powf(1.0 / sims.len() as f64)
                }
            }
            PathAggregation::Min => sims.iter().copied().fold(f64::INFINITY, f64::min),
            PathAggregation::Product => sims.iter().product(),
        }
    }
}

/// Semantic similarity `s[M(u)]` of a path to the query edge predicate
/// (Eq. 2): the aggregation of `sim(L_G(e'), L_Q(e))` over the edges `e'` of
/// the path. A zero-length path has similarity 0 (it contains no match of the
/// query edge).
pub fn path_similarity<S: PredicateSimilarity + ?Sized>(
    path: &Path,
    query_predicate: PredicateId,
    similarity: &S,
    aggregation: PathAggregation,
) -> f64 {
    if path.is_empty() {
        return 0.0;
    }
    let sims: Vec<f64> = path
        .predicates()
        .map(|p| similarity.similarity(p, query_predicate).clamp(0.0, 1.0))
        .collect();
    aggregation.aggregate(&sims)
}

/// Similarity computed over an explicit list of edge predicates rather than a
/// [`Path`] (used by the samplers, which track predicates but not nodes).
pub fn predicates_similarity<S: PredicateSimilarity + ?Sized>(
    predicates: &[PredicateId],
    query_predicate: PredicateId,
    similarity: &S,
    aggregation: PathAggregation,
) -> f64 {
    if predicates.is_empty() {
        return 0.0;
    }
    let sims: Vec<f64> = predicates
        .iter()
        .map(|p| similarity.similarity(*p, query_predicate).clamp(0.0, 1.0))
        .collect();
    aggregation.aggregate(&sims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::EntityId;
    use kg_embed::{oracle::oracle_store, PredicateVectorStore};

    fn p(i: u32) -> PredicateId {
        PredicateId::new(i)
    }

    fn store() -> PredicateVectorStore {
        // p0 = product (query), p1 = assembly (0.98), p2 = country (0.81),
        // p3 = designer (0.60), p4 = ground (unrelated).
        oracle_store(&[
            (p(0), 0, 1.0),
            (p(1), 0, 0.98),
            (p(2), 0, 0.81),
            (p(3), 0, 0.60),
            (p(4), 1, 1.0),
        ])
    }

    fn path(predicates: &[u32]) -> Path {
        let mut path = Path::trivial(EntityId::new(0));
        for (i, &pr) in predicates.iter().enumerate() {
            path = path.extended(p(pr), EntityId::new(i as u32 + 1));
        }
        path
    }

    #[test]
    fn example_3_geometric_mean() {
        // Paper's Example 3: Audi_TT via assembly (0.98) and country (0.81)
        // has similarity sqrt(0.98 * 0.81) ≈ 0.89.
        let s = store();
        let sim = path_similarity(&path(&[1, 2]), p(0), &s, PathAggregation::GeometricMean);
        let expected = (s.similarity(p(1), p(0)) * s.similarity(p(2), p(0))).sqrt();
        assert!((sim - expected).abs() < 1e-9);
        assert!(sim > 0.8 && sim < 1.0);
    }

    #[test]
    fn direct_edge_with_identical_predicate_has_similarity_one() {
        let s = store();
        let sim = path_similarity(&path(&[0]), p(0), &s, PathAggregation::GeometricMean);
        assert!((sim - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_has_zero_similarity() {
        let s = store();
        let trivial = Path::trivial(EntityId::new(0));
        assert_eq!(
            path_similarity(&trivial, p(0), &s, PathAggregation::GeometricMean),
            0.0
        );
        assert_eq!(
            predicates_similarity(&[], p(0), &s, PathAggregation::Min),
            0.0
        );
    }

    #[test]
    fn longer_semantic_path_can_beat_shorter_unrelated_path() {
        // The paper's remark: a longer path of highly-similar predicates can
        // be more similar than a shorter path with an unrelated predicate.
        let s = store();
        let long_good =
            path_similarity(&path(&[1, 2, 1]), p(0), &s, PathAggregation::GeometricMean);
        let short_bad = path_similarity(&path(&[4]), p(0), &s, PathAggregation::GeometricMean);
        assert!(long_good > short_bad);
    }

    #[test]
    fn aggregation_variants_are_ordered() {
        let sims = [0.9, 0.6, 0.8];
        let geo = PathAggregation::GeometricMean.aggregate(&sims);
        let min = PathAggregation::Min.aggregate(&sims);
        let prod = PathAggregation::Product.aggregate(&sims);
        assert!(prod <= min && min <= geo, "{prod} <= {min} <= {geo}");
        assert_eq!(PathAggregation::Min.aggregate(&[]), 0.0);
        assert_eq!(PathAggregation::GeometricMean.aggregate(&[0.0, 0.5]), 0.0);
    }

    #[test]
    fn monotone_in_edge_similarity() {
        let s = store();
        // Replacing an edge by a more similar one never decreases similarity.
        for agg in [
            PathAggregation::GeometricMean,
            PathAggregation::Min,
            PathAggregation::Product,
        ] {
            let lower = predicates_similarity(&[p(3), p(2)], p(0), &s, agg);
            let higher = predicates_similarity(&[p(1), p(2)], p(0), &s, agg);
            assert!(higher >= lower, "{agg:?}");
        }
    }
}
