//! Aggregate functions, GROUP-BY and the full aggregate-query description
//! (Definition 2 and §V-A).

use crate::filter::{Filter, ResolvedFilter};
use crate::query_graph::{QueryNode, SimpleQuery};
use crate::shapes::ComplexQuery;
use kg_core::{AttrId, EntityId, KgError, KgResult, KnowledgeGraph};
use serde::{Deserialize, Serialize};

/// The aggregate function `f_a` of a query (Definition 2).
///
/// COUNT, SUM and AVG are the non-extreme aggregates with accuracy
/// guarantees; MAX and MIN are supported on a best-effort basis (§VII,
/// Table XI) without a confidence interval.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateFunction {
    /// `COUNT(*)` over the correct answers.
    Count,
    /// `SUM(attribute)` over the correct answers.
    Sum(String),
    /// `AVG(attribute)` over the correct answers.
    Avg(String),
    /// `MAX(attribute)` — extreme function, no accuracy guarantee.
    Max(String),
    /// `MIN(attribute)` — extreme function, no accuracy guarantee.
    Min(String),
}

impl AggregateFunction {
    /// The attribute this aggregate reads, if any (COUNT reads none).
    pub fn attribute(&self) -> Option<&str> {
        match self {
            AggregateFunction::Count => None,
            AggregateFunction::Sum(a)
            | AggregateFunction::Avg(a)
            | AggregateFunction::Max(a)
            | AggregateFunction::Min(a) => Some(a),
        }
    }

    /// True for COUNT / SUM / AVG (the estimators with accuracy guarantees).
    pub fn has_accuracy_guarantee(&self) -> bool {
        !matches!(self, AggregateFunction::Max(_) | AggregateFunction::Min(_))
    }

    /// Short name for reports ("COUNT", "SUM", …).
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum(_) => "SUM",
            AggregateFunction::Avg(_) => "AVG",
            AggregateFunction::Max(_) => "MAX",
            AggregateFunction::Min(_) => "MIN",
        }
    }

    /// Resolves the attribute against a graph.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<ResolvedAggregate> {
        let attr = match self.attribute() {
            None => None,
            Some(name) => Some(
                graph
                    .attr_id(name)
                    .ok_or_else(|| KgError::UnknownAttribute(name.to_string()))?,
            ),
        };
        Ok(ResolvedAggregate {
            function: self.clone(),
            attribute: attr,
        })
    }
}

/// An [`AggregateFunction`] with its attribute resolved.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedAggregate {
    /// The original aggregate description.
    pub function: AggregateFunction,
    /// Resolved attribute id (None for COUNT).
    pub attribute: Option<AttrId>,
}

impl ResolvedAggregate {
    /// Value contributed by one answer entity: 1.0 for COUNT, the attribute
    /// value otherwise. Answers missing the attribute contribute `None` and
    /// are skipped by exact evaluation and by the estimators alike.
    pub fn value_of(&self, graph: &KnowledgeGraph, entity: EntityId) -> Option<f64> {
        match self.attribute {
            None => Some(1.0),
            Some(attr) => graph.attribute_value(entity, attr),
        }
    }

    /// Applies the aggregate exactly over a set of answers (used by SSB, the
    /// baselines, and ground-truth computation). Returns 0.0 for an empty
    /// input on COUNT/SUM and `None`-like 0.0 for AVG/MAX/MIN (the paper's
    /// queries always have non-empty answers).
    pub fn apply_exact(&self, graph: &KnowledgeGraph, answers: &[EntityId]) -> f64 {
        let values: Vec<f64> = answers
            .iter()
            .filter_map(|&a| self.value_of(graph, a))
            .collect();
        match self.function {
            AggregateFunction::Count => values.len() as f64,
            AggregateFunction::Sum(_) => values.iter().sum(),
            AggregateFunction::Avg(_) => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            AggregateFunction::Max(_) => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateFunction::Min(_) => values.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// GROUP-BY specification (§V-A): answers are grouped by bucketing a
/// numerical attribute of the target entity (e.g. age groups of width 5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupBy {
    /// Attribute whose value determines the group.
    pub attribute: String,
    /// Bucket width; a value `v` belongs to bucket `floor(v / width)`.
    pub bucket_width: f64,
}

impl GroupBy {
    /// Creates a GROUP-BY over `attribute` with buckets of `bucket_width`.
    pub fn new(attribute: &str, bucket_width: f64) -> Self {
        Self {
            attribute: attribute.to_string(),
            bucket_width,
        }
    }

    /// Resolves the attribute, returning `(attr, width)`.
    pub fn resolve(&self, graph: &KnowledgeGraph) -> KgResult<(AttrId, f64)> {
        let attr = graph
            .attr_id(&self.attribute)
            .ok_or_else(|| KgError::UnknownAttribute(self.attribute.clone()))?;
        Ok((attr, self.bucket_width.max(f64::MIN_POSITIVE)))
    }

    /// The bucket index of a value.
    pub fn bucket_of(&self, value: f64) -> i64 {
        (value / self.bucket_width).floor() as i64
    }
}

/// The query-graph part of an aggregate query: a simple question or a complex
/// shape (§V-B).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QuerySpec {
    /// A single-edge simple question (Definition 3).
    Simple(SimpleQuery),
    /// A chain / star / cycle / flower query (§V-B).
    Complex(ComplexQuery),
}

/// The full aggregate query `AQ_G = (Q, f_a)` plus optional filters and
/// GROUP-BY (Definitions 2 and 6, §V-A).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateQuery {
    /// The query graph.
    pub query: QuerySpec,
    /// The aggregate function.
    pub function: AggregateFunction,
    /// Conjunctive range filters on answer attributes.
    pub filters: Vec<Filter>,
    /// Optional GROUP-BY.
    pub group_by: Option<GroupBy>,
}

impl AggregateQuery {
    /// An aggregate query over a simple question, without filters/GROUP-BY.
    pub fn simple(query: SimpleQuery, function: AggregateFunction) -> Self {
        Self {
            query: QuerySpec::Simple(query),
            function,
            filters: Vec::new(),
            group_by: None,
        }
    }

    /// An aggregate query over a complex shape.
    pub fn complex(query: ComplexQuery, function: AggregateFunction) -> Self {
        Self {
            query: QuerySpec::Complex(query),
            function,
            filters: Vec::new(),
            group_by: None,
        }
    }

    /// Adds a filter (builder style).
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Sets the GROUP-BY (builder style).
    pub fn with_group_by(mut self, group_by: GroupBy) -> Self {
        self.group_by = Some(group_by);
        self
    }

    /// Resolves the filters against a graph.
    pub fn resolve_filters(&self, graph: &KnowledgeGraph) -> KgResult<Vec<ResolvedFilter>> {
        self.filters.iter().map(|f| f.resolve(graph)).collect()
    }

    /// The name-level footprint of this query: every entity name, predicate
    /// name and type name its query graph mentions. A write whose own
    /// footprint shares no name on any axis cannot change which subgraph
    /// the query anchors on — the overlap test component-scoped cache
    /// invalidation is built on (see [`QueryFootprint`]).
    pub fn footprint(&self) -> QueryFootprint {
        let mut fp = QueryFootprint::default();
        match &self.query {
            QuerySpec::Simple(s) => fp.add_simple(s),
            QuerySpec::Complex(c) => {
                for component in &c.components {
                    match component {
                        crate::shapes::QueryComponent::Simple(s) => fp.add_simple(s),
                        crate::shapes::QueryComponent::Chain(chain) => {
                            fp.add_node(&chain.specific);
                            for hop in &chain.hops {
                                fp.predicates.push(hop.predicate.clone());
                                fp.types.extend(hop.node_types.iter().cloned());
                            }
                        }
                    }
                }
            }
        }
        fp.normalise();
        fp
    }
}

/// The set of names a query (or a write) touches, one sorted-deduplicated
/// axis per id space: entity names, predicate names, type names.
///
/// Footprints drive **component-scoped cache invalidation**: a cached
/// answer or prepared sampler only has to die when a write's footprint
/// [`intersects`](Self::intersects) the query's. Names rather than ids keep
/// the comparison valid across graph snapshots — a write may intern new
/// names whose ids the cached query's graph never saw.
///
/// The test is deliberately conservative in one direction only (a shared
/// name forces eviction even when the write turns out to be harmless) and
/// relies on the graph being component-disjoint in the other: a write
/// *inside* the n-bounded scope of a query that mentions none of its names
/// can still shift that query's walk, so callers that require strict
/// never-stale semantics must keep unrelated workloads on disconnected
/// components (see ARCHITECTURE.md, "Mutability & epochs").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryFootprint {
    /// Entity names, sorted and deduplicated.
    pub entities: Vec<String>,
    /// Predicate names, sorted and deduplicated.
    pub predicates: Vec<String>,
    /// Type names, sorted and deduplicated.
    pub types: Vec<String>,
}

impl QueryFootprint {
    /// Builds a footprint from raw name lists, normalising each axis.
    pub fn new(entities: Vec<String>, predicates: Vec<String>, types: Vec<String>) -> Self {
        let mut fp = Self {
            entities,
            predicates,
            types,
        };
        fp.normalise();
        fp
    }

    /// True when the two footprints share at least one name on any axis.
    pub fn intersects(&self, other: &Self) -> bool {
        fn overlap(a: &[String], b: &[String]) -> bool {
            // Both sides are sorted; walk the shorter, probe the longer.
            let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            small.iter().any(|x| large.binary_search(x).is_ok())
        }
        overlap(&self.entities, &other.entities)
            || overlap(&self.predicates, &other.predicates)
            || overlap(&self.types, &other.types)
    }

    /// True when no axis holds any name (such a footprint intersects
    /// nothing).
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.predicates.is_empty() && self.types.is_empty()
    }

    fn add_node(&mut self, node: &QueryNode) {
        if let Some(name) = &node.name {
            self.entities.push(name.clone());
        }
        self.types.extend(node.types.iter().cloned());
    }

    fn add_simple(&mut self, query: &SimpleQuery) {
        self.add_node(&query.specific);
        self.add_node(&query.target);
        self.predicates.push(query.predicate.clone());
    }

    fn normalise(&mut self) {
        for axis in [&mut self.entities, &mut self.predicates, &mut self.types] {
            axis.sort_unstable();
            axis.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        for (i, price) in [40_000.0, 60_000.0, 80_000.0].iter().enumerate() {
            let car = b.add_entity(&format!("car{i}"), &["Automobile"]);
            b.set_attribute(car, "price", *price);
            b.add_edge(de, "product", car);
        }
        b.build()
    }

    fn cars(g: &KnowledgeGraph) -> Vec<EntityId> {
        (0..3)
            .map(|i| g.entity_by_name(&format!("car{i}")).unwrap())
            .collect()
    }

    #[test]
    fn exact_aggregates() {
        let g = graph();
        let answers = cars(&g);
        let count = AggregateFunction::Count.resolve(&g).unwrap();
        assert_eq!(count.apply_exact(&g, &answers), 3.0);
        let sum = AggregateFunction::Sum("price".into()).resolve(&g).unwrap();
        assert_eq!(sum.apply_exact(&g, &answers), 180_000.0);
        let avg = AggregateFunction::Avg("price".into()).resolve(&g).unwrap();
        assert_eq!(avg.apply_exact(&g, &answers), 60_000.0);
        let max = AggregateFunction::Max("price".into()).resolve(&g).unwrap();
        assert_eq!(max.apply_exact(&g, &answers), 80_000.0);
        let min = AggregateFunction::Min("price".into()).resolve(&g).unwrap();
        assert_eq!(min.apply_exact(&g, &answers), 40_000.0);
    }

    #[test]
    fn missing_attribute_entities_are_skipped() {
        let g = graph();
        let mut answers = cars(&g);
        answers.push(g.entity_by_name("Germany").unwrap()); // no price attribute
        let avg = AggregateFunction::Avg("price".into()).resolve(&g).unwrap();
        assert_eq!(avg.apply_exact(&g, &answers), 60_000.0);
        let count = AggregateFunction::Count.resolve(&g).unwrap();
        assert_eq!(
            count.apply_exact(&g, &answers),
            4.0,
            "COUNT ignores attributes"
        );
    }

    #[test]
    fn aggregate_metadata() {
        assert!(AggregateFunction::Count.has_accuracy_guarantee());
        assert!(!AggregateFunction::Max("x".into()).has_accuracy_guarantee());
        assert_eq!(AggregateFunction::Avg("price".into()).name(), "AVG");
        assert_eq!(
            AggregateFunction::Sum("price".into()).attribute(),
            Some("price")
        );
        assert!(AggregateFunction::Count.attribute().is_none());
        let g = graph();
        assert!(AggregateFunction::Sum("weight".into()).resolve(&g).is_err());
    }

    #[test]
    fn group_by_bucketing() {
        let gb = GroupBy::new("age", 5.0);
        assert_eq!(gb.bucket_of(23.0), 4);
        assert_eq!(gb.bucket_of(25.0), 5);
        assert_eq!(gb.bucket_of(4.9), 0);
        let g = graph();
        assert!(gb.resolve(&g).is_err());
        let gb_price = GroupBy::new("price", 50_000.0);
        let (attr, width) = gb_price.resolve(&g).unwrap();
        assert_eq!(g.attr_name(attr), "price");
        assert_eq!(width, 50_000.0);
    }

    #[test]
    fn footprints_collect_names_and_detect_overlap() {
        use crate::shapes::{ChainHop, ChainQuery, ComplexQuery};

        let simple = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let fp = simple.footprint();
        assert_eq!(fp.entities, vec!["Germany".to_string()]);
        assert_eq!(fp.predicates, vec!["product".to_string()]);
        assert_eq!(
            fp.types,
            vec!["Automobile".to_string(), "Country".to_string()]
        );
        assert!(!fp.is_empty());

        let chain = AggregateQuery::complex(
            ComplexQuery::chain(ChainQuery::new(
                "Germany",
                &["Country"],
                vec![
                    ChainHop::new("product", &["Automobile"]),
                    ChainHop::new("made_of", &["Material"]),
                ],
            )),
            AggregateFunction::Count,
        );
        let chain_fp = chain.footprint();
        assert_eq!(
            chain_fp.predicates,
            vec!["made_of".to_string(), "product".to_string()]
        );
        assert!(fp.intersects(&chain_fp), "shared predicate and entity");

        // Disjoint on all three axes: no intersection either way.
        let other = AggregateQuery::simple(
            SimpleQuery::new("Japan", &["Island"], "builds", &["Ship"]),
            AggregateFunction::Count,
        )
        .footprint();
        assert!(!fp.intersects(&other));
        assert!(!other.intersects(&fp));

        // A write footprint touching only one type name still intersects.
        let write = QueryFootprint::new(vec![], vec![], vec!["Automobile".into()]);
        assert!(write.intersects(&fp));
        assert!(!QueryFootprint::default().intersects(&fp));
    }

    #[test]
    fn builder_style_query() {
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Avg("price".into()),
        )
        .with_filter(Filter::range("price", 0.0, 70_000.0))
        .with_group_by(GroupBy::new("price", 50_000.0));
        assert_eq!(q.filters.len(), 1);
        assert!(q.group_by.is_some());
        let g = graph();
        assert_eq!(q.resolve_filters(&g).unwrap().len(), 1);
        match q.query {
            QuerySpec::Simple(ref s) => assert_eq!(s.predicate, "product"),
            _ => panic!("expected simple query"),
        }
    }
}
