//! GraB-style structural-similarity matching.

use super::FactoidEngine;
use crate::query_graph::ResolvedSimpleQuery;
use kg_core::{bounded_subgraph, EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;

/// GraB ranks matches by *structural* similarity — effectively path length —
/// without consulting predicate semantics. We keep its behavioural core:
/// every target-typed entity within `distance_threshold` hops of the mapping
/// node is an answer, regardless of what the connecting predicates mean.
///
/// The result over-approximates on dense neighbourhoods (semantically
/// unrelated entities that happen to be close) and under-approximates
/// semantically similar answers that are further away — both error sources
/// the paper attributes to structure-only methods.
#[derive(Debug, Clone)]
pub struct StructuralEngine {
    /// Maximum hop distance for an entity to count as an answer.
    pub distance_threshold: u32,
}

impl Default for StructuralEngine {
    fn default() -> Self {
        Self {
            distance_threshold: 2,
        }
    }
}

impl FactoidEngine for StructuralEngine {
    fn name(&self) -> &'static str {
        "Structural"
    }

    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        _similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId> {
        let scope = bounded_subgraph(graph, query.specific, self.distance_threshold);
        scope
            .sorted_nodes()
            .into_iter()
            .filter(|&n| query.is_candidate(graph, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    #[test]
    fn distance_decides_membership_not_semantics() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let near_unrelated = b.add_entity("museum_piece", &["Automobile"]);
        let far_related = b.add_entity("Audi_TT", &["Automobile"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let hq = b.add_entity("Wolfsburg", &["City"]);
        b.add_edge(near_unrelated, "exhibitedAt", de);
        b.add_edge(de, "product", vw); // keeps `product` in the vocabulary; vw is not target-typed
        b.add_edge(vw, "country", de);
        b.add_edge(vw, "headquarter", hq);
        b.add_edge(far_related, "assembly", hq); // 3 hops away from Germany
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[(g.predicate_id("product").unwrap(), 0, 1.0)]);
        let engine = StructuralEngine::default();
        let answers = engine.simple_answers(&g, &q, &store);
        assert!(answers.contains(&g.entity_by_name("museum_piece").unwrap()));
        assert!(!answers.contains(&g.entity_by_name("Audi_TT").unwrap()));
        assert_eq!(engine.name(), "Structural");

        // A larger threshold recovers the far answer.
        let wide = StructuralEngine {
            distance_threshold: 3,
        };
        assert!(wide
            .simple_answers(&g, &q, &store)
            .contains(&g.entity_by_name("Audi_TT").unwrap()));
    }
}
