//! EAQ-style candidate collection via link prediction.

use super::FactoidEngine;
use crate::query_graph::ResolvedSimpleQuery;
use kg_core::{bounded_subgraph, EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;

/// EAQ (Li et al., ICDE 2020) collects candidate entities through *link
/// prediction*: entities predicted to stand in the query relation with the
/// specific entity, whether or not a literal edge exists. We reproduce the two
/// behavioural consequences the paper highlights:
///
/// * no edge-to-path mapping — answers connected only through multi-hop
///   schema-flexible paths are missed;
/// * prediction noise — some direct neighbours whose relation is only loosely
///   similar to the query predicate are (incorrectly) accepted.
///
/// Concretely, an answer is a target-typed entity directly adjacent to the
/// mapping node whose edge-predicate similarity to the query predicate
/// exceeds `acceptance_threshold`, plus a deterministic pseudo-random subset
/// of 2-hop target-typed entities modelling predicted (hallucinated) links.
/// EAQ supports only simple queries (§VI).
#[derive(Debug, Clone)]
pub struct LinkPredictionEngine {
    /// Minimum predicate similarity for a direct edge to be accepted.
    pub acceptance_threshold: f64,
    /// Fraction of 2-hop candidates admitted as predicted links.
    pub predicted_link_rate: f64,
}

impl Default for LinkPredictionEngine {
    fn default() -> Self {
        Self {
            acceptance_threshold: 0.5,
            predicted_link_rate: 0.15,
        }
    }
}

/// Cheap deterministic hash in `[0, 1)` used to decide which far candidates
/// the "link predictor" hallucinates; keeping it deterministic makes the
/// comparator reproducible across runs.
fn pseudo_uniform(entity: EntityId, anchor: EntityId) -> f64 {
    let mut x = (u64::from(entity.raw()) << 32) ^ u64::from(anchor.raw()) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64) / (u64::MAX as f64)
}

impl FactoidEngine for LinkPredictionEngine {
    fn name(&self) -> &'static str {
        "LinkPrediction"
    }

    fn supports_complex(&self) -> bool {
        false
    }

    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId> {
        let mut answers = Vec::new();
        // Direct edges: accept when the predicted relation is plausible.
        for edge in graph.neighbors(query.specific) {
            if !query.is_candidate(graph, edge.neighbor) {
                continue;
            }
            if similarity.similarity(edge.predicate, query.predicate) >= self.acceptance_threshold {
                answers.push(edge.neighbor);
            }
        }
        // Predicted links among 2-hop candidates (no path semantics).
        let scope = bounded_subgraph(graph, query.specific, 2);
        for node in scope.sorted_nodes() {
            if scope.distance(node) == Some(2)
                && query.is_candidate(graph, node)
                && pseudo_uniform(node, query.specific) < self.predicted_link_rate
            {
                answers.push(node);
            }
        }
        answers.sort_unstable();
        answers.dedup();
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    #[test]
    fn direct_neighbours_filtered_by_predicted_similarity() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let good = b.add_entity("good", &["Automobile"]);
        let weak = b.add_entity("weak", &["Automobile"]);
        b.add_edge(de, "product", good);
        b.add_edge(weak, "exhibitedAt", de);
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("exhibitedAt").unwrap(), 0, 0.3),
        ]);
        let engine = LinkPredictionEngine::default();
        let answers = engine.simple_answers(&g, &q, &store);
        assert!(answers.contains(&g.entity_by_name("good").unwrap()));
        assert!(!answers.contains(&g.entity_by_name("weak").unwrap()));
        assert!(!engine.supports_complex());
        assert_eq!(engine.name(), "LinkPrediction");
    }

    #[test]
    fn two_hop_answers_are_admitted_pseudo_randomly() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        b.add_edge(de, "product", vw); // keeps `product` in the vocabulary; vw is not target-typed
        b.add_edge(vw, "country", de);
        for i in 0..200 {
            let c = b.add_entity(&format!("car{i}"), &["Automobile"]);
            b.add_edge(c, "assembly", vw);
        }
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("country").unwrap(), 0, 0.8),
            (g.predicate_id("assembly").unwrap(), 0, 0.95),
        ]);
        let engine = LinkPredictionEngine::default();
        let answers = engine.simple_answers(&g, &q, &store);
        // Roughly predicted_link_rate of the 200 two-hop cars get admitted;
        // far fewer than a semantics-aware method would find.
        assert!(!answers.is_empty());
        assert!(answers.len() < 80, "admitted {}", answers.len());
        // Determinism.
        assert_eq!(answers, engine.simple_answers(&g, &q, &store));
        assert!(pseudo_uniform(EntityId::new(1), EntityId::new(2)) < 1.0);
    }
}
