//! SGQ-style incremental top-k semantic search.

use super::FactoidEngine;
use crate::ground_truth::{simple_ground_truth, GroundTruthConfig};
use crate::query_graph::ResolvedSimpleQuery;
use kg_core::{EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;

/// SGQ finds the top-k answers by semantic similarity and supports
/// incremental retrieval. The paper's evaluation protocol initialises `k = 50`
/// and increases it in steps of 50 until every correct answer (similarity
/// ≥ τ) is included; the final step therefore admits up to 49 answers below
/// the threshold — which is exactly why SGQ's aggregate has non-zero error in
/// Tables VI/VII despite being semantics-aware.
#[derive(Debug, Clone)]
pub struct TopKSemanticEngine {
    /// Step size for incremental retrieval (paper: 50).
    pub k_step: usize,
    /// Correctness threshold τ used to decide when all correct answers are in.
    pub tau: f64,
    /// Ground-truth computation parameters (hop bound etc.).
    pub config: GroundTruthConfig,
}

impl Default for TopKSemanticEngine {
    fn default() -> Self {
        Self {
            k_step: 50,
            tau: 0.85,
            config: GroundTruthConfig::default(),
        }
    }
}

impl FactoidEngine for TopKSemanticEngine {
    fn name(&self) -> &'static str {
        "TopKSemantic"
    }

    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId> {
        let gt = simple_ground_truth(graph, query, similarity, &self.config);
        let mut ranked = gt.candidates;
        ranked.sort_by(|a, b| b.similarity.total_cmp(&a.similarity));
        let correct_total = ranked.iter().filter(|c| c.similarity >= self.tau).count();
        if correct_total == 0 {
            // Return the first batch, as a user of a top-k system would see.
            return ranked
                .iter()
                .take(self.k_step.min(ranked.len()))
                .map(|c| c.entity)
                .collect();
        }
        // Grow k in steps of `k_step` until all correct answers are covered.
        let mut k = self.k_step;
        loop {
            let covered = ranked
                .iter()
                .take(k)
                .filter(|c| c.similarity >= self.tau)
                .count();
            if covered >= correct_total || k >= ranked.len() {
                break;
            }
            k += self.k_step;
        }
        ranked.iter().take(k).map(|c| c.entity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    fn setup(
        step: usize,
    ) -> (
        KnowledgeGraph,
        kg_embed::PredicateVectorStore,
        TopKSemanticEngine,
    ) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        // 10 strongly-related cars, 30 weakly-related cars.
        for i in 0..10 {
            let c = b.add_entity(&format!("good{i}"), &["Automobile"]);
            b.add_edge(de, "product", c);
        }
        for i in 0..30 {
            let c = b.add_entity(&format!("weak{i}"), &["Automobile"]);
            b.add_edge(c, "exhibitedAt", de);
        }
        let g = b.build();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("exhibitedAt").unwrap(), 0, 0.4),
        ]);
        let engine = TopKSemanticEngine {
            k_step: step,
            ..TopKSemanticEngine::default()
        };
        (g, store, engine)
    }

    #[test]
    fn includes_all_correct_answers_plus_padding() {
        let (g, store, engine) = setup(8);
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let answers = engine.simple_answers(&g, &q, &store);
        // All 10 correct answers require k to grow to 16 (two steps of 8),
        // so 6 weak answers leak in.
        assert_eq!(answers.len(), 16);
        for i in 0..10 {
            assert!(answers.contains(&g.entity_by_name(&format!("good{i}")).unwrap()));
        }
        assert_eq!(engine.name(), "TopKSemantic");
    }

    #[test]
    fn no_correct_answers_returns_first_batch() {
        let (g, store, mut engine) = setup(5);
        engine.tau = 1.1; // nothing reaches this threshold
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let answers = engine.simple_answers(&g, &q, &store);
        assert_eq!(answers.len(), 5);
    }
}
