//! QGA-style keyword matching over predicate names.

use super::FactoidEngine;
use crate::query_graph::ResolvedSimpleQuery;
use kg_core::{enumerate_paths_to, EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use std::collections::BTreeSet;

/// QGA assembles a query graph from keywords and matches it textually.
/// The behavioural core we keep: an entity is an answer when it is reachable
/// by a short path at least one of whose predicate *names* shares a token
/// with the query predicate's name. Implicit semantics (e.g. `assembly` ≈
/// `product`) are invisible to token matching, which is the dominant error
/// source of keyword methods in Tables VI/VII.
#[derive(Debug, Clone)]
pub struct KeywordEngine {
    /// Maximum path length explored.
    pub max_path_len: usize,
    /// Budget on explored partial paths (guards dense neighbourhoods).
    pub path_budget: usize,
}

impl Default for KeywordEngine {
    fn default() -> Self {
        Self {
            max_path_len: 2,
            path_budget: 200_000,
        }
    }
}

fn tokens(name: &str) -> Vec<String> {
    name.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

fn share_token(a: &str, b: &str) -> bool {
    let ta = tokens(a);
    let tb = tokens(b);
    ta.iter().any(|x| tb.contains(x))
}

impl FactoidEngine for KeywordEngine {
    fn name(&self) -> &'static str {
        "Keyword"
    }

    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        _similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId> {
        let query_pred_name = graph.predicate_name(query.predicate).to_string();
        let paths = enumerate_paths_to(
            graph,
            query.specific,
            self.max_path_len,
            self.path_budget,
            |n| query.is_candidate(graph, n),
        );
        let mut answers = BTreeSet::new();
        for path in paths {
            let hit = path
                .predicates()
                .any(|p| share_token(graph.predicate_name(p), &query_pred_name));
            if hit {
                answers.insert(path.target());
            }
        }
        answers.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    #[test]
    fn token_overlap_drives_matching() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let a = b.add_entity("a", &["Automobile"]);
        let c = b.add_entity("c", &["Automobile"]);
        let d = b.add_entity("d", &["Automobile"]);
        b.add_edge(de, "product", a);
        b.add_edge(de, "product_line", c); // shares the "product" token
        b.add_edge(d, "assembly", de); // semantically similar, no shared token: missed
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[(g.predicate_id("product").unwrap(), 0, 1.0)]);
        let engine = KeywordEngine::default();
        let answers = engine.simple_answers(&g, &q, &store);
        assert!(answers.contains(&g.entity_by_name("a").unwrap()));
        assert!(answers.contains(&g.entity_by_name("c").unwrap()));
        assert!(!answers.contains(&g.entity_by_name("d").unwrap()));
        assert_eq!(engine.name(), "Keyword");
    }

    #[test]
    fn tokenizer_handles_cases_and_separators() {
        assert!(share_token("designCompany", "designcompany"));
        assert!(share_token("fuel_economy", "economy"));
        assert!(!share_token("assembly", "product"));
        assert_eq!(tokens("a_b-c"), vec!["a", "b", "c"]);
    }
}
