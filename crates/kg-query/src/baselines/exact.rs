//! Exact SPARQL-style matching (JENA / Virtuoso / gStore behaviour).

use super::FactoidEngine;
use crate::query_graph::ResolvedSimpleQuery;
use kg_core::{EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;

/// Exact schema matching: an answer must be connected to the mapping node by
/// an edge carrying *exactly* the query predicate (in either direction) and
/// carry the target type.
///
/// This reproduces the behaviour the paper attributes to SPARQL stores: "they
/// only found those correct answers matching exactly with the graph schema of
/// the input SPARQL query, and other correct answers having different schemas
/// were ignored."
#[derive(Debug, Default, Clone)]
pub struct ExactSparqlEngine;

impl FactoidEngine for ExactSparqlEngine {
    fn name(&self) -> &'static str {
        "ExactSparql"
    }

    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        _similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId> {
        let mut answers: Vec<EntityId> = graph
            .neighbors(query.specific)
            .iter()
            .filter(|e| e.predicate == query.predicate)
            .map(|e| e.neighbor)
            .filter(|&n| query.is_candidate(graph, n))
            .collect();
        answers.sort_unstable();
        answers.dedup();
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    #[test]
    fn only_literal_predicate_edges_match() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let a = b.add_entity("a", &["Automobile"]);
        let c = b.add_entity("c", &["Automobile"]);
        let d = b.add_entity("d", &["Company"]);
        b.add_edge(de, "product", a);
        b.add_edge(c, "assembly", de); // same meaning, different predicate: missed
        b.add_edge(de, "product", d); // right predicate, wrong type: excluded
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[(g.predicate_id("product").unwrap(), 0, 1.0)]);
        let engine = ExactSparqlEngine;
        let answers = engine.simple_answers(&g, &q, &store);
        assert_eq!(answers, vec![g.entity_by_name("a").unwrap()]);
        assert_eq!(engine.name(), "ExactSparql");
        assert!(engine.supports_complex());
    }

    #[test]
    fn incoming_edges_with_matching_predicate_count() {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let a = b.add_entity("a", &["Automobile"]);
        b.add_edge(a, "product", de);
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[(g.predicate_id("product").unwrap(), 0, 1.0)]);
        let answers = ExactSparqlEngine.simple_answers(&g, &q, &store);
        assert_eq!(answers.len(), 1);
    }
}
