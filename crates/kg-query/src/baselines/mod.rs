//! Re-implementations of the comparator systems of §VII (EAQ, SGQ, GraB,
//! QGA, JENA/Virtuoso-style exact SPARQL).
//!
//! Each comparator is reduced to the *behavioural core* that drives its
//! accuracy/latency profile in the paper's evaluation:
//!
//! | Engine | Paper system | Behavioural core kept |
//! |---|---|---|
//! | [`exact::ExactSparqlEngine`] | JENA, Virtuoso, gStore | exact schema match: only answers connected by *exactly* the query predicate are found |
//! | [`topk::TopKSemanticEngine`] | SGQ | incremental top-k by semantic similarity, k grows in steps of 50 until all correct answers are included (the last step admits incorrect ones) |
//! | [`structural::StructuralEngine`] | GraB | structural similarity only (path length), semantics ignored |
//! | [`keyword::KeywordEngine`] | QGA | keyword overlap between path predicates and the query predicate |
//! | [`linkpred::LinkPredictionEngine`] | EAQ | candidate collection by link prediction on direct edges, no edge-to-path mapping |
//!
//! All engines answer *factoid* queries; the aggregate is computed on top of
//! their answer set, which is exactly the "traditional method" of Figure 1(b)
//! whose error the paper measures.

pub mod exact;
pub mod keyword;
pub mod linkpred;
pub mod structural;
pub mod topk;

use crate::aggregate::{AggregateQuery, QuerySpec};
use crate::filter::matches_all;
use crate::query_graph::ResolvedSimpleQuery;
use crate::shapes::{ResolvedComplexQuery, ResolvedComponent};
use kg_core::{EntityId, KgResult, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use std::collections::BTreeSet;
use std::time::Instant;

/// A factoid-query engine: given a resolved simple query, return the answer
/// entities it believes are correct.
pub trait FactoidEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Answers a resolved simple query.
    fn simple_answers(
        &self,
        graph: &KnowledgeGraph,
        query: &ResolvedSimpleQuery,
        similarity: &dyn PredicateSimilarity,
    ) -> Vec<EntityId>;

    /// Whether the engine supports complex shapes (EAQ does not; §VI).
    fn supports_complex(&self) -> bool {
        true
    }
}

/// The comparator engines evaluated in Tables VI–XI.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FactoidEngineKind {
    /// EAQ-style link prediction.
    LinkPrediction,
    /// GraB-style structural similarity.
    Structural,
    /// QGA-style keyword matching.
    Keyword,
    /// SGQ-style incremental top-k semantic search.
    TopKSemantic,
    /// JENA / Virtuoso-style exact SPARQL matching.
    ExactSparql,
}

impl FactoidEngineKind {
    /// All comparator kinds in the row order of Table VI.
    pub fn all() -> [FactoidEngineKind; 5] {
        [
            FactoidEngineKind::LinkPrediction,
            FactoidEngineKind::Structural,
            FactoidEngineKind::Keyword,
            FactoidEngineKind::TopKSemantic,
            FactoidEngineKind::ExactSparql,
        ]
    }

    /// The paper's name for the comparator.
    pub fn paper_name(self) -> &'static str {
        match self {
            FactoidEngineKind::LinkPrediction => "EAQ",
            FactoidEngineKind::Structural => "GraB",
            FactoidEngineKind::Keyword => "QGA",
            FactoidEngineKind::TopKSemantic => "SGQ",
            FactoidEngineKind::ExactSparql => "JENA",
        }
    }

    /// Instantiates the engine with its default parameters.
    pub fn build(self) -> Box<dyn FactoidEngine + Send + Sync> {
        match self {
            FactoidEngineKind::LinkPrediction => {
                Box::new(linkpred::LinkPredictionEngine::default())
            }
            FactoidEngineKind::Structural => Box::new(structural::StructuralEngine::default()),
            FactoidEngineKind::Keyword => Box::new(keyword::KeywordEngine::default()),
            FactoidEngineKind::TopKSemantic => Box::new(topk::TopKSemanticEngine::default()),
            FactoidEngineKind::ExactSparql => Box::new(exact::ExactSparqlEngine),
        }
    }
}

/// Result of answering an aggregate query through a factoid engine.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Aggregate over the engine's answers (after filters).
    pub value: f64,
    /// The answers the engine returned.
    pub answers: Vec<EntityId>,
    /// Wall-clock time in milliseconds.
    pub elapsed_ms: f64,
    /// False when the engine does not support the query shape.
    pub supported: bool,
}

/// Answers a resolved complex query with a factoid engine by
/// decomposition–assembly: chains are cascaded hop by hop, then component
/// answer sets are intersected.
pub fn complex_answers<E: FactoidEngine + ?Sized>(
    engine: &E,
    graph: &KnowledgeGraph,
    query: &ResolvedComplexQuery,
    similarity: &dyn PredicateSimilarity,
) -> Vec<EntityId> {
    let mut result: Option<BTreeSet<EntityId>> = None;
    for component in &query.components {
        let answers: BTreeSet<EntityId> = match component {
            ResolvedComponent::Simple(q) => engine
                .simple_answers(graph, q, similarity)
                .into_iter()
                .collect(),
            ResolvedComponent::Chain(chain) => {
                let mut frontier: BTreeSet<EntityId> = BTreeSet::new();
                frontier.insert(chain.specific);
                for hop in 0..chain.hops.len() {
                    let mut next = BTreeSet::new();
                    for &anchor in &frontier {
                        let hop_query = chain.hop_as_simple(hop, anchor);
                        next.extend(engine.simple_answers(graph, &hop_query, similarity));
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            }
        };
        result = Some(match result {
            None => answers,
            Some(acc) => acc.intersection(&answers).copied().collect(),
        });
    }
    result.unwrap_or_default().into_iter().collect()
}

/// Evaluates a full aggregate query with a factoid engine: find answers,
/// apply filters, aggregate. This is the "traditional method" pipeline.
pub fn evaluate_with_engine<E: FactoidEngine + ?Sized>(
    engine: &E,
    graph: &KnowledgeGraph,
    query: &AggregateQuery,
    similarity: &dyn PredicateSimilarity,
) -> KgResult<BaselineResult> {
    let start = Instant::now();
    let aggregate = query.function.resolve(graph)?;
    let filters = query.resolve_filters(graph)?;
    let (answers, supported) = match &query.query {
        QuerySpec::Simple(simple) => {
            let resolved = simple.resolve(graph)?;
            (engine.simple_answers(graph, &resolved, similarity), true)
        }
        QuerySpec::Complex(complex) => {
            if !engine.supports_complex() {
                (Vec::new(), false)
            } else {
                let resolved = complex.resolve(graph)?;
                (complex_answers(engine, graph, &resolved, similarity), true)
            }
        }
    };
    let filtered: Vec<EntityId> = answers
        .iter()
        .copied()
        .filter(|&e| matches_all(graph, e, &filters))
        .collect();
    let value = aggregate.apply_exact(graph, &filtered);
    Ok(BaselineResult {
        value,
        answers: filtered,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        supported,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateFunction;
    use crate::query_graph::SimpleQuery;
    use crate::shapes::{ChainHop, ChainQuery, ComplexQuery};
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    fn setup() -> (KnowledgeGraph, kg_embed::PredicateVectorStore) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let direct = b.add_entity("Porsche_911", &["Automobile"]);
        let indirect = b.add_entity("Audi_TT", &["Automobile"]);
        let person = b.add_entity("Peter_Schreyer", &["Person"]);
        let via_person = b.add_entity("KIA_K5", &["Automobile"]);
        for car in [direct, indirect, via_person] {
            b.set_attribute(car, "price", 50_000.0);
        }
        b.add_edge(de, "product", direct);
        b.add_edge(indirect, "assembly", vw);
        b.add_edge(vw, "country", de);
        b.add_edge(person, "nationality", de);
        b.add_edge(via_person, "designer", person);
        let g = b.build();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("assembly").unwrap(), 0, 0.95),
            (g.predicate_id("country").unwrap(), 0, 0.85),
            (g.predicate_id("designer").unwrap(), 0, 0.9),
            (g.predicate_id("nationality").unwrap(), 0, 0.9),
        ]);
        (g, store)
    }

    #[test]
    fn all_engines_answer_simple_queries() {
        let (g, store) = setup();
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        for kind in FactoidEngineKind::all() {
            let engine = kind.build();
            let r = evaluate_with_engine(engine.as_ref(), &g, &q, &store).unwrap();
            assert!(r.supported, "{}", kind.paper_name());
            assert!(r.value >= 1.0, "{} found nothing", kind.paper_name());
            assert!(!kind.paper_name().is_empty());
        }
    }

    #[test]
    fn exact_engine_misses_schema_flexible_answers() {
        let (g, store) = setup();
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        let exact = FactoidEngineKind::ExactSparql.build();
        let r = evaluate_with_engine(exact.as_ref(), &g, &q, &store).unwrap();
        // Only Porsche_911 is connected via the literal `product` predicate.
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn eaq_does_not_support_complex_queries() {
        let (g, store) = setup();
        let chain = ComplexQuery::chain(ChainQuery::new(
            "Germany",
            &["Country"],
            vec![
                ChainHop::new("nationality", &["Person"]),
                ChainHop::new("designer", &["Automobile"]),
            ],
        ));
        let q = AggregateQuery::complex(chain, AggregateFunction::Count);
        let eaq = FactoidEngineKind::LinkPrediction.build();
        let r = evaluate_with_engine(eaq.as_ref(), &g, &q, &store).unwrap();
        assert!(!r.supported);
        let sgq = FactoidEngineKind::TopKSemantic.build();
        let r = evaluate_with_engine(sgq.as_ref(), &g, &q, &store).unwrap();
        assert!(r.supported);
    }

    #[test]
    fn star_answers_are_intersections() {
        let (g, store) = setup();
        let star = ComplexQuery::star(vec![
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            SimpleQuery::new("Volkswagen", &["Company"], "product", &["Automobile"]),
        ]);
        let q = AggregateQuery::complex(star, AggregateFunction::Count);
        let sgq = FactoidEngineKind::TopKSemantic.build();
        let r = evaluate_with_engine(sgq.as_ref(), &g, &q, &store).unwrap();
        let audi = g.entity_by_name("Audi_TT").unwrap();
        assert!(r.answers.contains(&audi));
    }
}
