//! Ground-truth computation: candidate answers, τ-relevant correct answers
//! (`A⁺ = {u ∈ A : s_i ≥ τ}`) and the exact aggregate over them.
//!
//! Two notions of ground truth are used in the paper's evaluation:
//!
//! * **τ-GT** — the aggregate over the τ-relevant correct answers produced by
//!   exhaustive enumeration (this module / the SSB baseline);
//! * **HA-GT** — the aggregate over human-annotated correct answers; in this
//!   reproduction the annotation is simulated by the data generator
//!   (`kg-datagen::annotation`) which knows the planted correct schemas.
//!
//! Table V compares the two answer sets by average Jaccard similarity, which
//! [`jaccard`] implements.

use crate::aggregate::ResolvedAggregate;
use crate::matching::{best_similarity, MatchConfig};
use crate::query_graph::ResolvedSimpleQuery;
use crate::shapes::{ResolvedComplexQuery, ResolvedComponent};
use kg_core::{bounded_subgraph, EntityId, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use std::collections::BTreeSet;

/// Parameters of ground-truth computation.
#[derive(Clone, Debug)]
pub struct GroundTruthConfig {
    /// Semantic-similarity threshold τ.
    pub tau: f64,
    /// Hop bound `n` of the n-bounded subgraph.
    pub n_bound: u32,
    /// Exhaustive matching parameters.
    pub match_config: MatchConfig,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self {
            tau: 0.85,
            n_bound: 3,
            match_config: MatchConfig::default(),
        }
    }
}

/// A candidate answer with its semantic similarity to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateAnswer {
    /// The answer entity `u_t`.
    pub entity: EntityId,
    /// Its semantic similarity `s_i` (Eq. 3).
    pub similarity: f64,
}

/// The result of exhaustive ground-truth computation for one query.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// All candidate answers `A` (target-typed entities in the n-bounded
    /// subgraph) with their similarities.
    pub candidates: Vec<CandidateAnswer>,
    /// The τ-relevant correct answers `A⁺`, sorted by entity id.
    pub correct: Vec<EntityId>,
}

impl GroundTruth {
    /// Number of candidate answers |A|.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of correct answers |A⁺|.
    pub fn correct_count(&self) -> usize {
        self.correct.len()
    }

    /// Query selectivity: |A⁺| / |A| (the percentage reported in Table IV).
    pub fn selectivity(&self) -> f64 {
        if self.candidates.is_empty() {
            0.0
        } else {
            self.correct.len() as f64 / self.candidates.len() as f64
        }
    }

    /// The exact aggregate `V = f_a(A⁺)` (the τ-GT of the query).
    pub fn value(&self, graph: &KnowledgeGraph, aggregate: &ResolvedAggregate) -> f64 {
        aggregate.apply_exact(graph, &self.correct)
    }

    /// True when `entity` is a τ-relevant correct answer.
    pub fn is_correct(&self, entity: EntityId) -> bool {
        self.correct.binary_search(&entity).is_ok()
    }
}

/// Computes the ground truth of a simple query by exhaustively scoring every
/// candidate in the n-bounded subgraph (the core of SSB, Algorithm 1).
pub fn simple_ground_truth<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    query: &ResolvedSimpleQuery,
    similarity: &S,
    config: &GroundTruthConfig,
) -> GroundTruth {
    let scope = bounded_subgraph(graph, query.specific, config.n_bound);
    let mut candidates = Vec::new();
    let mut correct = Vec::new();
    for node in scope.sorted_nodes() {
        if !query.is_candidate(graph, node) {
            continue;
        }
        let s = best_similarity(graph, query, node, similarity, &config.match_config);
        candidates.push(CandidateAnswer {
            entity: node,
            similarity: s,
        });
        if s >= config.tau {
            correct.push(node);
        }
    }
    GroundTruth {
        candidates,
        correct,
    }
}

/// Ground truth of a chain query: the chain is evaluated hop by hop — the
/// correct answers of hop `i`, anchored at each correct answer of hop `i−1`,
/// feed the next hop (§V-B). Candidates are accumulated from the final hop.
pub fn chain_ground_truth<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    chain: &crate::shapes::ResolvedChainQuery,
    similarity: &S,
    config: &GroundTruthConfig,
) -> GroundTruth {
    let mut frontier: BTreeSet<EntityId> = BTreeSet::new();
    frontier.insert(chain.specific);
    let mut last = GroundTruth::default();
    for hop_index in 0..chain.hops.len() {
        let mut next_frontier = BTreeSet::new();
        let mut candidates = Vec::new();
        for &anchor in &frontier {
            let hop_query = chain.hop_as_simple(hop_index, anchor);
            let gt = simple_ground_truth(graph, &hop_query, similarity, config);
            for c in gt.candidates {
                candidates.push(c);
            }
            next_frontier.extend(gt.correct);
        }
        // De-duplicate candidates keeping the maximum similarity per entity.
        candidates.sort_by(|a, b| {
            a.entity
                .cmp(&b.entity)
                .then(b.similarity.total_cmp(&a.similarity))
        });
        candidates.dedup_by_key(|c| c.entity);
        last = GroundTruth {
            candidates,
            correct: next_frontier.iter().copied().collect(),
        };
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    last
}

/// Ground truth of one component of a complex query.
pub fn component_ground_truth<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    component: &ResolvedComponent,
    similarity: &S,
    config: &GroundTruthConfig,
) -> GroundTruth {
    match component {
        ResolvedComponent::Simple(q) => simple_ground_truth(graph, q, similarity, config),
        ResolvedComponent::Chain(q) => chain_ground_truth(graph, q, similarity, config),
    }
}

/// Ground truth of a complex query: the intersection of the component answer
/// sets (decomposition–assembly, §V-B).
pub fn complex_ground_truth<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    query: &ResolvedComplexQuery,
    similarity: &S,
    config: &GroundTruthConfig,
) -> GroundTruth {
    let mut iter = query.components.iter();
    let first = match iter.next() {
        Some(c) => component_ground_truth(graph, c, similarity, config),
        None => return GroundTruth::default(),
    };
    let mut correct: BTreeSet<EntityId> = first.correct.iter().copied().collect();
    let mut candidates = first.candidates;
    for component in iter {
        let gt = component_ground_truth(graph, component, similarity, config);
        let other: BTreeSet<EntityId> = gt.correct.iter().copied().collect();
        correct = correct.intersection(&other).copied().collect();
        // Keep the candidate pool as the union with per-entity max similarity;
        // this is only used for selectivity reporting.
        candidates.extend(gt.candidates);
    }
    candidates.sort_by(|a, b| {
        a.entity
            .cmp(&b.entity)
            .then(b.similarity.total_cmp(&a.similarity))
    });
    candidates.dedup_by_key(|c| c.entity);
    GroundTruth {
        candidates,
        correct: correct.into_iter().collect(),
    }
}

/// Jaccard similarity of two answer sets (Table V's AJS metric).
pub fn jaccard(a: &[EntityId], b: &[EntityId]) -> f64 {
    let sa: BTreeSet<EntityId> = a.iter().copied().collect();
    let sb: BTreeSet<EntityId> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateFunction;
    use crate::query_graph::SimpleQuery;
    use crate::shapes::{ChainHop, ChainQuery, ComplexQuery};
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;
    use kg_embed::PredicateVectorStore;

    fn setup() -> (KnowledgeGraph, PredicateVectorStore) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let schreyer = b.add_entity("Peter_Schreyer", &["Person"]);
        let cars = [
            ("Porsche_911", 64_300.0),
            ("BMW_320", 41_500.0),
            ("Audi_TT", 52_000.0),
            ("KIA_K5", 24_000.0),
        ];
        let ids: Vec<_> = cars
            .iter()
            .map(|(n, p)| {
                let id = b.add_entity(n, &["Automobile"]);
                b.set_attribute(id, "price", *p);
                id
            })
            .collect();
        b.add_edge(de, "product", ids[0]);
        b.add_edge(ids[1], "assembly", de);
        b.add_edge(ids[2], "assembly", vw);
        b.add_edge(vw, "country", de);
        b.add_edge(ids[3], "designer", schreyer);
        b.add_edge(schreyer, "nationality", de);
        let g = b.build();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("assembly").unwrap(), 0, 0.98),
            (g.predicate_id("country").unwrap(), 0, 0.81),
            (g.predicate_id("designer").unwrap(), 0, 0.62),
            (g.predicate_id("nationality").unwrap(), 0, 0.70),
        ]);
        (g, store)
    }

    #[test]
    fn tau_separates_correct_from_incorrect_answers() {
        let (g, store) = setup();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let gt = simple_ground_truth(&g, &q, &store, &GroundTruthConfig::default());
        assert_eq!(gt.candidate_count(), 4);
        // With τ = 0.85, KIA_K5 (designer·nationality path) is excluded.
        let kia = g.entity_by_name("KIA_K5").unwrap();
        assert!(!gt.is_correct(kia));
        assert_eq!(gt.correct_count(), 3);
        assert!(gt.selectivity() > 0.7 && gt.selectivity() < 0.8);

        let avg = AggregateFunction::Avg("price".into()).resolve(&g).unwrap();
        let v = gt.value(&g, &avg);
        assert!((v - (64_300.0 + 41_500.0 + 52_000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lowering_tau_adds_answers() {
        let (g, store) = setup();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let strict = simple_ground_truth(&g, &q, &store, &GroundTruthConfig::default());
        let loose = simple_ground_truth(
            &g,
            &q,
            &store,
            &GroundTruthConfig {
                tau: 0.5,
                ..GroundTruthConfig::default()
            },
        );
        assert!(loose.correct_count() >= strict.correct_count());
        assert_eq!(loose.correct_count(), 4);
    }

    #[test]
    fn chain_ground_truth_follows_hops() {
        let (g, store) = setup();
        // "Cars designed by German designers": Germany -nationality- Person -designer- Automobile.
        let chain = ChainQuery::new(
            "Germany",
            &["Country"],
            vec![
                ChainHop::new("nationality", &["Person"]),
                ChainHop::new("designer", &["Automobile"]),
            ],
        )
        .resolve(&g)
        .unwrap();
        let cfg = GroundTruthConfig {
            tau: 0.6,
            ..GroundTruthConfig::default()
        };
        let gt = chain_ground_truth(&g, &chain, &store, &cfg);
        let kia = g.entity_by_name("KIA_K5").unwrap();
        assert!(gt.is_correct(kia));
        assert_eq!(gt.correct_count(), 1);
    }

    #[test]
    fn complex_ground_truth_intersects_components() {
        let (g, store) = setup();
        let star = ComplexQuery::star(vec![
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            SimpleQuery::new("Volkswagen", &["Company"], "product", &["Automobile"]),
        ])
        .resolve(&g)
        .unwrap();
        let cfg = GroundTruthConfig::default();
        let gt = complex_ground_truth(&g, &star, &store, &cfg);
        // Only Audi_TT is strongly linked to both Germany and Volkswagen.
        let audi = g.entity_by_name("Audi_TT").unwrap();
        assert!(gt.is_correct(audi));
        for e in &gt.correct {
            assert!(gt.candidates.iter().any(|c| c.entity == *e));
        }
        assert!(gt.correct_count() < 4);
    }

    #[test]
    fn jaccard_properties() {
        let a = [EntityId::new(1), EntityId::new(2), EntityId::new(3)];
        let b = [EntityId::new(2), EntityId::new(3), EntityId::new(4)];
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }
}
