//! Subgraph matches and the semantic similarity of a candidate answer
//! (Definition 5, Eq. 3).

use crate::query_graph::ResolvedSimpleQuery;
use crate::similarity::{path_similarity, PathAggregation};
use kg_core::{enumerate_paths_filtered, EntityId, KnowledgeGraph, Path};
use kg_embed::PredicateSimilarity;

/// Parameters of exhaustive match search.
#[derive(Copy, Clone, Debug)]
pub struct MatchConfig {
    /// Maximum path length (the `n` of the n-bounded subgraph; default 3).
    pub max_path_len: usize,
    /// Upper bound on enumerated paths per candidate (guards worst cases).
    pub path_limit: usize,
    /// How edge similarities are aggregated along a path.
    pub aggregation: PathAggregation,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            max_path_len: 3,
            path_limit: 10_000,
            aggregation: PathAggregation::GeometricMean,
        }
    }
}

/// A subgraph match of a candidate answer: the edge-to-path mapping from the
/// query edge to a path `u_s ⤳ u_t` (Definition 5), with its semantic
/// similarity to the query edge.
#[derive(Clone, Debug)]
pub struct SubgraphMatch {
    /// The matched path from the mapping node to the candidate answer.
    pub path: Path,
    /// Semantic similarity `s[M(u_t)]` of the match (Eq. 2).
    pub similarity: f64,
}

/// True when `node` may appear as an *intermediate* node of a subgraph match
/// for `query`.
///
/// The edge-to-path mapping of Definition 5 sends the query edge
/// `q_s —p→ ?x` to a path whose endpoints play the roles of the mapping node
/// and the answer; interior nodes stand in for connecting entities (the
/// `Company` / `Person` intermediates of Fig. 1). A path whose interior
/// passes through another hub-typed entity re-anchors the query at a
/// different specific node, and one passing through another answer-typed
/// entity witnesses that *other* answer, not the endpoint — e.g.
/// `car_A →product→ Germany ←product← car_B →assembly→ China` is built from
/// individually strong edges but is not a match of "product of China" for
/// `car_A`. Both are therefore rejected as intermediates.
pub fn admissible_intermediate(
    graph: &KnowledgeGraph,
    query: &ResolvedSimpleQuery,
    node: EntityId,
) -> bool {
    let entity = graph.entity(node);
    !entity.shares_type(&query.target_types)
        && !entity.shares_type(&graph.entity(query.specific).types)
}

/// Finds the best subgraph match of `candidate` for the query — the path from
/// `query.specific` to `candidate` with maximum semantic similarity (Eq. 3),
/// considering only paths whose interior nodes are admissible intermediates
/// (see [`admissible_intermediate`]).
/// Returns `None` when no such path of length ≤ `config.max_path_len` exists.
pub fn best_match<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    query: &ResolvedSimpleQuery,
    candidate: EntityId,
    similarity: &S,
    config: &MatchConfig,
) -> Option<SubgraphMatch> {
    // Admissibility is enforced *during* enumeration so the path budget is
    // spent only on paths that can count as matches.
    let paths = enumerate_paths_filtered(
        graph,
        query.specific,
        candidate,
        config.max_path_len,
        config.path_limit,
        |node| admissible_intermediate(graph, query, node),
    );
    paths
        .into_iter()
        .map(|path| {
            let s = path_similarity(&path, query.predicate, similarity, config.aggregation);
            SubgraphMatch {
                path,
                similarity: s,
            }
        })
        .max_by(|a, b| a.similarity.total_cmp(&b.similarity))
}

/// The semantic similarity `s_i` of a candidate answer: the maximum
/// similarity over all its subgraph matches (Eq. 3); 0.0 when the candidate
/// is unreachable within the hop bound.
pub fn best_similarity<S: PredicateSimilarity + ?Sized>(
    graph: &KnowledgeGraph,
    query: &ResolvedSimpleQuery,
    candidate: EntityId,
    similarity: &S,
    config: &MatchConfig,
) -> f64 {
    best_match(graph, query, candidate, similarity, config)
        .map(|m| m.similarity)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;
    use kg_embed::PredicateVectorStore;

    /// The Figure-1 style example graph plus an oracle store mirroring the
    /// paper's predicate similarities.
    fn setup() -> (KnowledgeGraph, ResolvedSimpleQuery, PredicateVectorStore) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let audi = b.add_entity("Audi_TT", &["Automobile"]);
        let kia = b.add_entity("KIA_K5", &["Automobile"]);
        let schreyer = b.add_entity("Peter_Schreyer", &["Person"]);
        let p911 = b.add_entity("Porsche_911", &["Automobile"]);
        b.add_edge(de, "product", p911);
        b.add_edge(bmw, "assembly", de);
        b.add_edge(audi, "assembly", vw);
        b.add_edge(vw, "country", de);
        b.add_edge(kia, "designer", schreyer);
        b.add_edge(schreyer, "nationality", de);
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("assembly").unwrap(), 0, 0.98),
            (g.predicate_id("country").unwrap(), 0, 0.81),
            (g.predicate_id("designer").unwrap(), 0, 0.62),
            (g.predicate_id("nationality").unwrap(), 0, 0.70),
        ]);
        (g, q, store)
    }

    #[test]
    fn exact_match_has_similarity_one() {
        let (g, q, store) = setup();
        let p911 = g.entity_by_name("Porsche_911").unwrap();
        let m = best_match(&g, &q, p911, &store, &MatchConfig::default()).unwrap();
        assert!((m.similarity - 1.0).abs() < 1e-9);
        assert_eq!(m.path.len(), 1);
    }

    #[test]
    fn similarity_reflects_path_quality_ordering() {
        let (g, q, store) = setup();
        let cfg = MatchConfig::default();
        let bmw = best_similarity(&g, &q, g.entity_by_name("BMW_320").unwrap(), &store, &cfg);
        let audi = best_similarity(&g, &q, g.entity_by_name("Audi_TT").unwrap(), &store, &cfg);
        let kia = best_similarity(&g, &q, g.entity_by_name("KIA_K5").unwrap(), &store, &cfg);
        // Table II ordering: BMW (direct assembly) > Audi (assembly+country) > KIA (designer path).
        assert!(bmw > audi, "bmw={bmw} audi={audi}");
        assert!(audi > kia, "audi={audi} kia={kia}");
        assert!(kia > 0.0);
    }

    #[test]
    fn unreachable_candidate_has_zero_similarity() {
        let (mut_builder_graph, _q, store) = {
            let (g, q, store) = setup();
            (g, q, store)
        };
        // Add an isolated automobile by rebuilding the graph.
        let mut b = GraphBuilder::new();
        for id in mut_builder_graph.entity_ids() {
            let e = mut_builder_graph.entity(id);
            let types: Vec<&str> = e
                .types
                .iter()
                .map(|t| mut_builder_graph.type_name(*t))
                .collect();
            b.add_entity(&e.name, &types);
        }
        for t in mut_builder_graph.triples() {
            b.add_edge_by_name(
                &mut_builder_graph.entity(t.subject).name,
                mut_builder_graph.predicate_name(t.predicate),
                &mut_builder_graph.entity(t.object).name,
            );
        }
        b.add_entity("Isolated_Car", &["Automobile"]);
        let g = b.build();
        let q = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
            .resolve(&g)
            .unwrap();
        let isolated = g.entity_by_name("Isolated_Car").unwrap();
        assert_eq!(
            best_similarity(&g, &q, isolated, &store, &MatchConfig::default()),
            0.0
        );
        assert_eq!(q.specific, g.entity_by_name("Germany").unwrap());
    }

    #[test]
    fn hop_bound_limits_matches() {
        let (g, q, store) = setup();
        let audi = g.entity_by_name("Audi_TT").unwrap();
        let cfg = MatchConfig {
            max_path_len: 1,
            ..MatchConfig::default()
        };
        // Audi_TT is two hops away; with max_path_len 1 there is no match.
        assert!(best_match(&g, &q, audi, &store, &cfg).is_none());
    }
}
