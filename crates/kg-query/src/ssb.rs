//! SSB — the Semantic Similarity-based Baseline (Algorithm 1).
//!
//! SSB enumerates every candidate answer in the n-bounded subgraph of the
//! mapping node, computes each candidate's exact semantic similarity by
//! enumerating all its paths (complexity `O(|A| · mⁿ)`), keeps the answers
//! with `s_i ≥ τ` and applies the aggregate. It is exact with respect to the
//! τ-relevant ground truth but far slower than the sampling–estimation
//! engine — exactly the trade-off Table VIII shows.

use crate::aggregate::{AggregateQuery, QuerySpec, ResolvedAggregate};
use crate::filter::matches_all;
use crate::ground_truth::{
    complex_ground_truth, simple_ground_truth, GroundTruth, GroundTruthConfig,
};
use kg_core::{KgResult, KnowledgeGraph};
use kg_embed::PredicateSimilarity;
use std::collections::BTreeMap;
use std::time::Instant;

/// Result of evaluating an aggregate query with SSB.
#[derive(Clone, Debug)]
pub struct SsbResult {
    /// Exact aggregate over the τ-relevant correct answers.
    pub value: f64,
    /// Per-group values when the query carries a GROUP-BY.
    pub groups: BTreeMap<i64, f64>,
    /// The underlying ground truth (candidates and correct answers).
    pub ground_truth: GroundTruth,
    /// Wall-clock evaluation time in milliseconds.
    pub elapsed_ms: f64,
}

/// The SSB engine (Algorithm 1).
#[derive(Clone, Debug)]
pub struct SsbEngine {
    config: GroundTruthConfig,
}

impl SsbEngine {
    /// Creates an engine with the given τ / n-bound configuration.
    pub fn new(config: GroundTruthConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GroundTruthConfig {
        &self.config
    }

    /// Evaluates an aggregate query exactly (w.r.t. τ-GT).
    pub fn evaluate<S: PredicateSimilarity + ?Sized>(
        &self,
        graph: &KnowledgeGraph,
        query: &AggregateQuery,
        similarity: &S,
    ) -> KgResult<SsbResult> {
        let start = Instant::now();
        let aggregate = query.function.resolve(graph)?;
        let filters = query.resolve_filters(graph)?;
        let ground_truth = match &query.query {
            QuerySpec::Simple(simple) => {
                let resolved = simple.resolve(graph)?;
                simple_ground_truth(graph, &resolved, similarity, &self.config)
            }
            QuerySpec::Complex(complex) => {
                let resolved = complex.resolve(graph)?;
                complex_ground_truth(graph, &resolved, similarity, &self.config)
            }
        };
        let answers: Vec<_> = ground_truth
            .correct
            .iter()
            .copied()
            .filter(|&e| matches_all(graph, e, &filters))
            .collect();
        let value = aggregate.apply_exact(graph, &answers);
        let groups = match &query.group_by {
            None => BTreeMap::new(),
            Some(gb) => {
                let (attr, width) = gb.resolve(graph)?;
                group_values(graph, &aggregate, &answers, attr, width)
            }
        };
        Ok(SsbResult {
            value,
            groups,
            ground_truth,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

fn group_values(
    graph: &KnowledgeGraph,
    aggregate: &ResolvedAggregate,
    answers: &[kg_core::EntityId],
    attr: kg_core::AttrId,
    width: f64,
) -> BTreeMap<i64, f64> {
    let mut buckets: BTreeMap<i64, Vec<kg_core::EntityId>> = BTreeMap::new();
    for &a in answers {
        if let Some(v) = graph.attribute_value(a, attr) {
            buckets
                .entry((v / width).floor() as i64)
                .or_default()
                .push(a);
        }
    }
    buckets
        .into_iter()
        .map(|(k, members)| (k, aggregate.apply_exact(graph, &members)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateFunction, GroupBy};
    use crate::filter::Filter;
    use crate::query_graph::SimpleQuery;
    use kg_core::GraphBuilder;
    use kg_embed::oracle::oracle_store;

    fn setup() -> (KnowledgeGraph, kg_embed::PredicateVectorStore) {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        for i in 0..6 {
            let car = b.add_entity(&format!("car{i}"), &["Automobile"]);
            b.set_attribute(car, "price", 30_000.0 + 10_000.0 * i as f64);
            b.set_attribute(car, "mpg", 20.0 + i as f64);
            if i % 2 == 0 {
                b.add_edge(de, "product", car);
            } else {
                b.add_edge(car, "assembly", de);
            }
        }
        // A car related only through an unrelated predicate: not a correct answer.
        let far = b.add_entity("far_car", &["Automobile"]);
        b.set_attribute(far, "price", 1_000_000.0);
        b.add_edge(far, "exhibitedAt", de);
        let g = b.build();
        let store = oracle_store(&[
            (g.predicate_id("product").unwrap(), 0, 1.0),
            (g.predicate_id("assembly").unwrap(), 0, 0.95),
            (g.predicate_id("exhibitedAt").unwrap(), 1, 1.0),
        ]);
        (g, store)
    }

    fn count_query() -> AggregateQuery {
        AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        )
    }

    #[test]
    fn ssb_counts_only_semantically_correct_answers() {
        let (g, store) = setup();
        let engine = SsbEngine::new(GroundTruthConfig::default());
        let r = engine.evaluate(&g, &count_query(), &store).unwrap();
        assert_eq!(r.value, 6.0);
        assert_eq!(r.ground_truth.candidate_count(), 7);
        assert!(r.elapsed_ms >= 0.0);
        assert!(r.groups.is_empty());
    }

    #[test]
    fn ssb_average_excludes_far_car() {
        let (g, store) = setup();
        let engine = SsbEngine::new(GroundTruthConfig::default());
        let q = AggregateQuery::simple(
            SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Avg("price".into()),
        );
        let r = engine.evaluate(&g, &q, &store).unwrap();
        let expected = (0..6).map(|i| 30_000.0 + 10_000.0 * i as f64).sum::<f64>() / 6.0;
        assert!((r.value - expected).abs() < 1e-9);
    }

    #[test]
    fn ssb_applies_filters() {
        let (g, store) = setup();
        let engine = SsbEngine::new(GroundTruthConfig::default());
        let q = count_query().with_filter(Filter::range("mpg", 21.0, 23.0));
        let r = engine.evaluate(&g, &q, &store).unwrap();
        assert_eq!(r.value, 3.0);
    }

    #[test]
    fn ssb_group_by_buckets() {
        let (g, store) = setup();
        let engine = SsbEngine::new(GroundTruthConfig::default());
        let q = count_query().with_group_by(GroupBy::new("price", 25_000.0));
        let r = engine.evaluate(&g, &q, &store).unwrap();
        let total: f64 = r.groups.values().sum();
        assert_eq!(total, 6.0);
        assert!(r.groups.len() >= 2);
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let (g, store) = setup();
        let engine = SsbEngine::new(GroundTruthConfig::default());
        let q = AggregateQuery::simple(
            SimpleQuery::new("Atlantis", &["Country"], "product", &["Automobile"]),
            AggregateFunction::Count,
        );
        assert!(engine.evaluate(&g, &q, &store).is_err());
        assert_eq!(engine.config().n_bound, 3);
    }
}
