//! # kg-query — query model, semantic similarity and factoid-query baselines
//!
//! This crate contains everything the paper defines *about queries* short of
//! the sampling–estimation engine itself:
//!
//! * the **query graph** model (Definition 3) for simple questions and its
//!   extensions to chain / star / cycle / flower shapes (§V-B), plus
//!   aggregate functions, filters and GROUP-BY (Definition 2, 6);
//! * **semantic similarity** of a subgraph match (Eq. 2–4): geometric mean of
//!   the predicate similarities along the edge-to-path mapping;
//! * the **Semantic Similarity-based Baseline** (SSB, Algorithm 1) that
//!   enumerates all candidate answers to produce the τ-relevant ground truth;
//! * **ground truth** bookkeeping (τ-GT and simulated human-annotated HA-GT);
//! * re-implementations of the behavioural core of the comparator systems the
//!   paper evaluates against (exact SPARQL matching, top-k semantic search,
//!   structural similarity, keyword search, link prediction) in
//!   [`baselines`].
//!
//! ```
//! use kg_core::GraphBuilder;
//! use kg_embed::oracle::oracle_store;
//! use kg_query::{simple_ground_truth, GroundTruthConfig, SimpleQuery};
//!
//! let mut b = GraphBuilder::new();
//! let germany = b.add_entity("Germany", &["Country"]);
//! let car = b.add_entity("Porsche_911", &["Automobile"]);
//! b.add_edge(germany, "product", car);
//! let graph = b.build();
//!
//! let query = SimpleQuery::new("Germany", &["Country"], "product", &["Automobile"])
//!     .resolve(&graph)
//!     .unwrap();
//! let oracle = oracle_store(&[(graph.predicate_id("product").unwrap(), 0, 1.0)]);
//! let gt = simple_ground_truth(&graph, &query, &oracle, &GroundTruthConfig::default());
//! assert_eq!(gt.correct_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod baselines;
pub mod filter;
pub mod ground_truth;
pub mod matching;
pub mod query_graph;
pub mod shapes;
pub mod similarity;
pub mod ssb;
pub mod wire;

pub use aggregate::{
    AggregateFunction, AggregateQuery, GroupBy, QueryFootprint, QuerySpec, ResolvedAggregate,
};
pub use baselines::{
    complex_answers, evaluate_with_engine, BaselineResult, FactoidEngine, FactoidEngineKind,
};
pub use filter::{matches_all, Filter, ResolvedFilter};
pub use ground_truth::{
    chain_ground_truth, complex_ground_truth, component_ground_truth, jaccard, simple_ground_truth,
    CandidateAnswer, GroundTruth, GroundTruthConfig,
};
pub use matching::{
    admissible_intermediate, best_match, best_similarity, MatchConfig, SubgraphMatch,
};
pub use query_graph::{QueryNode, ResolvedSimpleQuery, SimpleQuery};
pub use shapes::{
    ChainHop, ChainQuery, ComplexQuery, QueryComponent, QueryShape, ResolvedChainHop,
    ResolvedChainQuery, ResolvedComplexQuery, ResolvedComponent,
};
pub use similarity::{path_similarity, predicates_similarity, PathAggregation};
pub use ssb::{SsbEngine, SsbResult};
pub use wire::WireError;
