//! Prometheus text-exposition format (version 0.0.4): encoder and a
//! strict parser used to pin the grammar in tests.
//!
//! The encoder renders a list of [`MetricFamily`] values as the classic
//! text format: a `# HELP` line (help text with `\\` and `\n` escaped), a
//! `# TYPE` line, then one sample line per labelled series. Histograms are
//! first-class: [`MetricFamily::push_histogram`] expands a
//! [`HistogramSnapshot`] into the cumulative `_bucket{le=...}` ladder
//! (ending at `le="+Inf"`) plus `_sum` and `_count`, the shape every
//! Prometheus client library emits.
//!
//! The parser accepts exactly what the encoder produces (names matching
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values with `\\`, `\"` and `\n`
//! escapes, values as shortest-round-trip floats or `±Inf`/`NaN`), so
//! `parse(encode(x)) == x` is a meaningful grammar pin, not a tautology.

use crate::histogram::HistogramSnapshot;
use std::fmt;

/// The metric kinds this workspace exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// Cumulative fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// One sample line: `name<suffix>{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Name suffix appended to the family name (`""`, `"_bucket"`,
    /// `"_sum"`, `"_count"`).
    pub suffix: String,
    /// Label pairs in emission order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A metric family: `# HELP` + `# TYPE` + its samples.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricFamily {
    /// Family name, matching `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    pub name: String,
    /// The declared kind.
    pub kind: MetricKind,
    /// Help text (escaped on the wire).
    pub help: String,
    /// Sample lines in emission order.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// Creates an empty family.
    ///
    /// # Panics
    /// Panics if `name` is not a valid Prometheus metric name.
    pub fn new(name: &str, kind: MetricKind, help: &str) -> Self {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        MetricFamily {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            samples: Vec::new(),
        }
    }

    /// Appends one sample with the given name suffix and labels.
    ///
    /// # Panics
    /// Panics if a label name is not a valid Prometheus label name.
    pub fn push(&mut self, suffix: &str, labels: &[(&str, &str)], value: f64) {
        for (label, _) in labels {
            assert!(valid_label(label), "invalid label name: {label:?}");
        }
        self.samples.push(Sample {
            suffix: suffix.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Appends a full histogram series: the cumulative `_bucket` ladder
    /// (with `le` labels, ending at `+Inf`), `_sum`, and `_count`.
    pub fn push_histogram(&mut self, labels: &[(&str, &str)], snapshot: &HistogramSnapshot) {
        for (edge, cumulative) in snapshot.cumulative() {
            let le = format_value(edge);
            let mut bucket_labels: Vec<(&str, &str)> = labels.to_vec();
            bucket_labels.push(("le", le.as_str()));
            self.push("_bucket", &bucket_labels, cumulative as f64);
        }
        self.push("_sum", labels, snapshot.sum);
        self.push("_count", labels, snapshot.count() as f64);
    }
}

/// Renders families in the text exposition format (ends with a newline).
pub fn encode(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for family in families {
        out.push_str("# HELP ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(&escape_help(&family.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.as_str());
        out.push('\n');
        for sample in &family.samples {
            out.push_str(&family.name);
            out.push_str(&sample.suffix);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (label, value)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(label);
                    out.push_str("=\"");
                    out.push_str(&escape_label_value(value));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&format_value(sample.value));
            out.push('\n');
        }
    }
    out
}

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct PromParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PromParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromParseError {}

/// Parses text produced by [`encode`] back into metric families.
pub fn parse(text: &str) -> Result<Vec<MetricFamily>, PromParseError> {
    let mut families: Vec<MetricFamily> = Vec::new();
    let mut pending_help: Option<(String, String)> = None;
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let err = |message: String| PromParseError {
            line: line_no,
            message,
        };
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !valid_name(name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            pending_help = Some((name.to_string(), unescape_help(help)));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind_text) = rest
                .split_once(' ')
                .ok_or_else(|| err("TYPE line missing kind".to_string()))?;
            let kind = MetricKind::from_str(kind_text)
                .ok_or_else(|| err(format!("unknown metric kind {kind_text:?}")))?;
            let help = match pending_help.take() {
                Some((help_name, help)) if help_name == name => help,
                _ => return Err(err(format!("TYPE {name} without a preceding HELP"))),
            };
            if !valid_name(name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            families.push(MetricFamily::new(name, kind, &help));
        } else if line.starts_with('#') {
            continue; // plain comment
        } else {
            let family = families
                .last_mut()
                .ok_or_else(|| err("sample before any TYPE line".to_string()))?;
            let sample = parse_sample(line, &family.name).map_err(err)?;
            family.samples.push(sample);
        }
    }
    Ok(families)
}

fn parse_sample(line: &str, family: &str) -> Result<Sample, String> {
    let rest = line
        .strip_prefix(family)
        .ok_or_else(|| format!("sample name does not extend family {family:?}: {line:?}"))?;
    let brace = rest.find('{');
    let (suffix, mut tail) = match brace {
        Some(pos) => (&rest[..pos], &rest[pos..]),
        None => match rest.find(' ') {
            Some(pos) => (&rest[..pos], &rest[pos..]),
            None => return Err(format!("sample line missing value: {line:?}")),
        },
    };
    if !suffix.is_empty()
        && !suffix
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(format!("invalid name suffix {suffix:?}"));
    }
    let mut labels = Vec::new();
    if tail.starts_with('{') {
        tail = &tail[1..];
        loop {
            if let Some(after) = tail.strip_prefix('}') {
                tail = after;
                break;
            }
            let eq = tail
                .find('=')
                .ok_or_else(|| format!("label missing '=': {tail:?}"))?;
            let label = &tail[..eq];
            if !valid_label(label) {
                return Err(format!("invalid label name {label:?}"));
            }
            tail = tail[eq + 1..]
                .strip_prefix('"')
                .ok_or_else(|| format!("label value must be quoted after {label:?}"))?;
            let (value, after) = unescape_label_value(tail)?;
            labels.push((label.to_string(), value));
            tail = after.strip_prefix(',').unwrap_or(after);
        }
    }
    let value_text = tail.trim_start();
    let value = parse_value(value_text)?;
    Ok(Sample {
        suffix: suffix.to_string(),
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Formats a value the way the exposition format spells it.
pub fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        value.to_string()
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    let mut chars = help.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Consumes an escaped label value up to its closing quote; returns the
/// unescaped value and the remaining input after the quote.
fn unescape_label_value(input: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = input.char_indices();
    while let Some((index, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &input[index + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, other)) => return Err(format!("bad escape \\{other}")),
                None => return Err("dangling escape in label value".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated label value".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_families() -> Vec<MetricFamily> {
        let mut requests = MetricFamily::new(
            "kg_requests_total",
            MetricKind::Counter,
            "Requests by tenant and outcome",
        );
        requests.push("", &[("tenant", "gold"), ("outcome", "completed")], 41.0);
        requests.push("", &[("tenant", "bronze"), ("outcome", "shed")], 3.0);

        let mut epoch = MetricFamily::new(
            "kg_write_epoch",
            MetricKind::Gauge,
            "Per-predicate write epoch",
        );
        epoch.push("", &[("predicate", "product")], 7.0);

        let hist = Histogram::with_edges(&[1.0, 2.0, 4.0]);
        hist.observe_finite([0.5, 1.5, 3.0, 9.0]);
        let mut latency = MetricFamily::new(
            "kg_request_latency_ms",
            MetricKind::Histogram,
            "End-to-end request latency",
        );
        latency.push_histogram(&[("tenant", "gold")], &hist.snapshot());
        vec![requests, epoch, latency]
    }

    #[test]
    fn encode_emits_help_type_and_samples() {
        let text = encode(&sample_families());
        assert!(text.contains("# HELP kg_requests_total Requests by tenant and outcome\n"));
        assert!(text.contains("# TYPE kg_requests_total counter\n"));
        assert!(text.contains("kg_requests_total{tenant=\"gold\",outcome=\"completed\"} 41\n"));
        assert!(text.contains("# TYPE kg_request_latency_ms histogram\n"));
        assert!(text.contains("kg_request_latency_ms_bucket{tenant=\"gold\",le=\"1\"} 1\n"));
        assert!(text.contains("kg_request_latency_ms_bucket{tenant=\"gold\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("kg_request_latency_ms_sum{tenant=\"gold\"} 14\n"));
        assert!(text.contains("kg_request_latency_ms_count{tenant=\"gold\"} 4\n"));
        assert!(text.ends_with('\n'));
    }

    /// The grammar pin: everything the encoder can produce must survive a
    /// parse → compare round trip, including escaping edge cases.
    #[test]
    fn round_trip_preserves_families() {
        let families = sample_families();
        let parsed = parse(&encode(&families)).unwrap();
        assert_eq!(parsed, families);
    }

    #[test]
    fn round_trip_preserves_escaped_label_values_and_help() {
        let mut family = MetricFamily::new(
            "kg_escapes",
            MetricKind::Gauge,
            "help with \\ backslash and\nnewline",
        );
        family.push("", &[("query", "a\"quoted\" \\slash\\ multi\nline")], 1.5);
        family.push("", &[], f64::INFINITY);
        let text = encode(std::slice::from_ref(&family));
        assert!(text.contains("# HELP kg_escapes help with \\\\ backslash and\\nnewline\n"));
        assert!(text.contains("{query=\"a\\\"quoted\\\" \\\\slash\\\\ multi\\nline\"} 1.5\n"));
        assert!(text.contains("kg_escapes +Inf\n"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, vec![family]);
    }

    #[test]
    fn values_round_trip_exactly() {
        for v in [0.0625, 1.0 / 3.0, 12345.678, 1e-9, 16384.0] {
            assert_eq!(parse_value(&format_value(v)).unwrap(), v);
        }
        assert_eq!(parse_value("+Inf").unwrap(), f64::INFINITY);
        assert!(parse_value("NaN").unwrap().is_nan());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("kg_orphan 1\n").is_err(), "sample before TYPE");
        assert!(
            parse("# TYPE kg_x counter\nkg_x 1\n").is_err(),
            "TYPE without HELP"
        );
        assert!(
            parse("# HELP kg_x h\n# TYPE kg_x exotic\n").is_err(),
            "unknown kind"
        );
        assert!(
            parse("# HELP kg_x h\n# TYPE kg_x gauge\nkg_x{l=unquoted} 1\n").is_err(),
            "unquoted label value"
        );
        assert!(
            parse("# HELP kg_x h\n# TYPE kg_x gauge\nother_name 1\n").is_err(),
            "sample not extending the family name"
        );
        let err = parse("# HELP 0bad h\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("invalid metric name"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected_at_build_time() {
        MetricFamily::new("0starts_with_digit", MetricKind::Gauge, "");
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn invalid_label_names_are_rejected_at_build_time() {
        let mut family = MetricFamily::new("kg_ok", MetricKind::Gauge, "");
        family.push("", &[("le\"", "1")], 1.0);
    }
}
