//! First-party observability for the knowledge-graph AQP stack.
//!
//! Three pieces, all std-only (this crate sits at the bottom of the
//! workspace DAG and deliberately has no dependencies):
//!
//! * [`recorder`] — structured spans and events: a thread-safe
//!   [`Recorder`] with ring-buffer retention, span IDs with parent links,
//!   request-scoped trace IDs, monotonic timestamps, and a JSON-lines
//!   sink. Disabled by default; the disabled emit path is a single relaxed
//!   atomic load, so instrumenting hot loops is effectively free, and the
//!   recorder never draws randomness so results stay bitwise-identical
//!   with tracing on.
//! * [`histogram`] — fixed-bucket [`Histogram`]s (latency in log2
//!   buckets, achieved error bound in 1-2-5 decades) with lock-free
//!   recording and nearest-rank quantiles, replacing the
//!   sort-the-whole-`Vec` percentile code previously duplicated across
//!   the service metrics, batch stats, and the load-generator report.
//! * [`prometheus`] — the text exposition format: [`MetricFamily`]
//!   encoding for `GET /metrics.prom`, plus a strict parser that pins the
//!   grammar (names, label escaping, histogram ladders) in tests.
//!
//! # Example
//!
//! ```
//! use kg_telemetry::{Histogram, MetricFamily, MetricKind, Recorder};
//!
//! let recorder = Recorder::new(64);
//! recorder.set_enabled(true);
//! {
//!     let _trace = recorder.with_trace(0x5eed);
//!     let _span = recorder.span("demo.round", &[("round", 1u64.into())]);
//!     recorder.point("demo.tick", &[("draws", 128u64.into())]);
//! }
//! assert_eq!(recorder.drain().len(), 3); // start, point, end
//!
//! let latency = Histogram::latency_log2();
//! latency.observe(3.2);
//! assert_eq!(latency.quantile(0.5), 4.0); // upper edge of the 2..4 ms bucket
//!
//! let mut family = MetricFamily::new("demo_latency_ms", MetricKind::Histogram, "demo");
//! family.push_histogram(&[], &latency.snapshot());
//! let text = kg_telemetry::prometheus::encode(&[family]);
//! assert!(text.contains("demo_latency_ms_bucket"));
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod recorder;

pub use histogram::{Histogram, HistogramSnapshot, ERROR_BOUND_DECADE_EDGES, LATENCY_LOG2_EDGES};
pub use prometheus::{encode, parse, MetricFamily, MetricKind, PromParseError, Sample};
pub use recorder::{
    disable, enable, enabled, global, point, span, trace_hex, with_trace, Event, EventKind,
    FieldValue, Recorder, SpanGuard, TraceGuard, DEFAULT_CAPACITY,
};
