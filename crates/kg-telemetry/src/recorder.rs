//! Structured spans and events: a thread-safe [`Recorder`] with ring-buffer
//! retention, span IDs with parent links, monotonic timestamps, and a
//! JSON-lines sink.
//!
//! # Model
//!
//! The recorder is a bounded in-memory ring of [`Event`]s. Three kinds of
//! event exist: a *span start*, the matching *span end* (same span ID,
//! carrying the duration), and a *point* event with no duration. Span
//! parentage is tracked per thread: starting a span makes it the current
//! span of the calling thread until its [`SpanGuard`] drops, and any span
//! or point recorded meanwhile links to it. A request-scoped *trace ID*
//! rides the same thread-local (see [`Recorder::with_trace`]) and stamps
//! every event recorded while it is set, which is how the service
//! correlates everything a single request did across subsystems.
//!
//! # Overhead
//!
//! When the recorder is disabled (the default) every emit call is a single
//! relaxed atomic load and an immediate return — instrumented hot loops
//! cost ~nothing. Timestamps come from a monotonic [`Instant`] epoch, and
//! the recorder never draws randomness, so enabling it cannot perturb RNG
//! streams or result bitwise-identity.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity of a [`Recorder`] (events retained).
pub const DEFAULT_CAPACITY: usize = 8192;

/// A typed field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, round numbers).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (estimates, margins, milliseconds).
    F64(f64),
    /// A string (tenant names, predicates, served-from labels).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] marks: the start of a span, its end, or a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span began; `span_id` names it, `parent_id` its enclosing span.
    SpanStart,
    /// The matching end; carries a `duration_ns` field.
    SpanEnd,
    /// An instantaneous event inside the current span.
    Point,
}

impl EventKind {
    /// The JSON-lines encoding of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// One recorded entry in the ring buffer.
#[derive(Clone, Debug)]
pub struct Event {
    /// Globally monotonic sequence number (total order across threads).
    pub seq: u64,
    /// Start/end/point discriminator.
    pub kind: EventKind,
    /// Static event name, dot-namespaced by subsystem (`"aqp.round"`).
    pub name: &'static str,
    /// Request-scoped trace ID (0 when recorded outside any trace).
    pub trace_id: u64,
    /// The span this event belongs to (its own ID for span start/end;
    /// 0 at top level).
    pub span_id: u64,
    /// The enclosing span at record time (0 at top level).
    pub parent_id: u64,
    /// Small per-thread index (assigned on first use, not an OS TID).
    pub thread: u64,
    /// Monotonic nanoseconds since the recorder's epoch.
    pub at_ns: u64,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Encodes the event as one JSON-lines record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":\"");
        push_escaped(&mut out, self.name);
        out.push_str("\",\"trace\":\"");
        out.push_str(&trace_hex(self.trace_id));
        out.push_str("\",\"span\":");
        out.push_str(&self.span_id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent_id.to_string());
        out.push_str(",\"thread\":");
        out.push_str(&self.thread.to_string());
        out.push_str(",\"at_ns\":");
        out.push_str(&self.at_ns.to_string());
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            push_escaped(&mut out, key);
            out.push_str("\":");
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        out.push_str(&v.to_string());
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(v) => {
                    out.push('"');
                    push_escaped(&mut out, v);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// Formats a trace ID the way the wire does: 16 lowercase hex digits.
pub fn trace_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// JSON string escaping for the hand-rolled JSON-lines encoder.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

thread_local! {
    /// `(trace_id, current_span_id)` of the calling thread.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_INDEX: u64 = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|t| *t)
}

/// A thread-safe span/event recorder with bounded retention.
///
/// Most callers use the process-wide instance via [`global`] (and the
/// module-level [`enable`]/[`point`]/[`span`] helpers); dedicated
/// instances exist for tests and embedding.
pub struct Recorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    next_span: AtomicU64,
    epoch: Instant,
    capacity: usize,
    buffer: Mutex<VecDeque<Event>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("capacity", &self.capacity)
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    /// Creates a disabled recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            buffer: Mutex::new(VecDeque::new()),
            sink: Mutex::new(None),
        }
    }

    /// Whether emit calls record anything (single relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans already open keep their IDs and
    /// still emit their end events so the buffer stays well-formed.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records a point event in the current thread's trace/span context.
    /// No-op (one atomic load) while disabled.
    pub fn point(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if !self.enabled() {
            return;
        }
        let (trace_id, parent_id) = CONTEXT.with(Cell::get);
        self.push(Event {
            seq: 0,
            kind: EventKind::Point,
            name,
            trace_id,
            span_id: parent_id,
            parent_id,
            thread: thread_index(),
            at_ns: self.now_ns(),
            fields: fields.to_vec(),
        });
    }

    /// Starts a span: records the start event, makes the span current on
    /// this thread, and returns a guard whose drop records the end event
    /// (with a `duration_ns` field) and restores the previous span.
    /// While disabled the guard is inert and nothing is recorded.
    pub fn span(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                recorder: None,
                name,
                span_id: 0,
                parent_id: 0,
                trace_id: 0,
                start_ns: 0,
            };
        }
        let (trace_id, parent_id) = CONTEXT.with(Cell::get);
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.now_ns();
        self.push(Event {
            seq: 0,
            kind: EventKind::SpanStart,
            name,
            trace_id,
            span_id,
            parent_id,
            thread: thread_index(),
            at_ns: start_ns,
            fields: fields.to_vec(),
        });
        CONTEXT.with(|c| c.set((trace_id, span_id)));
        SpanGuard {
            recorder: Some(self),
            name,
            span_id,
            parent_id,
            trace_id,
            start_ns,
        }
    }

    /// Sets the calling thread's trace ID until the guard drops; spans and
    /// points recorded meanwhile are stamped with it. Nesting restores the
    /// previous trace on drop. Cheap enough to call unconditionally.
    pub fn with_trace(&self, trace_id: u64) -> TraceGuard {
        let prev = CONTEXT.with(Cell::get);
        CONTEXT.with(|c| c.set((trace_id, prev.1)));
        TraceGuard { prev }
    }

    /// Copies the buffered events oldest-first without clearing them.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buffer.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buffer.lock().unwrap().drain(..).collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.buffer.lock().unwrap().clear();
    }

    /// The next sequence number to be assigned (monotonically increasing;
    /// usable as a progress counter even after ring eviction).
    pub fn seq_watermark(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Routes [`Recorder::log_line`] output to `sink` (pass `None` to fall
    /// back to stderr). The sink is shared by the slow-query log.
    pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.sink.lock().unwrap() = sink;
    }

    /// Writes one line to the JSON-lines sink (stderr when none is set).
    /// Works even while recording is disabled: structured logs like the
    /// slow-query log are opt-in at the call site, not gated here.
    pub fn log_line(&self, line: &str) {
        let mut sink = self.sink.lock().unwrap();
        match sink.as_mut() {
            Some(out) => {
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            }
            None => eprintln!("{line}"),
        }
    }

    /// Monotonic nanoseconds since this recorder was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut buffer = self.buffer.lock().unwrap();
        if buffer.len() >= self.capacity {
            buffer.pop_front();
        }
        buffer.push_back(event);
    }
}

/// RAII guard returned by [`Recorder::span`]; records the span-end event
/// on drop and restores the thread's previous span.
#[must_use = "a span lasts until its guard is dropped"]
pub struct SpanGuard<'a> {
    recorder: Option<&'a Recorder>,
    name: &'static str,
    span_id: u64,
    parent_id: u64,
    trace_id: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// The span's ID (0 for an inert guard created while disabled).
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(recorder) = self.recorder else {
            return;
        };
        CONTEXT.with(|c| {
            let (trace, _) = c.get();
            c.set((trace, self.parent_id));
        });
        let end_ns = recorder.now_ns();
        recorder.push(Event {
            seq: 0,
            kind: EventKind::SpanEnd,
            name: self.name,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            thread: thread_index(),
            at_ns: end_ns,
            fields: vec![(
                "duration_ns",
                FieldValue::U64(end_ns.saturating_sub(self.start_ns)),
            )],
        });
    }
}

/// RAII guard returned by [`Recorder::with_trace`]; restores the thread's
/// previous trace context on drop.
#[must_use = "a trace context lasts until its guard is dropped"]
pub struct TraceGuard {
    prev: (u64, u64),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder every subsystem emits into.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| Recorder::new(DEFAULT_CAPACITY))
}

/// Enables the global recorder.
pub fn enable() {
    global().set_enabled(true);
}

/// Disables the global recorder (emit calls return immediately again).
pub fn disable() {
    global().set_enabled(false);
}

/// Whether the global recorder is currently recording.
pub fn enabled() -> bool {
    global().enabled()
}

/// Records a point event on the global recorder.
pub fn point(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    global().point(name, fields);
}

/// Starts a span on the global recorder.
pub fn span(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard<'static> {
    global().span(name, fields)
}

/// Sets the calling thread's trace ID on the global recorder.
pub fn with_trace(trace_id: u64) -> TraceGuard {
    global().with_trace(trace_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new(16);
        rec.point("noop", &[("k", 1u64.into())]);
        {
            let _span = rec.span("noop_span", &[]);
            rec.point("inner", &[]);
        }
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.seq_watermark(), 1);
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let rec = Recorder::new(64);
        rec.set_enabled(true);
        let _trace = rec.with_trace(0xabcd);
        {
            let outer = rec.span("outer", &[]);
            let outer_id = outer.id();
            {
                let inner = rec.span("inner", &[("round", 3usize.into())]);
                assert_ne!(inner.id(), outer_id);
                rec.point("tick", &[]);
            }
            rec.point("after_inner", &[]);
        }
        let events = rec.drain();
        assert_eq!(events.len(), 6);
        let outer_start = &events[0];
        let inner_start = &events[1];
        let tick = &events[2];
        let inner_end = &events[3];
        let after = &events[4];
        let outer_end = &events[5];
        assert_eq!(outer_start.kind, EventKind::SpanStart);
        assert_eq!(outer_start.parent_id, 0);
        assert_eq!(inner_start.parent_id, outer_start.span_id);
        assert_eq!(tick.parent_id, inner_start.span_id);
        assert_eq!(inner_end.kind, EventKind::SpanEnd);
        assert_eq!(inner_end.span_id, inner_start.span_id);
        assert_eq!(after.parent_id, outer_start.span_id);
        assert_eq!(outer_end.span_id, outer_start.span_id);
        for event in &events {
            assert_eq!(event.trace_id, 0xabcd);
        }
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "events drain in seq order");
    }

    #[test]
    fn trace_guard_restores_previous_context() {
        let rec = Recorder::new(16);
        rec.set_enabled(true);
        {
            let _outer = rec.with_trace(7);
            {
                let _inner = rec.with_trace(9);
                rec.point("in_inner", &[]);
            }
            rec.point("back_in_outer", &[]);
        }
        rec.point("no_trace", &[]);
        let events = rec.drain();
        assert_eq!(events[0].trace_id, 9);
        assert_eq!(events[1].trace_id, 7);
        assert_eq!(events[2].trace_id, 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let rec = Recorder::new(4);
        rec.set_enabled(true);
        for _ in 0..10 {
            rec.point("tick", &[]);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[3].seq, 10);
    }

    #[test]
    fn json_lines_escape_and_encode_fields() {
        let rec = Recorder::new(4);
        rec.set_enabled(true);
        rec.point(
            "weird",
            &[
                ("s", "quote\" slash\\ nl\n".into()),
                ("u", 42u64.into()),
                ("f", 1.5f64.into()),
                ("nan", f64::NAN.into()),
                ("i", (-3i64).into()),
            ],
        );
        let line = rec.drain()[0].to_json_line();
        assert!(line.contains("\"name\":\"weird\""));
        assert!(line.contains("\"s\":\"quote\\\" slash\\\\ nl\\n\""));
        assert!(line.contains("\"u\":42"));
        assert!(line.contains("\"f\":1.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"i\":-3"));
        assert!(line.contains(&format!("\"trace\":\"{}\"", trace_hex(0))));
    }

    #[test]
    fn sink_receives_log_lines() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let rec = Recorder::new(4);
        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        rec.set_sink(Some(Box::new(shared.clone())));
        rec.log_line("{\"slow_query\":true}");
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"slow_query\":true}\n");
    }

    #[test]
    fn concurrent_emitters_keep_seq_monotone() {
        let rec = Arc::new(Recorder::new(1 << 14));
        rec.set_enabled(true);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..500usize {
                    let _span = rec.span("work", &[("i", i.into())]);
                    rec.point("tick", &[]);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let events = rec.drain();
        assert_eq!(events.len(), 4 * 500 * 3);
        let mut last = 0;
        for event in &events {
            assert!(event.seq > last, "seq must strictly increase");
            last = event.seq;
        }
    }
}
