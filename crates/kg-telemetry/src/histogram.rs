//! Fixed-bucket histograms with lock-free recording.
//!
//! A [`Histogram`] is a fixed ladder of upper-bound edges plus an overflow
//! bucket, each backed by an `AtomicU64`, so recording is a relaxed
//! fetch-add with no allocation, no sorting, and no lock — the replacement
//! for the sort-the-whole-`Vec` percentile code the service metrics,
//! `BatchStats`, and the load-generator report used to share. Quantiles
//! come from a cumulative walk over the buckets (nearest-rank, resolved to
//! the upper edge of the bucket holding the rank), which agrees with the
//! exact sorted nearest-rank reference up to bucket resolution; the parity
//! test against `kg_aqp::latency_percentile` pins that exactly.
//!
//! Two standard ladders exist: [`Histogram::latency_log2`] (milliseconds
//! in powers of two, 2⁻⁴..2¹⁴ ms) and [`Histogram::error_bound_decades`]
//! (achieved error bounds on the 1-2-5 decade grid the `/metrics` JSON
//! snapshot has always used).

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper edges of the latency ladder: 2⁻⁴ ms (62.5 µs) through 2¹⁴ ms
/// (16.384 s), one bucket per power of two, plus an overflow bucket.
pub const LATENCY_LOG2_EDGES: [f64; 19] = [
    0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0, 8192.0, 16384.0,
];

/// Upper edges of the achieved-error-bound ladder (1-2-5 decades), kept
/// identical to the edges the service's JSON snapshot has exposed since
/// the deadline PR so the `le_*` keys stay stable.
pub const ERROR_BOUND_DECADE_EDGES: [f64; 9] =
    [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0];

/// A fixed-bucket histogram safe for concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over the given ascending, finite, positive
    /// upper edges; one overflow bucket is added past the last edge.
    ///
    /// # Panics
    /// Panics if `edges` is empty, non-ascending, or contains a
    /// non-finite value.
    pub fn with_edges(edges: &[f64]) -> Self {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1], "edges must be strictly ascending");
        }
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "edges must be finite (the overflow bucket is implicit)"
        );
        let counts = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            edges: edges.to_vec(),
            counts,
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The standard latency ladder (milliseconds, log2 buckets).
    pub fn latency_log2() -> Self {
        Self::with_edges(&LATENCY_LOG2_EDGES)
    }

    /// The standard achieved-error-bound ladder (1-2-5 decade buckets).
    pub fn error_bound_decades() -> Self {
        Self::with_edges(&ERROR_BOUND_DECADE_EDGES)
    }

    /// Records one observation. `NaN` is ignored; `+∞` lands in the
    /// overflow bucket; negative values land in the first bucket.
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let index = self.bucket_index(value);
        self.counts[index].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            self.add_sum(value);
        }
    }

    /// Records every finite value of an iterator (non-finite skipped, so
    /// failure markers like `NaN` latencies never count).
    pub fn observe_finite<I: IntoIterator<Item = f64>>(&self, values: I) {
        for value in values {
            if value.is_finite() {
                self.observe(value);
            }
        }
    }

    /// The bucket an observation falls into (`edges.len()` = overflow).
    /// Edges are inclusive upper bounds, matching Prometheus `le`.
    pub fn bucket_index(&self, value: f64) -> usize {
        self.edges
            .iter()
            .position(|edge| value <= *edge)
            .unwrap_or(self.edges.len())
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all finite recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile resolved to the upper edge of the bucket
    /// holding the rank. Returns `0.0` when empty; observations past the
    /// last edge report the last edge (the ladder's saturation point).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the buckets for export and quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
        }
    }

    fn add_sum(&self, value: f64) {
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let hist = Histogram::with_edges(&snap.edges);
        for (slot, count) in hist.counts.iter().zip(&snap.counts) {
            slot.store(*count, Ordering::Relaxed);
        }
        hist.total.store(snap.count(), Ordering::Relaxed);
        hist.sum_bits.store(snap.sum.to_bits(), Ordering::Relaxed);
        hist
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending upper edges; the overflow bucket is implicit.
    pub edges: Vec<f64>,
    /// Per-bucket counts, `edges.len() + 1` long (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of all finite observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given edges (for merging into).
    pub fn empty(edges: &[f64]) -> Self {
        HistogramSnapshot {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            sum: 0.0,
        }
    }

    /// Total observations across all buckets.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Nearest-rank quantile; see [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return self.edge_value(index);
            }
        }
        self.edge_value(self.counts.len() - 1)
    }

    /// The representative (upper-edge) value of a bucket; the overflow
    /// bucket saturates to the last edge.
    pub fn edge_value(&self, index: usize) -> f64 {
        if index < self.edges.len() {
            self.edges[index]
        } else {
            *self.edges.last().unwrap()
        }
    }

    /// Adds another snapshot's counts and sum into this one.
    ///
    /// # Panics
    /// Panics if the edge ladders differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.edges, other.edges, "cannot merge different ladders");
        for (slot, count) in self.counts.iter_mut().zip(&other.counts) {
            *slot += count;
        }
        self.sum += other.sum;
    }

    /// Cumulative `(upper_edge, count)` pairs ending with `(+∞, total)`,
    /// exactly what Prometheus `_bucket` samples need.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut running = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            running += count;
            let edge = if index < self.edges.len() {
                self.edges[index]
            } else {
                f64::INFINITY
            };
            out.push((edge, running));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn buckets_are_inclusive_upper_bounds() {
        let hist = Histogram::with_edges(&[1.0, 2.0, 4.0]);
        assert_eq!(hist.bucket_index(0.5), 0);
        assert_eq!(hist.bucket_index(1.0), 0);
        assert_eq!(hist.bucket_index(1.0001), 1);
        assert_eq!(hist.bucket_index(4.0), 2);
        assert_eq!(hist.bucket_index(4.1), 3);
        assert_eq!(hist.bucket_index(-3.0), 0);
        assert_eq!(hist.bucket_index(f64::INFINITY), 3);
    }

    #[test]
    fn quantiles_resolve_to_bucket_edges() {
        let hist = Histogram::with_edges(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 3.5, 7.0] {
            hist.observe(v);
        }
        // sorted: 0.5 | 1.5 1.6 | 3.0 3.5 | 7.0 → buckets 1,2,2,4,4,8
        assert_eq!(hist.quantile(0.0), 1.0);
        assert_eq!(hist.quantile(0.5), 2.0);
        assert_eq!(hist.quantile(0.75), 4.0);
        assert_eq!(hist.quantile(1.0), 8.0);
        assert_eq!(hist.count(), 6);
        assert!((hist.sum() - 17.1).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::latency_log2().quantile(0.95), 0.0);
    }

    #[test]
    fn nan_is_ignored_and_infinity_saturates() {
        let hist = Histogram::with_edges(&[1.0, 2.0]);
        hist.observe(f64::NAN);
        assert_eq!(hist.count(), 0);
        hist.observe(f64::INFINITY);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.quantile(1.0), 2.0, "overflow saturates to last edge");
        assert_eq!(hist.sum(), 0.0, "non-finite values do not pollute the sum");
    }

    #[test]
    fn observe_finite_skips_failure_markers() {
        let hist = Histogram::latency_log2();
        hist.observe_finite([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn cumulative_ends_with_infinity_total() {
        let hist = Histogram::with_edges(&[1.0, 2.0]);
        hist.observe_finite([0.5, 1.5, 3.0, 9.0]);
        let cumulative = hist.snapshot().cumulative();
        assert_eq!(cumulative.len(), 3);
        assert_eq!(cumulative[0], (1.0, 1));
        assert_eq!(cumulative[1], (2.0, 2));
        assert_eq!(cumulative[2].1, 4);
        assert!(cumulative[2].0.is_infinite());
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::with_edges(&[1.0, 2.0]);
        let b = Histogram::with_edges(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(5.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.counts, vec![1, 1, 1]);
        assert!((merged.sum - 7.0).abs() < 1e-12);
    }

    /// The counter-monotonicity invariant: while concurrent workers are
    /// observing, repeated snapshots never see the total go backwards.
    #[test]
    fn concurrent_observation_counts_are_monotone() {
        let hist = Arc::new(Histogram::latency_log2());
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for worker in 0..4 {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    hist.observe((worker * 37 + i % 97) as f64 * 0.25);
                    i += 1;
                }
                i
            }));
        }
        let mut last_total = 0u64;
        let mut last_counts = vec![0u64; LATENCY_LOG2_EDGES.len() + 1];
        for _ in 0..200 {
            let snap = hist.snapshot();
            let total = snap.count();
            assert!(total >= last_total, "total count went backwards");
            for (now, before) in snap.counts.iter().zip(&last_counts) {
                assert!(now >= before, "a bucket count went backwards");
            }
            last_total = total;
            last_counts = snap.counts;
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(hist.count(), written);
        assert_eq!(hist.snapshot().count(), written);
    }
}
