//! Descriptive statistics of a knowledge graph (the quantities of Table III
//! in the paper: node count, edge count, node types, edge predicates).

use crate::graph::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics for a [`KnowledgeGraph`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of entities.
    pub nodes: usize,
    /// Number of triples.
    pub edges: usize,
    /// Number of distinct node types.
    pub node_types: usize,
    /// Number of distinct edge predicates.
    pub edge_predicates: usize,
    /// Number of distinct numerical attribute names.
    pub attributes: usize,
    /// Average (undirected) degree.
    pub average_degree: f64,
    /// Maximum (undirected) degree.
    pub max_degree: usize,
    /// Fraction of entities with at least one numerical attribute.
    pub attributed_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let nodes = graph.entity_count();
        let mut max_degree = 0usize;
        let mut attributed = 0usize;
        for id in graph.entity_ids() {
            max_degree = max_degree.max(graph.degree(id));
            if !graph.entity(id).attributes.is_empty() {
                attributed += 1;
            }
        }
        Self {
            nodes,
            edges: graph.edge_count(),
            node_types: graph.type_count(),
            edge_predicates: graph.predicate_count(),
            attributes: graph.attribute_count(),
            average_degree: graph.average_degree(),
            max_degree,
            attributed_fraction: if nodes == 0 {
                0.0
            } else {
                attributed as f64 / nodes as f64
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} types, {} predicates, {} attributes, avg degree {:.2}, max degree {}, {:.1}% attributed",
            self.nodes,
            self.edges,
            self.node_types,
            self.edge_predicates,
            self.attributes,
            self.average_degree,
            self.max_degree,
            self.attributed_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_entity("a", &["T1"]);
        let c = b.add_entity("c", &["T2"]);
        let d = b.add_entity("d", &["T2"]);
        b.set_attribute(c, "x", 3.0);
        b.add_edge(a, "p", c);
        b.add_edge(a, "q", d);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.node_types, 2);
        assert_eq!(s.edge_predicates, 2);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.average_degree - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.attributed_fraction - 1.0 / 3.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("3 nodes"));
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.average_degree, 0.0);
        assert_eq!(s.attributed_fraction, 0.0);
    }
}
