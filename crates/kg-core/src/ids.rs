//! Strongly-typed identifiers for the four vocabularies of a knowledge graph.
//!
//! All identifiers are thin `u32` newtypes: the datasets targeted by the paper
//! (DBpedia / Freebase / YAGO2) have at most a few million nodes, and `u32`
//! keeps adjacency lists and samples compact (see the type-size guidance in
//! the Rust performance book).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index, usable to address parallel arrays.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize, "id overflow");
                Self(raw as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an entity (a node of the knowledge graph).
    EntityId,
    "e"
);
define_id!(
    /// Identifier of an edge predicate (e.g. `product`, `assembly`).
    PredicateId,
    "p"
);
define_id!(
    /// Identifier of an entity type (e.g. `Automobile`, `Country`).
    TypeId,
    "t"
);
define_id!(
    /// Identifier of a numerical attribute (e.g. `price`, `horsepower`).
    AttrId,
    "a"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw_index() {
        let id = EntityId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(EntityId::from(42usize), id);
        assert_eq!(EntityId::from(42u32), id);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = PredicateId::new(1);
        let b = PredicateId::new(2);
        assert!(a < b);
        let set: HashSet<PredicateId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(format!("{}", EntityId::new(7)), "e7");
        assert_eq!(format!("{}", PredicateId::new(7)), "p7");
        assert_eq!(format!("{}", TypeId::new(7)), "t7");
        assert_eq!(format!("{}", AttrId::new(7)), "a7");
        assert_eq!(format!("{:?}", AttrId::new(7)), "a7");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EntityId::default().raw(), 0);
    }
}
