//! Secondary indexes: name → entity and type → entities.

use crate::entity::Entity;
use crate::ids::{EntityId, TypeId};
use std::collections::HashMap;

/// Unique-name index over entities.
///
/// The paper assumes each node has a unique name (entity disambiguation is
/// applied upstream); `get` therefore returns at most one entity.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    map: HashMap<String, EntityId>,
}

impl NameIndex {
    /// Builds the index from a slice of entities (indexed by position).
    pub fn build(entities: &[Entity]) -> Self {
        let mut map = HashMap::with_capacity(entities.len());
        for (i, e) in entities.iter().enumerate() {
            map.insert(e.name.clone(), EntityId::from(i));
        }
        Self { map }
    }

    /// Looks up an entity by exact name.
    pub fn get(&self, name: &str) -> Option<EntityId> {
        self.map.get(name).copied()
    }

    /// Inserts a mapping; returns the previous id when the name already existed.
    pub fn insert(&mut self, name: String, id: EntityId) -> Option<EntityId> {
        self.map.insert(name, id)
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Type → entity-list index used to enumerate candidate answers of a type and
/// to seed baseline engines.
#[derive(Debug, Clone, Default)]
pub struct TypeIndex {
    map: HashMap<TypeId, Vec<EntityId>>,
}

impl TypeIndex {
    /// Builds the index from a slice of entities (indexed by position).
    pub fn build(entities: &[Entity]) -> Self {
        let mut map: HashMap<TypeId, Vec<EntityId>> = HashMap::new();
        for (i, e) in entities.iter().enumerate() {
            for &ty in &e.types {
                map.entry(ty).or_default().push(EntityId::from(i));
            }
        }
        Self { map }
    }

    /// All entities carrying type `ty` (empty slice when none).
    pub fn entities_with_type(&self, ty: TypeId) -> &[EntityId] {
        self.map.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Records that entity `id` carries type `ty`, keeping the per-type list
    /// sorted ascending — the order [`Self::build`] produces, so incremental
    /// upserts ([`crate::delta`]) and a from-scratch rebuild agree. No-op
    /// when the pair is already indexed.
    pub fn add(&mut self, ty: TypeId, id: EntityId) {
        let list = self.map.entry(ty).or_default();
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
    }

    /// All entities carrying at least one of `types`, de-duplicated.
    pub fn entities_with_any_type(&self, types: &[TypeId]) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = types
            .iter()
            .flat_map(|t| self.entities_with_type(*t).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of distinct indexed types.
    pub fn type_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entities() -> Vec<Entity> {
        vec![
            Entity::new("Germany", vec![TypeId::new(0)]),
            Entity::new("BMW_320", vec![TypeId::new(1), TypeId::new(2)]),
            Entity::new("Audi_TT", vec![TypeId::new(1)]),
        ]
    }

    #[test]
    fn name_index_lookup() {
        let idx = NameIndex::build(&entities());
        assert_eq!(idx.get("Germany"), Some(EntityId::new(0)));
        assert_eq!(idx.get("Audi_TT"), Some(EntityId::new(2)));
        assert_eq!(idx.get("France"), None);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn type_index_lists_entities() {
        let idx = TypeIndex::build(&entities());
        assert_eq!(
            idx.entities_with_type(TypeId::new(1)),
            &[EntityId::new(1), EntityId::new(2)]
        );
        assert_eq!(idx.entities_with_type(TypeId::new(9)), &[] as &[EntityId]);
        assert_eq!(idx.type_count(), 3);
    }

    #[test]
    fn any_type_union_is_deduped() {
        let idx = TypeIndex::build(&entities());
        let got = idx.entities_with_any_type(&[TypeId::new(1), TypeId::new(2)]);
        assert_eq!(got, vec![EntityId::new(1), EntityId::new(2)]);
    }
}
