//! Edge records (subject, predicate, object).

use crate::ids::{EntityId, PredicateId};
use serde::{Deserialize, Serialize};

/// A directed, labelled edge of the knowledge graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Source entity.
    pub subject: EntityId,
    /// Edge label.
    pub predicate: PredicateId,
    /// Target entity.
    pub object: EntityId,
}

impl Triple {
    /// Creates a new triple.
    pub fn new(subject: EntityId, predicate: PredicateId, object: EntityId) -> Self {
        Self {
            subject,
            predicate,
            object,
        }
    }

    /// Returns the triple with subject and object swapped (same predicate).
    pub fn reversed(self) -> Self {
        Self {
            subject: self.object,
            predicate: self.predicate,
            object: self.subject,
        }
    }

    /// True if this edge touches `node` on either end.
    pub fn touches(&self, node: EntityId) -> bool {
        self.subject == node || self.object == node
    }

    /// Given one endpoint, returns the other; `None` when `node` is not an
    /// endpoint of this triple.
    pub fn other_endpoint(&self, node: EntityId) -> Option<EntityId> {
        if self.subject == node {
            Some(self.object)
        } else if self.object == node {
            Some(self.subject)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(EntityId::new(s), PredicateId::new(p), EntityId::new(o))
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let tr = t(1, 2, 3);
        let rev = tr.reversed();
        assert_eq!(rev.subject, EntityId::new(3));
        assert_eq!(rev.object, EntityId::new(1));
        assert_eq!(rev.predicate, PredicateId::new(2));
        assert_eq!(rev.reversed(), tr);
    }

    #[test]
    fn touches_and_other_endpoint() {
        let tr = t(1, 0, 2);
        assert!(tr.touches(EntityId::new(1)));
        assert!(tr.touches(EntityId::new(2)));
        assert!(!tr.touches(EntityId::new(3)));
        assert_eq!(tr.other_endpoint(EntityId::new(1)), Some(EntityId::new(2)));
        assert_eq!(tr.other_endpoint(EntityId::new(2)), Some(EntityId::new(1)));
        assert_eq!(tr.other_endpoint(EntityId::new(9)), None);
    }
}
