//! Length-prefixed wire framing for the distributed shard protocol.
//!
//! A frame is the unit the coordinator and `kg-shard` servers exchange on
//! a connection: a fixed 9-byte header — magic `"KGF1"`, one codec byte,
//! a `u32` little-endian payload length — followed by the payload bytes.
//! Two codecs share the framing: [`Codec::Json`] (the pinned JSON wire
//! format, debuggable with a terminal) and [`Codec::Binary`] (a compact
//! field-ordered encoding for the latency-sensitive per-round fan-out).
//!
//! The decoder fails closed: a bad magic, an unknown codec byte, a length
//! past [`MAX_FRAME_LEN`], or a connection that ends mid-frame all become
//! structured [`FrameError`]s, never panics. A hostile length prefix
//! cannot force a large allocation — the length is validated against the
//! cap before any payload buffer exists, and the payload is then read in
//! bounded chunks so a peer that lies about the length costs at most one
//! chunk of memory beyond the bytes it actually sent.
//!
//! [`ByteWriter`] and [`ByteReader`] are the primitives binary payloads
//! are built from: fixed-width little-endian integers, `f64` as IEEE-754
//! bits (so values — including NaN and infinities — round-trip bitwise),
//! and length-prefixed strings/sequences whose declared lengths are
//! checked against the bytes actually present before allocating.

use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic that opens every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"KGF1";

/// Hard cap on a frame payload (64 MiB). Per-round shard messages are
/// kilobytes; anything near this cap is a corrupt or hostile peer.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Payload bytes are read in chunks of this size, so a length prefix that
/// overstates the payload cannot reserve more than one chunk beyond the
/// bytes the peer actually sent.
const READ_CHUNK: usize = 64 * 1024;

/// Which encoding the frame payload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// The pinned JSON wire format (UTF-8 text payload).
    Json,
    /// The compact field-ordered binary encoding.
    Binary,
}

impl Codec {
    /// The codec's on-wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Codec::Json => 0,
            Codec::Binary => 1,
        }
    }

    /// Decodes an on-wire codec byte; unknown values are an error, not a
    /// default, so a skewed peer is detected at the frame boundary.
    pub fn from_byte(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(Codec::Json),
            1 => Ok(Codec::Binary),
            other => Err(FrameError::UnknownCodec(other)),
        }
    }
}

/// Why a frame could not be read or written. Every variant names what the
/// decoder saw so transport-level logs can distinguish a truncated
/// connection from a hostile or skewed peer.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`FRAME_MAGIC`] — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadMagic([u8; 4]),
    /// The codec byte was not a known [`Codec`].
    UnknownCodec(u8),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The length the header declared.
        declared: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The stream ended before the declared frame was complete.
    Truncated {
        /// Bytes the frame (header + payload) still owed.
        expected: usize,
        /// Bytes actually received for the incomplete portion.
        got: usize,
    },
    /// Underlying I/O failure (connection reset, timeout, …).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(bytes) => {
                write!(f, "bad frame magic {bytes:?} (expected {FRAME_MAGIC:?})")
            }
            FrameError::UnknownCodec(b) => write!(f, "unknown frame codec byte {b}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame length {declared} exceeds cap {max}")
            }
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: expected {expected} more bytes, got {got}"
                )
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) to `w`. Fails with
/// [`FrameError::Oversized`] before touching the stream if the payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, codec: Codec, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: payload.len() as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut header = [0u8; 9];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = codec.to_byte();
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF mid-read to
/// [`FrameError::Truncated`] so callers see one structured shape for
/// "the peer stopped talking mid-frame".
fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: buf.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from `r`, returning the codec and payload bytes.
///
/// The header is validated (magic, codec, length cap) before any payload
/// allocation; the payload is then read in `READ_CHUNK`-sized steps, so
/// memory consumption tracks bytes actually received, not the declared
/// length.
pub fn read_frame(r: &mut impl Read) -> Result<(Codec, Vec<u8>), FrameError> {
    let mut header = [0u8; 9];
    read_exact_or_truncated(r, &mut header)?;
    if header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let codec = Codec::from_byte(header[4])?;
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut payload = Vec::new();
    while payload.len() < len {
        let chunk = READ_CHUNK.min(len - payload.len());
        let start = payload.len();
        payload.resize(start + chunk, 0);
        if let Err(e) = read_exact_or_truncated(r, &mut payload[start..]) {
            return Err(match e {
                FrameError::Truncated { got, .. } => FrameError::Truncated {
                    expected: len - start,
                    got,
                },
                other => other,
            });
        }
    }
    Ok((codec, payload))
}

/// Where in a binary payload decoding failed, and why. Produced by
/// [`ByteReader`]; never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the payload where the failure was detected.
    pub offset: usize,
    /// What was expected or what was malformed.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "binary decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DecodeError {}

/// Builds a binary payload: fixed-width little-endian primitives and
/// length-prefixed variable-size fields, in the field order the matching
/// [`ByteReader`] calls replay.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian), so
    /// every value — NaN payloads included — round-trips bitwise.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a string as a `u32` byte length followed by its UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a sequence length prefix (`u32`); the caller then appends
    /// that many elements.
    pub fn put_len(&mut self, len: usize) {
        self.put_u32(len as u32);
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Decodes a binary payload written by [`ByteWriter`]. Every read is
/// bounds-checked against the bytes actually present: a declared string or
/// sequence length larger than the remaining buffer is a [`DecodeError`],
/// never an allocation of the declared size.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "{what}: need {n} bytes, only {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool; any byte other than 0 or 1 is an error.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError {
                offset: self.pos - 1,
                message: format!("bool: invalid byte {other}"),
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string. The declared length is
    /// checked against the remaining bytes before any copy, and the bytes
    /// must be valid UTF-8.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.err(format!(
                "string length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let offset = self.pos;
        let bytes = self.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|e| DecodeError {
            offset,
            message: format!("invalid utf-8 in string: {e}"),
        })
    }

    /// Reads a sequence length prefix and validates that `len *
    /// min_elem_bytes` elements could actually fit in the remaining
    /// buffer, so a hostile count cannot pre-size a huge `Vec`.
    pub fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, DecodeError> {
        let len = self.u32()? as usize;
        let need = len.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(self.err(format!(
                "{what}: declared {len} elements (≥ {need} bytes) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Fails unless the whole payload was consumed — trailing garbage
    /// after a well-formed message is a skewed peer, not padding.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError {
                offset: self.pos,
                message: format!("{} trailing bytes after message", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_both_codecs() {
        for codec in [Codec::Json, Codec::Binary] {
            let payload = b"{\"kind\":\"ping\"}".to_vec();
            let mut wire = Vec::new();
            write_frame(&mut wire, codec, &payload).unwrap();
            let (got_codec, got) = read_frame(&mut Cursor::new(&wire)).unwrap();
            assert_eq!(got_codec, codec);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Codec::Binary, &[]).unwrap();
        let (_, got) = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn bad_magic_is_structured() {
        let wire = b"NOPE\x00\x00\x00\x00\x00".to_vec();
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unknown_codec_is_structured() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(9);
        wire.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::UnknownCodec(9)) => {}
            other => panic!("expected UnknownCodec(9), got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(0);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u64::from(u32::MAX));
                assert_eq!(max, MAX_FRAME_LEN as u64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_are_structured() {
        // Header cut short.
        match read_frame(&mut Cursor::new(b"KGF1\x00".to_vec())) {
            Err(FrameError::Truncated {
                expected: 9,
                got: 5,
            }) => {}
            other => panic!("expected Truncated header, got {other:?}"),
        }
        // Payload cut short: declares 10 bytes, sends 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(1);
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Truncated {
                expected: 10,
                got: 3,
            }) => {}
            other => panic!("expected Truncated payload, got {other:?}"),
        }
    }

    #[test]
    fn byte_primitives_round_trip_including_nan() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_str("stratum κ");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "stratum κ");
        r.finish().unwrap();
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // String claiming 4 GiB of content in a 10-byte buffer.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());

        // Sequence claiming u32::MAX 8-byte elements.
        let mut w = ByteWriter::new();
        w.put_len(u32::MAX as usize);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.len(8, "draws").is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0xFF);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_errors() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool().is_err());

        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
    }
}
