//! n-bounded neighbourhood exploration and path enumeration.
//!
//! Graph queries exhibit strong access locality: most correct answers of a
//! query lie within a small number of hops of the specific entity (the paper
//! finds that `n = 3` retrieves ~99% of correct answers). Both the SSB
//! baseline and the semantic-aware random walk therefore restrict themselves
//! to the *n-bounded subgraph* `G'` around the mapping node `u_s`.

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, PredicateId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// A simple path in the knowledge graph, starting at `source` and following
/// `steps` of `(predicate, next node)` pairs.
///
/// Paths are the unit over which the semantic similarity of a subgraph match
/// is defined (Eq. 2 of the paper): the similarity of a path is the geometric
/// mean of the predicate similarities of its edges to the query edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// First node of the path (typically the mapping node `u_s`).
    pub source: EntityId,
    /// `(predicate, node)` steps; the last node is the path target.
    pub steps: Vec<(PredicateId, EntityId)>,
}

impl Path {
    /// A zero-length path anchored at `source`.
    pub fn trivial(source: EntityId) -> Self {
        Self {
            source,
            steps: Vec::new(),
        }
    }

    /// Number of edges on the path (`l` in Eq. 2).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a zero-length path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The last node of the path (equals `source` for a trivial path).
    pub fn target(&self) -> EntityId {
        self.steps.last().map(|(_, n)| *n).unwrap_or(self.source)
    }

    /// The predicates along the path, in order.
    pub fn predicates(&self) -> impl Iterator<Item = PredicateId> + '_ {
        self.steps.iter().map(|(p, _)| *p)
    }

    /// The nodes along the path including the source, in order.
    pub fn nodes(&self) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.steps.len() + 1);
        out.push(self.source);
        out.extend(self.steps.iter().map(|(_, n)| *n));
        out
    }

    /// Extends the path by one step, returning the new path.
    pub fn extended(&self, predicate: PredicateId, node: EntityId) -> Self {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.extend_from_slice(&self.steps);
        steps.push((predicate, node));
        Self {
            source: self.source,
            steps,
        }
    }

    /// True when the path already visits `node` (used to keep paths simple).
    pub fn visits(&self, node: EntityId) -> bool {
        self.source == node || self.steps.iter().any(|(_, n)| *n == node)
    }
}

/// The set of nodes within `radius` hops of `start`, with their hop distance.
#[derive(Clone, Debug)]
pub struct BoundedSubgraph {
    /// BFS origin (the mapping node `u_s`).
    pub start: EntityId,
    /// Hop bound `n`.
    pub radius: u32,
    dist: HashMap<EntityId, u32>,
}

impl BoundedSubgraph {
    /// Reassembles a scope from its parts — the decode path of the binary
    /// snapshot format (`kg_core::snapshot`), where prepared samplers store
    /// their scope as sorted `(node, distance)` pairs. A scope rebuilt from
    /// [`Self::sorted_distances`] is observationally identical to the BFS
    /// original (hash iteration order is never exposed: every reader sorts).
    pub fn from_parts(
        start: EntityId,
        radius: u32,
        nodes: impl IntoIterator<Item = (EntityId, u32)>,
    ) -> Self {
        Self {
            start,
            radius,
            dist: nodes.into_iter().collect(),
        }
    }

    /// The `(node, distance)` pairs of the scope, sorted by node id — the
    /// deterministic serialization order used by snapshots.
    pub fn sorted_distances(&self) -> Vec<(EntityId, u32)> {
        let mut v: Vec<(EntityId, u32)> = self.dist.iter().map(|(&n, &d)| (n, d)).collect();
        v.sort_unstable();
        v
    }

    /// True when `node` lies within the bounded subgraph.
    pub fn contains(&self, node: EntityId) -> bool {
        self.dist.contains_key(&node)
    }

    /// Hop distance of `node` from the origin, if the node is in scope.
    pub fn distance(&self, node: EntityId) -> Option<u32> {
        self.dist.get(&node).copied()
    }

    /// Number of nodes in scope (including the origin).
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when only the origin is in scope (radius 0 on an isolated node).
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Iterates the nodes in scope in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.dist.keys().copied()
    }

    /// Collects the nodes in scope, sorted by id (deterministic order for
    /// samplers and tests).
    pub fn sorted_nodes(&self) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self.dist.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of edges whose endpoints are both in scope. Each underlying
    /// triple is counted once.
    pub fn induced_edge_count(&self, graph: &KnowledgeGraph) -> usize {
        graph
            .triples()
            .iter()
            .filter(|t| self.contains(t.subject) && self.contains(t.object))
            .count()
    }
}

/// Breadth-first search returning every node within `radius` hops of `start`,
/// paired with its distance. `start` itself is included at distance 0.
pub fn bounded_nodes(graph: &KnowledgeGraph, start: EntityId, radius: u32) -> Vec<(EntityId, u32)> {
    let sub = bounded_subgraph(graph, start, radius);
    let mut v: Vec<(EntityId, u32)> = sub.dist.into_iter().collect();
    v.sort_unstable();
    v
}

/// Builds the [`BoundedSubgraph`] of radius `radius` around `start`.
pub fn bounded_subgraph(graph: &KnowledgeGraph, start: EntityId, radius: u32) -> BoundedSubgraph {
    let mut dist: HashMap<EntityId, u32> = HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(start, 0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if d == radius {
            continue;
        }
        for edge in graph.neighbors(u) {
            if let Entry::Vacant(slot) = dist.entry(edge.neighbor) {
                slot.insert(d + 1);
                queue.push_back(edge.neighbor);
            }
        }
    }
    BoundedSubgraph {
        start,
        radius,
        dist,
    }
}

/// Enumerates simple paths from `source` to `target` of length at most
/// `max_len`, stopping after `limit` paths have been produced.
///
/// This is the exhaustive enumeration that makes the SSB baseline expensive
/// (`O(m^n)` per candidate answer); the sampling–estimation engine avoids it.
pub fn enumerate_paths(
    graph: &KnowledgeGraph,
    source: EntityId,
    target: EntityId,
    max_len: usize,
    limit: usize,
) -> Vec<Path> {
    enumerate_paths_filtered(graph, source, target, max_len, limit, |_| true)
}

/// Like [`enumerate_paths`], but a node may only appear as an *interior*
/// path node when `allow_intermediate` accepts it (endpoints are exempt).
///
/// Pruning during the DFS — rather than filtering the result — matters under
/// the `limit` budget: a dense graph can otherwise exhaust the budget with
/// paths the caller would discard, hiding admissible ones.
pub fn enumerate_paths_filtered<F>(
    graph: &KnowledgeGraph,
    source: EntityId,
    target: EntityId,
    max_len: usize,
    limit: usize,
    mut allow_intermediate: F,
) -> Vec<Path>
where
    F: FnMut(EntityId) -> bool,
{
    let mut out = Vec::new();
    if limit == 0 || max_len == 0 {
        return out;
    }
    let mut stack = vec![Path::trivial(source)];
    while let Some(path) = stack.pop() {
        if out.len() >= limit {
            break;
        }
        let tail = path.target();
        for edge in graph.neighbors(tail) {
            if path.visits(edge.neighbor) {
                continue;
            }
            if edge.neighbor == target {
                out.push(path.extended(edge.predicate, edge.neighbor));
                if out.len() >= limit {
                    break;
                }
            } else if path.len() + 1 < max_len && allow_intermediate(edge.neighbor) {
                stack.push(path.extended(edge.predicate, edge.neighbor));
            }
        }
    }
    out
}

/// Enumerates every simple path of length at most `max_len` starting at
/// `source` whose endpoint satisfies `is_target`, visiting at most
/// `path_budget` partial paths. Used by the SSB baseline to score all
/// candidate answers in one sweep.
pub fn enumerate_paths_to<F>(
    graph: &KnowledgeGraph,
    source: EntityId,
    max_len: usize,
    path_budget: usize,
    mut is_target: F,
) -> Vec<Path>
where
    F: FnMut(EntityId) -> bool,
{
    let mut out = Vec::new();
    if max_len == 0 {
        return out;
    }
    let mut explored = 0usize;
    let mut stack = vec![Path::trivial(source)];
    while let Some(path) = stack.pop() {
        if explored >= path_budget {
            break;
        }
        let tail = path.target();
        for edge in graph.neighbors(tail) {
            if path.visits(edge.neighbor) {
                continue;
            }
            explored += 1;
            if explored >= path_budget {
                break;
            }
            let next = path.extended(edge.predicate, edge.neighbor);
            if is_target(edge.neighbor) {
                out.push(next.clone());
            }
            if next.len() < max_len {
                stack.push(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Builds the running example of Fig. 1: cars linked to Germany via
    /// structurally different paths.
    fn example() -> (KnowledgeGraph, EntityId) {
        let mut b = GraphBuilder::new();
        let germany = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let audi = b.add_entity("Audi_TT", &["Automobile"]);
        let porsche911 = b.add_entity("Porsche_911", &["Automobile"]);
        let porsche = b.add_entity("Porsche", &["Company"]);
        let kia = b.add_entity("KIA_K5", &["Automobile"]);
        let schreyer = b.add_entity("Peter_Schreyer", &["Person"]);
        b.add_edge(germany, "product", porsche911);
        b.add_edge(bmw, "assembly", germany);
        b.add_edge(audi, "assembly", vw);
        b.add_edge(vw, "country", germany);
        b.add_edge(porsche911, "manufacturer", porsche);
        b.add_edge(porsche, "country", germany);
        b.add_edge(kia, "designer", schreyer);
        b.add_edge(schreyer, "nationality", germany);
        let g = b.build();
        (g, germany)
    }

    #[test]
    fn path_accessors() {
        let p = Path::trivial(EntityId::new(0));
        assert!(p.is_empty());
        assert_eq!(p.target(), EntityId::new(0));
        let p = p.extended(PredicateId::new(1), EntityId::new(2));
        let p = p.extended(PredicateId::new(3), EntityId::new(4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.target(), EntityId::new(4));
        assert_eq!(
            p.nodes(),
            vec![EntityId::new(0), EntityId::new(2), EntityId::new(4)]
        );
        assert_eq!(
            p.predicates().collect::<Vec<_>>(),
            vec![PredicateId::new(1), PredicateId::new(3)]
        );
        assert!(p.visits(EntityId::new(2)));
        assert!(!p.visits(EntityId::new(9)));
    }

    #[test]
    fn bounded_subgraph_distances() {
        let (g, germany) = example();
        let sub = bounded_subgraph(&g, germany, 1);
        // 1 hop: BMW_320, Volkswagen, Porsche, Peter_Schreyer, Porsche_911.
        assert_eq!(sub.len(), 6);
        assert_eq!(sub.distance(germany), Some(0));
        let audi = g.entity_by_name("Audi_TT").unwrap();
        assert!(!sub.contains(audi));

        let sub2 = bounded_subgraph(&g, germany, 2);
        assert!(sub2.contains(audi));
        assert_eq!(sub2.distance(audi), Some(2));
        assert_eq!(sub2.len(), g.entity_count());
        assert_eq!(sub2.radius, 2);
        assert!(sub2.induced_edge_count(&g) == g.edge_count());
    }

    #[test]
    fn bounded_nodes_sorted_and_complete() {
        let (g, germany) = example();
        let nodes = bounded_nodes(&g, germany, 3);
        assert_eq!(nodes.len(), g.entity_count());
        assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(nodes[0], (germany, 0));
    }

    #[test]
    fn enumerate_paths_finds_all_simple_paths() {
        let (g, germany) = example();
        let audi = g.entity_by_name("Audi_TT").unwrap();
        let paths = enumerate_paths(&g, germany, audi, 3, 100);
        // Only one simple path Germany -country- Volkswagen -assembly- Audi_TT.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[0].target(), audi);

        let porsche911 = g.entity_by_name("Porsche_911").unwrap();
        let paths = enumerate_paths(&g, germany, porsche911, 3, 100);
        // Direct `product` edge plus Germany-country-Porsche-manufacturer-911.
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.len() == 1));
        assert!(paths.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn enumerate_paths_respects_limits() {
        let (g, germany) = example();
        let porsche911 = g.entity_by_name("Porsche_911").unwrap();
        let paths = enumerate_paths(&g, germany, porsche911, 3, 1);
        assert_eq!(paths.len(), 1);
        assert!(enumerate_paths(&g, germany, porsche911, 0, 10).is_empty());
    }

    #[test]
    fn enumerate_paths_to_targets_by_predicate() {
        let (g, germany) = example();
        let auto = g.type_id("Automobile").unwrap();
        let paths = enumerate_paths_to(&g, germany, 3, 10_000, |n| g.entity(n).has_type(auto));
        // Every automobile is reachable within 3 hops by at least one path.
        let targets: std::collections::HashSet<EntityId> =
            paths.iter().map(|p| p.target()).collect();
        assert_eq!(targets.len(), 4);
    }
}
