//! Entity (node) records.

use crate::attributes::AttributeSet;
use crate::ids::TypeId;
use serde::{Deserialize, Serialize};

/// A node of the knowledge graph: a named entity with one or more types and a
/// set of numerical attributes (Definition 1).
///
/// Names are assumed unique within a graph — the paper relies on entity
/// disambiguation having been applied upstream, and [`crate::GraphBuilder`]
/// enforces uniqueness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Entity {
    /// Unique human-readable name, e.g. `"BMW_320"`.
    pub name: String,
    /// Type ids, sorted ascending (e.g. `Automobile`, `MeanOfTransportation`).
    pub types: Vec<TypeId>,
    /// Numerical attributes, e.g. `price`, `horsepower`.
    pub attributes: AttributeSet,
}

impl Entity {
    /// Creates an entity with the given name and sorted, de-duplicated types.
    pub fn new(name: impl Into<String>, mut types: Vec<TypeId>) -> Self {
        types.sort_unstable();
        types.dedup();
        Self {
            name: name.into(),
            types,
            attributes: AttributeSet::new(),
        }
    }

    /// True if the entity carries type `ty`.
    pub fn has_type(&self, ty: TypeId) -> bool {
        self.types.binary_search(&ty).is_ok()
    }

    /// True if the entity shares at least one type with `types`
    /// (the candidate-answer condition of Definition 4).
    pub fn shares_type(&self, types: &[TypeId]) -> bool {
        types.iter().any(|t| self.has_type(*t))
    }

    /// Adds a type, keeping the list sorted and de-duplicated.
    pub fn add_type(&mut self, ty: TypeId) {
        if let Err(pos) = self.types.binary_search(&ty) {
            self.types.insert(pos, ty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_sorted_and_deduped() {
        let e = Entity::new(
            "BMW_X6",
            vec![TypeId::new(3), TypeId::new(1), TypeId::new(3)],
        );
        assert_eq!(e.types, vec![TypeId::new(1), TypeId::new(3)]);
        assert!(e.has_type(TypeId::new(1)));
        assert!(!e.has_type(TypeId::new(2)));
    }

    #[test]
    fn shares_type_checks_intersection() {
        let e = Entity::new("Audi_TT", vec![TypeId::new(5)]);
        assert!(e.shares_type(&[TypeId::new(4), TypeId::new(5)]));
        assert!(!e.shares_type(&[TypeId::new(4)]));
        assert!(!e.shares_type(&[]));
    }

    #[test]
    fn add_type_keeps_order() {
        let mut e = Entity::new("Porsche_911", vec![TypeId::new(7)]);
        e.add_type(TypeId::new(2));
        e.add_type(TypeId::new(7));
        assert_eq!(e.types, vec![TypeId::new(2), TypeId::new(7)]);
    }
}
