//! Error type shared by the storage substrate.

use std::fmt;
use std::io;

/// Result alias used across `kg-core`.
pub type KgResult<T> = Result<T, KgError>;

/// Errors produced while building, loading or querying a knowledge graph.
#[derive(Debug)]
pub enum KgError {
    /// An entity name was looked up but does not exist in the graph.
    UnknownEntity(String),
    /// An entity id is out of range for this graph.
    InvalidEntityId(u32),
    /// A predicate name was looked up but does not exist.
    UnknownPredicate(String),
    /// A type name was looked up but does not exist.
    UnknownType(String),
    /// An attribute name was looked up but does not exist.
    UnknownAttribute(String),
    /// A duplicate entity name was inserted where uniqueness is required.
    DuplicateEntity(String),
    /// A line of a serialized graph file could not be parsed.
    Parse {
        /// 1-based line number in the input file.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// A sampling weight was NaN, infinite or negative, so no draw
    /// distribution can be built from the answer set. Raised at *prepare*
    /// time (sampler preparation / query planning) so the draw hot path
    /// never has to compare against a NaN cumulative weight.
    DegenerateWeights {
        /// Index of the offending weight within the answer distribution.
        index: usize,
        /// The offending weight value.
        weight: f64,
    },
    /// A binary snapshot failed validation or (de)serialization: truncated
    /// file, checksum mismatch, format version skew, misaligned or
    /// out-of-bounds section, or structurally inconsistent content. The
    /// loader fails closed with this error — a bad snapshot never panics
    /// and never produces a partially-initialised graph.
    Snapshot {
        /// The failing section (`"header"`, `"toc"`, or a section name such
        /// as `"csr_edges"` — see `snapshot::section_kind::name`).
        section: String,
        /// What failed, with stored-vs-computed detail where applicable.
        message: String,
    },
    /// Underlying I/O failure while loading or saving.
    Io(io::Error),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::UnknownEntity(name) => write!(f, "unknown entity: {name:?}"),
            KgError::InvalidEntityId(id) => write!(f, "entity id out of range: {id}"),
            KgError::UnknownPredicate(name) => write!(f, "unknown predicate: {name:?}"),
            KgError::UnknownType(name) => write!(f, "unknown type: {name:?}"),
            KgError::UnknownAttribute(name) => write!(f, "unknown attribute: {name:?}"),
            KgError::DuplicateEntity(name) => write!(f, "duplicate entity name: {name:?}"),
            KgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            KgError::DegenerateWeights { index, weight } => write!(
                f,
                "degenerate sampling weight at answer index {index}: {weight} \
                 (weights must be finite and non-negative)"
            ),
            KgError::Snapshot { section, message } => {
                write!(f, "snapshot section {section:?}: {message}")
            }
            KgError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KgError {
    fn from(e: io::Error) -> Self {
        KgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = KgError::UnknownEntity("Germany".into());
        assert!(e.to_string().contains("Germany"));
        let e = KgError::Parse {
            line: 12,
            message: "bad triple".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = KgError::DegenerateWeights {
            index: 3,
            weight: f64::NAN,
        };
        assert!(e.to_string().contains("index 3"), "{e}");
        assert!(e.to_string().contains("NaN"), "{e}");
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        use std::error::Error;
        let e: KgError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("nope"));
    }
}
