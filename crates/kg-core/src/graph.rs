//! The immutable, query-optimised knowledge graph.

use crate::attributes::AttrValue;
use crate::entity::Entity;
use crate::error::{KgError, KgResult};
use crate::ids::{AttrId, EntityId, PredicateId, TypeId};
use crate::index::{NameIndex, TypeIndex};
use crate::interner::StringInterner;
use crate::predicate::PredicateVocabulary;
use crate::triple::Triple;

/// Orientation of an edge relative to the node whose adjacency list contains it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The node is the subject of the underlying triple.
    Outgoing,
    /// The node is the object of the underlying triple.
    Incoming,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
        }
    }
}

/// One entry of a node's adjacency list.
///
/// The paper's random walk and subgraph-match semantics treat the graph as
/// undirected ("edge-to-path mapping"), so each triple contributes an entry to
/// both endpoints' adjacency lists; `direction` records the original
/// orientation for consumers that need it (e.g. the SPARQL-like exact engine).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The node at the other end of the edge.
    pub neighbor: EntityId,
    /// The edge predicate.
    pub predicate: PredicateId,
    /// Orientation relative to the owning node.
    pub direction: Direction,
}

/// The immutable knowledge graph (Definition 1).
///
/// Built with [`crate::GraphBuilder`]; once built, the structure is read-only
/// and cheap to share across threads (`&KnowledgeGraph` is `Sync`).
///
/// Adjacency is stored in compressed-sparse-row (CSR) form: one flat edge
/// array plus a per-entity offset array, so [`Self::neighbors`] is a
/// zero-cost slice into a single allocation and a full-graph traversal is a
/// linear scan — the access pattern the random-walk convergence loop
/// (Eq. 6) is bound by.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    pub(crate) entities: Vec<Entity>,
    /// All adjacency entries, grouped by owning entity (CSR values).
    pub(crate) edges: Vec<EdgeRef>,
    /// CSR offsets: entity `i` owns `edges[offsets[i]..offsets[i + 1]]`.
    /// Length is `entities.len() + 1`; stored as `u32` to keep the array
    /// cache-resident (2·|E_G| adjacency entries must fit in `u32`).
    pub(crate) offsets: Vec<u32>,
    pub(crate) triples: Vec<Triple>,
    pub(crate) predicates: PredicateVocabulary,
    pub(crate) types: StringInterner,
    pub(crate) attrs: StringInterner,
    pub(crate) name_index: NameIndex,
    pub(crate) type_index: TypeIndex,
    /// Pending mutation overlay, if any (see [`crate::delta`]); boxed so the
    /// common frozen graph pays one pointer. `None` right after a build or a
    /// [`Self::compact`].
    pub(crate) delta: Option<Box<crate::delta::GraphDelta>>,
}

impl KnowledgeGraph {
    // ------------------------------------------------------------------
    // Size and basic access
    // ------------------------------------------------------------------

    /// Number of entities (|V_G|).
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of live triples (|E_G|), including pending overlay inserts and
    /// excluding tombstoned edges.
    pub fn edge_count(&self) -> usize {
        self.delta_live_edges().unwrap_or(self.triples.len())
    }

    /// Number of distinct node types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of distinct edge predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct numerical attribute names.
    pub fn attribute_count(&self) -> usize {
        self.attrs.len()
    }

    /// Returns the entity record for `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range; use [`Self::try_entity`] for a
    /// fallible variant.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Fallible entity lookup.
    pub fn try_entity(&self, id: EntityId) -> KgResult<&Entity> {
        self.entities
            .get(id.index())
            .ok_or(KgError::InvalidEntityId(id.raw()))
    }

    /// Iterates all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len()).map(EntityId::from)
    }

    /// Iterates the triples of the **base CSR** — pending overlay writes are
    /// not reflected here. Use [`Self::live_triples`] for the logical triple
    /// set under a live overlay.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    // ------------------------------------------------------------------
    // Lookups by name
    // ------------------------------------------------------------------

    /// Finds an entity by its unique name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.name_index.get(name)
    }

    /// Finds an entity by name, returning an error mentioning the name when
    /// missing (useful for query mapping of the specific node `q_s`).
    pub fn require_entity(&self, name: &str) -> KgResult<EntityId> {
        self.entity_by_name(name)
            .ok_or_else(|| KgError::UnknownEntity(name.to_owned()))
    }

    /// Looks up a predicate id by name.
    pub fn predicate_id(&self, name: &str) -> Option<PredicateId> {
        self.predicates.get(name)
    }

    /// Resolves a predicate id to its name.
    pub fn predicate_name(&self, id: PredicateId) -> &str {
        self.predicates.name(id)
    }

    /// The predicate vocabulary.
    pub fn predicates(&self) -> &PredicateVocabulary {
        &self.predicates
    }

    /// Looks up a type id by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.types.get(name).map(TypeId::new)
    }

    /// Resolves a type id to its name.
    pub fn type_name(&self, id: TypeId) -> &str {
        self.types.resolve(id.raw())
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.get(name).map(AttrId::new)
    }

    /// Resolves an attribute id to its name.
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs.resolve(id.raw())
    }

    /// Iterates `(TypeId, name)` for all node types.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.types.iter().map(|(i, s)| (TypeId::new(i), s))
    }

    /// Iterates `(AttrId, name)` for all attributes.
    pub fn attributes(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs.iter().map(|(i, s)| (AttrId::new(i), s))
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// The (undirected) adjacency list of `id`. For a frozen graph this is a
    /// zero-cost slice into the flat CSR edge array; under a live overlay
    /// ([`crate::delta`]) a node touched by a write serves its merged
    /// copy-on-write row instead (same entry order a from-scratch rebuild
    /// would produce), and an entity appended after the last compaction
    /// serves an empty slice until an edge touches it.
    pub fn neighbors(&self, id: EntityId) -> &[EdgeRef] {
        if self.delta.is_some() {
            if let Some(row) = self.delta_row(id) {
                return row;
            }
            if id.index() + 1 >= self.offsets.len() {
                return &[];
            }
        }
        let i = id.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `id` in the undirected view (each triple counts once per
    /// endpoint), overlay-aware like [`Self::neighbors`].
    pub fn degree(&self, id: EntityId) -> usize {
        if self.delta.is_some() {
            return self.neighbors(id).len();
        }
        let i = id.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Average degree over all entities (the `m` of the SSB complexity
    /// analysis in §III).
    pub fn average_degree(&self) -> f64 {
        if self.entities.is_empty() {
            return 0.0;
        }
        // Each triple contributes two adjacency entries.
        (2.0 * self.edge_count() as f64) / self.entities.len() as f64
    }

    /// All entities carrying type `ty`.
    pub fn entities_with_type(&self, ty: TypeId) -> &[EntityId] {
        self.type_index.entities_with_type(ty)
    }

    /// All entities carrying at least one of `types`.
    pub fn entities_with_any_type(&self, types: &[TypeId]) -> Vec<EntityId> {
        self.type_index.entities_with_any_type(types)
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// Value of attribute `attr` on entity `id`, if present.
    pub fn attribute(&self, id: EntityId, attr: AttrId) -> Option<AttrValue> {
        self.entities[id.index()].attributes.get(attr)
    }

    /// Value of attribute `attr` on entity `id` as a plain `f64`.
    pub fn attribute_value(&self, id: EntityId, attr: AttrId) -> Option<f64> {
        self.attribute(id, attr).map(AttrValue::get)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::graph::Direction;
    use crate::ids::EntityId;

    fn tiny() -> crate::KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let germany = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let audi = b.add_entity("Audi_TT", &["Automobile"]);
        b.set_attribute(bmw, "price", 41_500.0);
        b.set_attribute(audi, "price", 52_000.0);
        b.add_edge(bmw, "assembly", germany);
        b.add_edge(audi, "assembly", vw);
        b.add_edge(vw, "country", germany);
        b.build()
    }

    #[test]
    fn counts_and_lookups() {
        let g = tiny();
        assert_eq!(g.entity_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.type_count(), 3);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.attribute_count(), 1);
        assert_eq!(g.entity_by_name("Germany"), Some(EntityId::new(0)));
        assert!(g.require_entity("France").is_err());
        let auto = g.type_id("Automobile").unwrap();
        assert_eq!(g.entities_with_type(auto).len(), 2);
        assert_eq!(g.type_name(auto), "Automobile");
    }

    #[test]
    fn undirected_adjacency_has_both_directions() {
        let g = tiny();
        let germany = g.entity_by_name("Germany").unwrap();
        let bmw = g.entity_by_name("BMW_320").unwrap();
        // Germany is object of bmw-assembly->Germany and vw-country->Germany.
        assert_eq!(g.degree(germany), 2);
        let dirs: Vec<Direction> = g.neighbors(germany).iter().map(|e| e.direction).collect();
        assert!(dirs.iter().all(|d| *d == Direction::Incoming));
        assert_eq!(g.degree(bmw), 1);
        assert_eq!(g.neighbors(bmw)[0].direction, Direction::Outgoing);
        assert_eq!(g.neighbors(bmw)[0].neighbor, germany);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn attribute_access() {
        let g = tiny();
        let bmw = g.entity_by_name("BMW_320").unwrap();
        let price = g.attr_id("price").unwrap();
        assert_eq!(g.attribute_value(bmw, price), Some(41_500.0));
        let germany = g.entity_by_name("Germany").unwrap();
        assert_eq!(g.attribute_value(germany, price), None);
        assert_eq!(g.attr_name(price), "price");
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Outgoing.flip(), Direction::Incoming);
        assert_eq!(Direction::Incoming.flip(), Direction::Outgoing);
    }
}
