//! Entity partitioning strategies for [`crate::ShardedGraph`].
//!
//! A [`Partitioner`] maps every entity of a [`KnowledgeGraph`] to one of `k`
//! shards. Two strategies are provided:
//!
//! * [`HashPartitioner`] — stateless hashing of the entity id. O(|V|), no
//!   balance guarantee beyond what the hash gives, but placement of an
//!   entity never depends on the rest of the graph (stable under growth).
//! * [`DegreeBalancedPartitioner`] — greedy balanced assignment: entities
//!   are visited in decreasing degree order and each goes to the currently
//!   lightest shard (by accumulated degree). This equalises adjacency-array
//!   sizes — the quantity per-shard sampling work scales with — at the cost
//!   of assignment depending on the whole degree sequence.
//!
//! Both are fully deterministic: the degree-balanced ordering tie-breaks
//! equal degrees by entity id and equal loads by shard index, so repeated
//! runs over the same graph produce byte-identical assignments (and thus
//! identical per-shard sampling RNG streams downstream).

use crate::graph::KnowledgeGraph;

/// Maps every entity of a graph to one of `k` shards.
///
/// Implementations must be **deterministic**: the same graph and the same
/// `k` must always produce the same assignment, because shard membership
/// seeds per-shard sampling RNG streams downstream.
pub trait Partitioner {
    /// Returns one shard index (`< k`) per entity, indexed by entity id.
    ///
    /// # Panics
    /// Implementations may panic when `k == 0`.
    fn partition(&self, graph: &KnowledgeGraph, k: usize) -> Vec<u32>;

    /// Human-readable strategy name (for metrics and reports).
    fn name(&self) -> &'static str;
}

/// SplitMix64 finaliser: a cheap, well-mixed 64-bit hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stateless hash partitioning: shard = mix64(entity id) mod k.
#[derive(Copy, Clone, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &KnowledgeGraph, k: usize) -> Vec<u32> {
        assert!(k > 0, "cannot partition into zero shards");
        (0..graph.entity_count())
            .map(|i| (mix64(i as u64) % k as u64) as u32)
            .collect()
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Greedy degree-balanced partitioning.
///
/// Entities are assigned in decreasing degree order, each to the shard with
/// the smallest accumulated degree so far. Ordering tie-breaks equal degrees
/// by **entity id** and equal shard loads by `(load, entity count, shard
/// index)`, so the assignment is deterministic run-to-run — zero-degree
/// entities spread round-robin by the entity-count tie-break instead of
/// piling onto shard 0.
#[derive(Copy, Clone, Debug, Default)]
pub struct DegreeBalancedPartitioner;

impl Partitioner for DegreeBalancedPartitioner {
    fn partition(&self, graph: &KnowledgeGraph, k: usize) -> Vec<u32> {
        assert!(k > 0, "cannot partition into zero shards");
        let n = graph.entity_count();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Decreasing degree, ties by ascending entity id: sort_by on the
        // (degree, id) key is deterministic regardless of sort stability.
        order.sort_by(|&a, &b| {
            let da = graph.degree(crate::EntityId::new(a));
            let db = graph.degree(crate::EntityId::new(b));
            db.cmp(&da).then_with(|| a.cmp(&b))
        });
        let mut assignment = vec![0u32; n];
        // Per-shard (accumulated degree, entity count).
        let mut load = vec![(0usize, 0usize); k];
        for id in order {
            let degree = graph.degree(crate::EntityId::new(id));
            let target = (0..k)
                .min_by_key(|&s| (load[s].0, load[s].1, s))
                .expect("k > 0");
            assignment[id as usize] = target as u32;
            load[target].0 += degree;
            load[target].1 += 1;
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "degree-balanced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star_graph(leaves: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_entity("hub", &["Hub"]);
        for i in 0..leaves {
            let leaf = b.add_entity(&format!("leaf{i}"), &["Leaf"]);
            b.add_edge(hub, "spoke", leaf);
        }
        b.build()
    }

    #[test]
    fn hash_partitioner_covers_all_shards_and_is_in_range() {
        let g = star_graph(64);
        let assignment = HashPartitioner.partition(&g, 4);
        assert_eq!(assignment.len(), g.entity_count());
        assert!(assignment.iter().all(|&s| s < 4));
        let mut seen = [false; 4];
        for &s in &assignment {
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 entities should touch 4 shards");
        assert_eq!(HashPartitioner.name(), "hash");
    }

    #[test]
    fn degree_balanced_spreads_load() {
        let g = star_graph(30);
        let assignment = DegreeBalancedPartitioner.partition(&g, 3);
        let mut degree_load = [0usize; 3];
        for (i, &s) in assignment.iter().enumerate() {
            degree_load[s as usize] += g.degree(crate::EntityId::from(i));
        }
        // The hub (degree 30) dominates; the other two shards split the
        // leaves. No shard may hold more than hub + a couple of leaves.
        let max = *degree_load.iter().max().unwrap();
        let min = *degree_load.iter().min().unwrap();
        assert!(max <= 31, "max degree load {max}");
        assert!(min >= 10, "min degree load {min}");
        assert_eq!(DegreeBalancedPartitioner.name(), "degree-balanced");
    }

    #[test]
    fn single_shard_assigns_everything_to_zero() {
        let g = star_graph(5);
        for p in [
            &HashPartitioner as &dyn Partitioner,
            &DegreeBalancedPartitioner,
        ] {
            let assignment = p.partition(&g, 1);
            assert!(assignment.iter().all(|&s| s == 0), "{}", p.name());
        }
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_panics() {
        let g = star_graph(2);
        DegreeBalancedPartitioner.partition(&g, 0);
    }
}
