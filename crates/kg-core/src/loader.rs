//! Plain-text serialisation of knowledge graphs.
//!
//! The format is a line-oriented TSV, one record per line:
//!
//! ```text
//! E<TAB>name<TAB>type1,type2,...            # entity
//! A<TAB>name<TAB>attr<TAB>value             # numerical attribute
//! T<TAB>subject<TAB>predicate<TAB>object    # triple
//! # comment
//! ```
//!
//! It is deliberately simple — the real datasets of the paper ship as RDF
//! dumps, but nothing downstream depends on RDF specifics, only on the data
//! model of Definition 1.

use crate::builder::GraphBuilder;
use crate::error::{KgError, KgResult};
use crate::graph::KnowledgeGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a knowledge graph from a reader in the TSV format described in the
/// module docs.
pub fn read_tsv<R: Read>(reader: R) -> KgResult<KnowledgeGraph> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let tag = parts.next().unwrap_or_default();
        let err = |message: &str| KgError::Parse {
            line: lineno + 1,
            message: message.to_owned(),
        };
        match tag {
            "E" => {
                let name = parts.next().ok_or_else(|| err("missing entity name"))?;
                let types = parts.next().unwrap_or("");
                let type_names: Vec<&str> = types.split(',').filter(|t| !t.is_empty()).collect();
                builder.add_entity(name, &type_names);
            }
            "A" => {
                let name = parts.next().ok_or_else(|| err("missing entity name"))?;
                let attr = parts.next().ok_or_else(|| err("missing attribute name"))?;
                let value: f64 = parts
                    .next()
                    .ok_or_else(|| err("missing attribute value"))?
                    .parse()
                    .map_err(|_| err("attribute value is not a number"))?;
                let id = builder
                    .entity_id(name)
                    .ok_or_else(|| err("attribute references unknown entity"))?;
                builder.set_attribute(id, attr, value);
            }
            "T" => {
                let s = parts.next().ok_or_else(|| err("missing subject"))?;
                let p = parts.next().ok_or_else(|| err("missing predicate"))?;
                let o = parts.next().ok_or_else(|| err("missing object"))?;
                builder.add_edge_by_name(s, p, o);
            }
            other => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: format!("unknown record tag {other:?}"),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Serialises a knowledge graph to a writer in the TSV format.
pub fn write_tsv<W: Write>(graph: &KnowledgeGraph, writer: W) -> KgResult<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# kg-core TSV dump: {} entities, {} triples",
        graph.entity_count(),
        graph.edge_count()
    )?;
    for id in graph.entity_ids() {
        let e = graph.entity(id);
        let types: Vec<&str> = e.types.iter().map(|t| graph.type_name(*t)).collect();
        writeln!(w, "E\t{}\t{}", e.name, types.join(","))?;
    }
    for id in graph.entity_ids() {
        let e = graph.entity(id);
        for (attr, value) in e.attributes.iter() {
            writeln!(
                w,
                "A\t{}\t{}\t{}",
                e.name,
                graph.attr_name(attr),
                value.get()
            )?;
        }
    }
    for t in graph.triples() {
        writeln!(
            w,
            "T\t{}\t{}\t{}",
            graph.entity(t.subject).name,
            graph.predicate_name(t.predicate),
            graph.entity(t.object).name
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a graph from a TSV file on disk.
pub fn load_tsv<P: AsRef<Path>>(path: P) -> KgResult<KnowledgeGraph> {
    let file = std::fs::File::open(path)?;
    read_tsv(file)
}

/// Saves a graph to a TSV file on disk.
pub fn save_tsv<P: AsRef<Path>>(graph: &KnowledgeGraph, path: P) -> KgResult<()> {
    let file = std::fs::File::create(path)?;
    write_tsv(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let germany = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile", "MeanOfTransportation"]);
        b.set_attribute(bmw, "price", 41_500.5);
        b.set_attribute(bmw, "horsepower", 180.0);
        b.add_edge(bmw, "assembly", germany);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.entity_count(), g.entity_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let bmw = g2.entity_by_name("BMW_320").unwrap();
        let price = g2.attr_id("price").unwrap();
        assert_eq!(g2.attribute_value(bmw, price), Some(41_500.5));
        assert_eq!(g2.entity(bmw).types.len(), 2);
        let germany = g2.entity_by_name("Germany").unwrap();
        assert_eq!(g2.neighbors(bmw)[0].neighbor, germany);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "# header\n\nE\tGermany\tCountry\nE\tBMW\tAutomobile\nT\tBMW\tassembly\tGermany\n";
        let g = read_tsv(text.as_bytes()).unwrap();
        assert_eq!(g.entity_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "E\tGermany\tCountry\nX\tnope\n";
        let err = read_tsv(text.as_bytes()).unwrap_err();
        match err {
            KgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let text = "A\tGermany\tprice\tnot_a_number\n";
        assert!(read_tsv(text.as_bytes()).is_err());
        let text = "A\tUnknown\tprice\t1.0\n";
        assert!(read_tsv(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("kg_core_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.tsv");
        save_tsv(&g, &path).unwrap();
        let g2 = load_tsv(&path).unwrap();
        assert_eq!(g2.entity_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
