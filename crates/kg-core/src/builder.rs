//! Mutable construction of a [`KnowledgeGraph`].

use crate::entity::Entity;
use crate::error::{KgError, KgResult};
use crate::graph::{Direction, EdgeRef, KnowledgeGraph};
use crate::ids::{AttrId, EntityId, TypeId};
use crate::index::{NameIndex, TypeIndex};
use crate::interner::StringInterner;
use crate::predicate::PredicateVocabulary;
use crate::triple::Triple;

/// Incrementally assembles a knowledge graph, then freezes it with
/// [`GraphBuilder::build`].
///
/// Entity names are unique: [`GraphBuilder::add_entity`] returns the existing
/// id when the name was already added (and merges the provided types), which
/// matches the paper's assumption of disambiguated entities.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    entities: Vec<Entity>,
    triples: Vec<Triple>,
    predicates: PredicateVocabulary,
    types: StringInterner,
    attrs: StringInterner,
    name_index: NameIndex,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints for entities and triples.
    pub fn with_capacity(entities: usize, triples: usize) -> Self {
        Self {
            entities: Vec::with_capacity(entities),
            triples: Vec::with_capacity(triples),
            ..Self::default()
        }
    }

    /// Adds an entity with the given name and type names, returning its id.
    /// Re-adding an existing name merges the type sets and returns the
    /// original id.
    pub fn add_entity(&mut self, name: &str, type_names: &[&str]) -> EntityId {
        let type_ids: Vec<TypeId> = type_names
            .iter()
            .map(|t| TypeId::new(self.types.intern(t)))
            .collect();
        if let Some(id) = self.name_index.get(name) {
            let entity = &mut self.entities[id.index()];
            for ty in type_ids {
                entity.add_type(ty);
            }
            return id;
        }
        let id = EntityId::from(self.entities.len());
        self.entities.push(Entity::new(name, type_ids));
        self.name_index.insert(name.to_owned(), id);
        id
    }

    /// Strict variant of [`Self::add_entity`] that fails on duplicates.
    pub fn add_unique_entity(&mut self, name: &str, type_names: &[&str]) -> KgResult<EntityId> {
        if self.name_index.get(name).is_some() {
            return Err(KgError::DuplicateEntity(name.to_owned()));
        }
        Ok(self.add_entity(name, type_names))
    }

    /// Returns the id of an already-added entity by name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.name_index.get(name)
    }

    /// Adds an extra type to an existing entity.
    pub fn add_type_to(&mut self, entity: EntityId, type_name: &str) {
        let ty = TypeId::new(self.types.intern(type_name));
        self.entities[entity.index()].add_type(ty);
    }

    /// Sets a numerical attribute on an entity.
    pub fn set_attribute(&mut self, entity: EntityId, attr_name: &str, value: f64) {
        let attr = AttrId::new(self.attrs.intern(attr_name));
        self.entities[entity.index()].attributes.set(attr, value);
    }

    /// Adds a directed edge `subject --predicate--> object`, returning the
    /// resulting triple. Self-loops and parallel edges are permitted (the
    /// semantic-aware random walk adds a deliberate self-loop on the mapping
    /// node to make the Markov chain aperiodic).
    pub fn add_edge(&mut self, subject: EntityId, predicate: &str, object: EntityId) -> Triple {
        let p = self.predicates.intern(predicate);
        let t = Triple::new(subject, p, object);
        self.triples.push(t);
        t
    }

    /// Adds an edge referring to entities by name, creating untyped entities
    /// on demand. Convenient for loaders and tests.
    pub fn add_edge_by_name(&mut self, subject: &str, predicate: &str, object: &str) -> Triple {
        let s = self.add_entity(subject, &[]);
        let o = self.add_entity(object, &[]);
        self.add_edge(s, predicate, o)
    }

    /// Removes **every occurrence** of the exact triple
    /// `subject --predicate--> object` added so far, returning how many were
    /// removed (0 when the predicate was never interned or no occurrence
    /// exists). Remaining triples keep their relative order — the builder
    /// counterpart of [`KnowledgeGraph::delete_edge`], so replaying a
    /// write schedule through a builder reproduces the overlay's state
    /// bit-for-bit (ids included, since a removed edge's predicate stays
    /// interned in both).
    pub fn remove_edge(&mut self, subject: EntityId, predicate: &str, object: EntityId) -> usize {
        let Some(p) = self.predicates.get(predicate) else {
            return 0;
        };
        let before = self.triples.len();
        self.triples
            .retain(|t| !(t.subject == subject && t.predicate == p && t.object == object));
        before - self.triples.len()
    }

    /// Name-addressed variant of [`Self::remove_edge`]; returns 0 when any
    /// name is unknown.
    pub fn remove_edge_by_name(&mut self, subject: &str, predicate: &str, object: &str) -> usize {
        match (self.name_index.get(subject), self.name_index.get(object)) {
            (Some(s), Some(o)) => self.remove_edge(s, predicate, o),
            _ => 0,
        }
    }

    /// Number of entities added so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of triples added so far.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Freezes the builder into an immutable [`KnowledgeGraph`], constructing
    /// the CSR adjacency arrays and secondary indexes.
    ///
    /// Adjacency is built with a two-pass counting sort: one pass over the
    /// triples counts per-entity degrees (the CSR offsets), a second pass
    /// writes each entry into its slot. Entries within an entity's slice keep
    /// triple insertion order — the same order the previous nested-`Vec`
    /// representation produced — so walk and traversal results are unchanged.
    pub fn build(self) -> KnowledgeGraph {
        let (edges, offsets) = build_csr(self.entities.len(), &self.triples);
        let type_index = TypeIndex::build(&self.entities);
        KnowledgeGraph {
            entities: self.entities,
            edges,
            offsets,
            triples: self.triples,
            predicates: self.predicates,
            types: self.types,
            attrs: self.attrs,
            name_index: self.name_index,
            type_index,
            delta: None,
        }
    }
}

/// Builds the CSR adjacency arrays (`edges`, `offsets`) for `entity_count`
/// entities from a triple list, with the two-pass counting sort described on
/// [`GraphBuilder::build`]. Shared by the builder and by per-shard graph
/// construction ([`crate::shard`]), so the two representations cannot drift:
/// entries within an entity's slice keep triple order, and a self-loop
/// contributes a single adjacency entry.
pub(crate) fn build_csr(entity_count: usize, triples: &[Triple]) -> (Vec<EdgeRef>, Vec<u32>) {
    // The CSR offsets are u32 (see `KnowledgeGraph::offsets`): fail loudly
    // before the counting pass can wrap instead of corrupting adjacency.
    assert!(
        triples.len() <= (u32::MAX / 2) as usize,
        "graph exceeds CSR capacity: {} triples produce more than u32::MAX adjacency entries",
        triples.len()
    );
    // Pass 1: per-entity degree counts.
    let mut offsets = vec![0u32; entity_count + 1];
    for t in triples {
        offsets[t.subject.index() + 1] += 1;
        if t.subject != t.object {
            offsets[t.object.index() + 1] += 1;
        }
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }

    // Pass 2: write entries into their slices, advancing a per-entity
    // cursor. `cursor` starts as the slice start offsets.
    let total = *offsets.last().unwrap_or(&0) as usize;
    let mut cursor: Vec<u32> = offsets[..offsets.len().saturating_sub(1)].to_vec();
    let placeholder = EdgeRef {
        neighbor: EntityId::new(0),
        predicate: crate::ids::PredicateId::new(0),
        direction: Direction::Outgoing,
    };
    let mut edges = vec![placeholder; total];
    for t in triples {
        let s = t.subject.index();
        edges[cursor[s] as usize] = EdgeRef {
            neighbor: t.object,
            predicate: t.predicate,
            direction: Direction::Outgoing,
        };
        cursor[s] += 1;
        if t.subject != t.object {
            let o = t.object.index();
            edges[cursor[o] as usize] = EdgeRef {
                neighbor: t.subject,
                predicate: t.predicate,
                direction: Direction::Incoming,
            };
            cursor[o] += 1;
        }
    }
    (edges, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_entity_is_idempotent_and_merges_types() {
        let mut b = GraphBuilder::new();
        let a = b.add_entity("BMW_X6", &["Automobile"]);
        let a2 = b.add_entity("BMW_X6", &["MeanOfTransportation"]);
        assert_eq!(a, a2);
        assert_eq!(b.entity_count(), 1);
        let g = b.build();
        assert_eq!(g.entity(a).types.len(), 2);
    }

    #[test]
    fn add_unique_entity_rejects_duplicates() {
        let mut b = GraphBuilder::new();
        b.add_unique_entity("Germany", &["Country"]).unwrap();
        assert!(matches!(
            b.add_unique_entity("Germany", &["Country"]),
            Err(KgError::DuplicateEntity(_))
        ));
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut b = GraphBuilder::new();
        let u = b.add_entity("Germany", &["Country"]);
        b.add_edge(u, "self", u);
        let g = b.build();
        assert_eq!(g.degree(u), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_edge_by_name_creates_entities() {
        let mut b = GraphBuilder::new();
        b.add_edge_by_name("KIA_K5", "designer", "Peter_Schreyer");
        b.add_edge_by_name("Peter_Schreyer", "nationality", "Germany");
        assert_eq!(b.entity_count(), 3);
        assert_eq!(b.triple_count(), 2);
        let g = b.build();
        let kia = g.entity_by_name("KIA_K5").unwrap();
        assert_eq!(g.degree(kia), 1);
        let peter = g.entity_by_name("Peter_Schreyer").unwrap();
        assert_eq!(g.degree(peter), 2);
    }

    #[test]
    fn with_capacity_builds_equivalent_graph() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let u = b.add_entity("a", &["T"]);
        let v = b.add_entity("b", &["T"]);
        b.add_edge(u, "p", v);
        b.set_attribute(v, "x", 1.0);
        b.add_type_to(v, "U");
        let g = b.build();
        assert_eq!(g.entity_count(), 2);
        assert!(g.entity(v).has_type(g.type_id("U").unwrap()));
    }
}
