//! Numerical attributes attached to entities.
//!
//! Definition 1 of the paper equips every node with a set of numerical
//! attributes `A_G(u) = {a_1 … a_n}`; the aggregate function of a query is
//! applied to one of them (e.g. `AVG(price)`). Most entities carry only a few
//! attributes, so the set is stored as a sorted `Vec<(AttrId, AttrValue)>`
//! rather than a hash map.

use crate::ids::AttrId;
use serde::{Deserialize, Serialize};

/// A single numerical attribute value.
///
/// Wrapped in a newtype so that downstream code is explicit about reading an
/// attribute (as opposed to arbitrary floats such as similarities or
/// probabilities).
#[derive(Copy, Clone, Debug, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct AttrValue(pub f64);

impl AttrValue {
    /// Returns the raw `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue(v)
    }
}

/// The numerical attributes of one entity, sorted by [`AttrId`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeSet {
    entries: Vec<(AttrId, AttrValue)>,
}

impl AttributeSet {
    /// Creates an empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) the value of `attr`.
    pub fn set(&mut self, attr: AttrId, value: f64) {
        match self.entries.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(pos) => self.entries[pos].1 = AttrValue(value),
            Err(pos) => self.entries.insert(pos, (attr, AttrValue(value))),
        }
    }

    /// Returns the value of `attr`, if present.
    pub fn get(&self, attr: AttrId) -> Option<AttrValue> {
        self.entries
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    /// True if the entity carries `attr`.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.get(attr).is_some()
    }

    /// Removes `attr`, returning its previous value.
    pub fn remove(&mut self, attr: AttrId) -> Option<AttrValue> {
        match self.entries.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }

    /// Number of attributes on this entity.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the entity has no numerical attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(attribute, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, AttrValue)> + '_ {
        self.entries.iter().copied()
    }
}

impl FromIterator<(AttrId, f64)> for AttributeSet {
    fn from_iter<T: IntoIterator<Item = (AttrId, f64)>>(iter: T) -> Self {
        let mut set = AttributeSet::new();
        for (a, v) in iter {
            set.set(a, v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut s = AttributeSet::new();
        s.set(AttrId::new(3), 64_300.0);
        s.set(AttrId::new(1), 335.0);
        assert_eq!(s.get(AttrId::new(3)), Some(AttrValue(64_300.0)));
        s.set(AttrId::new(3), 65_000.0);
        assert_eq!(s.get(AttrId::new(3)), Some(AttrValue(65_000.0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(AttrId::new(1)));
        assert!(!s.contains(AttrId::new(2)));
    }

    #[test]
    fn entries_stay_sorted() {
        let s: AttributeSet = [
            (AttrId::new(5), 1.0),
            (AttrId::new(2), 2.0),
            (AttrId::new(9), 3.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<u32> = s.iter().map(|(a, _)| a.raw()).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn remove_returns_previous_value() {
        let mut s = AttributeSet::new();
        s.set(AttrId::new(0), 7.0);
        assert_eq!(s.remove(AttrId::new(0)), Some(AttrValue(7.0)));
        assert_eq!(s.remove(AttrId::new(0)), None);
        assert!(s.is_empty());
    }

    #[test]
    fn attr_value_conversions() {
        let v: AttrValue = 4.5.into();
        assert_eq!(v.get(), 4.5);
        assert!(AttrValue(1.0) < AttrValue(2.0));
    }
}
