//! Log-structured mutation overlay for [`KnowledgeGraph`].
//!
//! The CSR arrays of a built graph are immutable — that is what makes
//! [`KnowledgeGraph::neighbors`] a zero-cost slice. A live deployment still
//! has to absorb a stream of entity/edge upserts and deletions without
//! rebuilding the whole graph per write, so mutation is layered *on top* of
//! the frozen CSR:
//!
//! * a [`GraphDelta`] records every edge upsert and tombstone in an
//!   append-only **op log** (the compaction input), and
//! * keeps a **merged adjacency row** for every node a write touched: a
//!   copy of the node's base CSR slice with deletions removed and inserts
//!   appended. [`KnowledgeGraph::neighbors`] serves the merged row when one
//!   exists and the base slice otherwise, so untouched nodes keep the
//!   zero-copy fast path and touched nodes pay one `HashMap` probe.
//!
//! Entity upserts (new nodes, added types) are applied **eagerly** to the
//! entity table and the name/type indexes — those structures are cheap to
//! mutate in place and append-only in their id spaces, so every id handed
//! out before a write stays valid after it.
//!
//! [`KnowledgeGraph::compact`] folds the overlay back into a fresh CSR via
//! the same counting sort [`crate::GraphBuilder::build`] uses, preserving
//! per-node entry order: base survivors first (base order), then surviving
//! inserts (log order) — exactly the order the merged rows already serve,
//! so reads are bitwise unchanged across a compaction.
//!
//! # Ordering and equivalence
//!
//! The overlay is **provably equivalent** to a from-scratch rebuild at the
//! same logical state (pinned by `tests/delta_equivalence.rs`): replaying
//! the same op schedule through a [`crate::GraphBuilder`] — including
//! [`crate::GraphBuilder::remove_edge`] for tombstones — yields a graph
//! whose adjacency, ids and indexes are bitwise identical, because both
//! representations intern names in chronological first-seen order and both
//! keep per-node entries in surviving-insertion order.
//!
//! # Deletion semantics
//!
//! A tombstone removes **every live occurrence** of the exact triple at the
//! time of the delete (duplicate parallel edges die together); an identical
//! edge re-inserted *after* the tombstone is live again. Compaction applies
//! the same rule through a last-tombstone-position scan of the log.

use crate::graph::{Direction, EdgeRef, KnowledgeGraph};
use crate::ids::{EntityId, TypeId};
use crate::triple::Triple;
use std::borrow::Cow;
use std::collections::HashMap;

/// One entry of the overlay's op log.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// An edge appended after the base CSR was built.
    Insert(Triple),
    /// A tombstone removing every then-live occurrence of the triple.
    Delete(Triple),
}

impl DeltaOp {
    /// The triple this op concerns.
    pub fn triple(&self) -> Triple {
        match self {
            DeltaOp::Insert(t) | DeltaOp::Delete(t) => *t,
        }
    }
}

/// The pending mutation overlay of a [`KnowledgeGraph`]: the edge op log
/// plus merged adjacency rows for touched nodes. See the [module
/// docs](self) for the layout and ordering rules.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Edge ops since the last compaction, in application order.
    log: Vec<DeltaOp>,
    /// Copy-on-write merged adjacency rows, one per touched node.
    rows: HashMap<EntityId, Vec<EdgeRef>>,
    /// Live edge count (base triples ± log effects), kept incrementally so
    /// [`KnowledgeGraph::edge_count`] stays O(1) under a live overlay.
    live_edges: usize,
}

impl GraphDelta {
    fn new(live_edges: usize) -> Self {
        Self {
            log: Vec::new(),
            rows: HashMap::new(),
            live_edges,
        }
    }

    /// The edge ops recorded since the last compaction, in order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.log
    }

    /// Number of nodes with a merged (copy-on-write) adjacency row.
    pub fn touched_nodes(&self) -> usize {
        self.rows.len()
    }
}

/// Materialises the live triple list: base survivors in base order, then
/// surviving inserts in log order. A base occurrence survives iff the
/// triple was never tombstoned; an insert at log position `i` survives iff
/// the triple's last tombstone (if any) sits before `i`.
fn live_after(base: &[Triple], log: &[DeltaOp]) -> Vec<Triple> {
    let mut last_delete: HashMap<Triple, usize> = HashMap::new();
    for (i, op) in log.iter().enumerate() {
        if let DeltaOp::Delete(t) = op {
            last_delete.insert(*t, i);
        }
    }
    let mut live: Vec<Triple> = base
        .iter()
        .copied()
        .filter(|t| !last_delete.contains_key(t))
        .collect();
    for (i, op) in log.iter().enumerate() {
        if let DeltaOp::Insert(t) = op {
            if !last_delete.get(t).is_some_and(|&d| d >= i) {
                live.push(*t);
            }
        }
    }
    live
}

impl KnowledgeGraph {
    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Upserts an entity by name: returns the existing id (merging the given
    /// types into its type set) or appends a new entity. New entities join
    /// the graph with an empty adjacency list; ids already handed out are
    /// unaffected (the entity id space is append-only).
    pub fn upsert_entity(&mut self, name: &str, type_names: &[&str]) -> EntityId {
        let type_ids: Vec<TypeId> = type_names
            .iter()
            .map(|t| TypeId::new(self.types.intern(t)))
            .collect();
        if let Some(id) = self.name_index.get(name) {
            for ty in type_ids {
                if !self.entities[id.index()].has_type(ty) {
                    self.entities[id.index()].add_type(ty);
                    self.type_index.add(ty, id);
                }
            }
            return id;
        }
        let id = EntityId::from(self.entities.len());
        self.entities.push(crate::Entity::new(name, type_ids));
        self.name_index.insert(name.to_owned(), id);
        for &ty in &self.entities[id.index()].types {
            self.type_index.add(ty, id);
        }
        // The new id lies beyond the base CSR offsets; an (initially empty)
        // overlay makes `neighbors` treat it as a zero-degree node until the
        // next compaction widens the offset array.
        self.ensure_delta();
        id
    }

    /// Inserts the edge `subject --predicate--> object`, interning the
    /// predicate on first sight. Parallel duplicates and self-loops are
    /// permitted, exactly as in [`crate::GraphBuilder::add_edge`].
    ///
    /// # Panics
    /// Panics when either endpoint id is out of range.
    pub fn upsert_edge(&mut self, subject: EntityId, predicate: &str, object: EntityId) -> Triple {
        assert!(
            subject.index() < self.entities.len() && object.index() < self.entities.len(),
            "upsert_edge endpoint out of range"
        );
        let p = self.predicates.intern(predicate);
        let t = Triple::new(subject, p, object);
        self.merged_row_mut(subject).push(EdgeRef {
            neighbor: object,
            predicate: p,
            direction: Direction::Outgoing,
        });
        if subject != object {
            self.merged_row_mut(object).push(EdgeRef {
                neighbor: subject,
                predicate: p,
                direction: Direction::Incoming,
            });
        }
        let delta = self.ensure_delta();
        delta.live_edges += 1;
        delta.log.push(DeltaOp::Insert(t));
        t
    }

    /// Inserts an edge referring to entities by name, upserting untyped
    /// endpoints on demand (the streaming-ingest counterpart of
    /// [`crate::GraphBuilder::add_edge_by_name`]).
    pub fn upsert_edge_by_name(&mut self, subject: &str, predicate: &str, object: &str) -> Triple {
        let s = self.upsert_entity(subject, &[]);
        let o = self.upsert_entity(object, &[]);
        self.upsert_edge(s, predicate, o)
    }

    /// Deletes **every live occurrence** of the exact triple
    /// `subject --predicate--> object`, returning how many were removed
    /// (0 when the predicate is unknown or no occurrence is live — a no-op
    /// delete records nothing).
    ///
    /// # Panics
    /// Panics when either endpoint id is out of range.
    pub fn delete_edge(&mut self, subject: EntityId, predicate: &str, object: EntityId) -> usize {
        assert!(
            subject.index() < self.entities.len() && object.index() < self.entities.len(),
            "delete_edge endpoint out of range"
        );
        let Some(p) = self.predicates.get(predicate) else {
            return 0;
        };
        let t = Triple::new(subject, p, object);
        let row = self.merged_row_mut(subject);
        let before = row.len();
        row.retain(|e| {
            !(e.neighbor == object && e.predicate == p && e.direction == Direction::Outgoing)
        });
        let removed = before - row.len();
        if removed == 0 {
            return 0;
        }
        if subject != object {
            self.merged_row_mut(object).retain(|e| {
                !(e.neighbor == subject && e.predicate == p && e.direction == Direction::Incoming)
            });
        }
        let delta = self.ensure_delta();
        delta.live_edges -= removed;
        delta.log.push(DeltaOp::Delete(t));
        removed
    }

    /// Name-addressed variant of [`Self::delete_edge`]; returns 0 when any
    /// name is unknown.
    pub fn delete_edge_by_name(&mut self, subject: &str, predicate: &str, object: &str) -> usize {
        match (self.name_index.get(subject), self.name_index.get(object)) {
            (Some(s), Some(o)) => self.delete_edge(s, predicate, o),
            _ => 0,
        }
    }

    // ------------------------------------------------------------------
    // Overlay state
    // ------------------------------------------------------------------

    /// True when the graph carries an uncompacted overlay (pending edge ops
    /// or entities appended after the last CSR build).
    pub fn has_pending_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// Number of edge ops pending compaction (the compaction-trigger
    /// gauge; entity upserts mutate eagerly and are not counted).
    pub fn delta_ops(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.log.len())
    }

    /// The pending overlay, when one exists.
    pub fn delta(&self) -> Option<&GraphDelta> {
        self.delta.as_deref()
    }

    /// The live triple list: the base list when no edge op is pending,
    /// otherwise a materialised copy — base survivors in base order, then
    /// surviving inserts in log order (the order [`Self::compact`] freezes
    /// and per-node merged rows already serve).
    pub fn live_triples(&self) -> Cow<'_, [Triple]> {
        match &self.delta {
            Some(d) if !d.log.is_empty() => Cow::Owned(live_after(&self.triples, &d.log)),
            _ => Cow::Borrowed(&self.triples),
        }
    }

    /// Folds the overlay into a fresh CSR (same counting sort as
    /// [`crate::GraphBuilder::build`]) and clears it. Reads are bitwise
    /// unchanged: per-node entry order is preserved, and every entity,
    /// predicate, type and attribute id remains valid (id spaces are
    /// append-only). No-op when nothing is pending.
    pub fn compact(&mut self) {
        let Some(delta) = self.delta.take() else {
            return;
        };
        if delta.log.is_empty() && self.entities.len() + 1 == self.offsets.len() {
            return;
        }
        let live = if delta.log.is_empty() {
            std::mem::take(&mut self.triples)
        } else {
            live_after(&self.triples, &delta.log)
        };
        let (edges, offsets) = crate::builder::build_csr(self.entities.len(), &live);
        self.edges = edges;
        self.offsets = offsets;
        self.triples = live;
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn ensure_delta(&mut self) -> &mut GraphDelta {
        let base_edges = self.triples.len();
        self.delta
            .get_or_insert_with(|| Box::new(GraphDelta::new(base_edges)))
    }

    /// The base CSR row of `id`; empty for entities appended after the last
    /// compaction (their ids lie beyond the offset array).
    fn base_row(&self, id: EntityId) -> &[EdgeRef] {
        let i = id.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The merged (copy-on-write) adjacency row of `id`, seeding it from the
    /// base CSR slice on first touch.
    fn merged_row_mut(&mut self, id: EntityId) -> &mut Vec<EdgeRef> {
        let need_seed = match &self.delta {
            Some(d) => !d.rows.contains_key(&id),
            None => true,
        };
        let seed: Vec<EdgeRef> = if need_seed {
            self.base_row(id).to_vec()
        } else {
            Vec::new()
        };
        self.ensure_delta().rows.entry(id).or_insert(seed)
    }

    /// The merged row of `id` when the overlay holds one (read path of
    /// [`Self::neighbors`]).
    pub(crate) fn delta_row(&self, id: EntityId) -> Option<&[EdgeRef]> {
        self.delta
            .as_ref()
            .and_then(|d| d.rows.get(&id))
            .map(Vec::as_slice)
    }

    /// Live edge count maintained by the overlay, when one exists.
    pub(crate) fn delta_live_edges(&self) -> Option<usize> {
        self.delta.as_ref().map(|d| d.live_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let bmw = b.add_entity("BMW_320", &["Automobile"]);
        let audi = b.add_entity("Audi_TT", &["Automobile"]);
        b.add_edge(de, "product", bmw);
        b.add_edge(de, "product", audi);
        b.build()
    }

    #[test]
    fn upsert_edge_appends_to_both_rows_in_order() {
        let mut g = base();
        let de = g.entity_by_name("Germany").unwrap();
        let bmw = g.entity_by_name("BMW_320").unwrap();
        g.upsert_edge(bmw, "assembly", de);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_pending_delta());
        let row = g.neighbors(de);
        assert_eq!(row.len(), 3);
        // Base entries first (insertion order), then the new insert.
        assert_eq!(row[2].neighbor, bmw);
        assert_eq!(row[2].direction, Direction::Incoming);
        assert_eq!(g.neighbors(bmw).len(), 2);
    }

    #[test]
    fn delete_removes_all_live_duplicates_and_reinsert_revives() {
        let mut g = base();
        let de = g.entity_by_name("Germany").unwrap();
        let bmw = g.entity_by_name("BMW_320").unwrap();
        g.upsert_edge(de, "product", bmw); // duplicate of a base edge
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.delete_edge(de, "product", bmw), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(bmw), 0);
        // Unknown predicate or dead edge: no-op, nothing logged.
        assert_eq!(g.delete_edge(de, "made_of", bmw), 0);
        assert_eq!(g.delete_edge(de, "product", bmw), 0);
        assert_eq!(g.delta_ops(), 2);
        // Re-insert after the tombstone: live again, also after compaction.
        g.upsert_edge(de, "product", bmw);
        assert_eq!(g.edge_count(), 2);
        g.compact();
        assert!(!g.has_pending_delta());
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(bmw), 1);
    }

    #[test]
    fn upserted_entity_is_queryable_before_and_after_compaction() {
        let mut g = base();
        let vw = g.upsert_entity("Volkswagen", &["Company", "Automobile"]);
        assert_eq!(g.neighbors(vw), &[]);
        assert_eq!(g.degree(vw), 0);
        let auto = g.type_id("Automobile").unwrap();
        assert!(g.entities_with_type(auto).contains(&vw));
        // Type lists stay ascending (TypeIndex::build order).
        let listed = g.entities_with_type(auto);
        assert!(listed.windows(2).all(|w| w[0] < w[1]));
        // Upsert of an existing name merges types in place.
        assert_eq!(g.upsert_entity("Germany", &["State"]), EntityId::new(0));
        let state = g.type_id("State").unwrap();
        assert_eq!(g.entities_with_type(state), &[EntityId::new(0)]);
        g.compact();
        assert_eq!(g.neighbors(vw), &[]);
        assert!(g.entities_with_type(auto).contains(&vw));
    }

    #[test]
    fn compaction_matches_builder_replay() {
        let mut g = base();
        let mut replay = GraphBuilder::new();
        let de = replay.add_entity("Germany", &["Country"]);
        let bmw = replay.add_entity("BMW_320", &["Automobile"]);
        let audi = replay.add_entity("Audi_TT", &["Automobile"]);
        replay.add_edge(de, "product", bmw);
        replay.add_edge(de, "product", audi);

        g.upsert_edge_by_name("Volkswagen", "owns", "Audi_TT");
        replay.add_edge_by_name("Volkswagen", "owns", "Audi_TT");
        g.delete_edge_by_name("Germany", "product", "BMW_320");
        replay.remove_edge_by_name("Germany", "product", "BMW_320");

        g.compact();
        let reference = replay.build();
        assert_eq!(g.live_triples().as_ref(), reference.triples());
        for id in g.entity_ids() {
            assert_eq!(g.neighbors(id), reference.neighbors(id));
        }
    }

    #[test]
    fn live_triples_borrows_when_no_edge_ops_pending() {
        let mut g = base();
        assert!(matches!(g.live_triples(), Cow::Borrowed(_)));
        g.upsert_entity("Volkswagen", &[]);
        // Entity-only overlay: still no edge ops to materialise.
        assert!(matches!(g.live_triples(), Cow::Borrowed(_)));
        g.upsert_edge_by_name("Volkswagen", "owns", "Audi_TT");
        assert!(matches!(g.live_triples(), Cow::Owned(_)));
    }
}
