//! Predicate vocabulary.
//!
//! Predicates are the edge labels of the knowledge graph (`product`,
//! `assembly`, `nationality`, …). The vocabulary is a thin wrapper over a
//! [`crate::StringInterner`] that hands out [`PredicateId`]s; the embedding
//! crate attaches a `d`-dimensional vector to each id.

use crate::ids::PredicateId;
use crate::interner::StringInterner;

/// The set of predicate names known to a graph.
#[derive(Debug, Clone, Default)]
pub struct PredicateVocabulary {
    interner: StringInterner,
}

impl PredicateVocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate name, returning its id.
    pub fn intern(&mut self, name: &str) -> PredicateId {
        PredicateId::new(self.interner.intern(name))
    }

    /// Looks up a predicate by name.
    pub fn get(&self, name: &str) -> Option<PredicateId> {
        self.interner.get(name).map(PredicateId::new)
    }

    /// Resolves a predicate id to its name.
    pub fn name(&self, id: PredicateId) -> &str {
        self.interner.resolve(id.raw())
    }

    /// Number of distinct predicates.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterates `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &str)> {
        self.interner.iter().map(|(i, s)| (PredicateId::new(i), s))
    }

    /// All predicate ids in the vocabulary.
    pub fn ids(&self) -> impl Iterator<Item = PredicateId> + '_ {
        (0..self.interner.len() as u32).map(PredicateId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut v = PredicateVocabulary::new();
        let p = v.intern("product");
        let a = v.intern("assembly");
        assert_eq!(v.intern("product"), p);
        assert_eq!(v.get("assembly"), Some(a));
        assert_eq!(v.get("designer"), None);
        assert_eq!(v.name(p), "product");
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn ids_enumerate_all_predicates() {
        let mut v = PredicateVocabulary::new();
        v.intern("a");
        v.intern("b");
        v.intern("c");
        let ids: Vec<PredicateId> = v.ids().collect();
        assert_eq!(ids.len(), 3);
        let names: Vec<&str> = v.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
