//! Partitioned graph storage: K per-shard CSR graphs over one logical graph.
//!
//! A [`ShardedGraph`] splits entity ownership across `K` shards with a
//! pluggable [`Partitioner`] while keeping the full graph available for
//! global operations (planning, cross-shard path validation). Each shard
//! owns a self-contained [`KnowledgeGraph`] holding:
//!
//! * the shard's **owned** entities (local ids `0..owned_count`, in global
//!   id order),
//! * **ghost** copies of every foreign endpoint of an owned entity's edges
//!   (local ids `owned_count..`), and
//! * every triple incident to an owned entity, with endpoints remapped to
//!   local ids. A **cut edge** (endpoints owned by different shards) is
//!   replicated into both shards, so `neighbors()` on an owned entity is the
//!   same zero-cost CSR slice it is on the global graph — no shard ever
//!   chases an edge list across a shard boundary.
//!
//! Vocabularies (predicates, types, attributes) are **shared**: every shard
//! graph clones the global interners, so a `PredicateId`/`TypeId`/`AttrId`
//! resolved against the global graph is valid against any shard graph.
//! Only entity ids are remapped; [`ShardedGraph::to_local`] /
//! [`ShardedGraph::to_global`] translate.
//!
//! `K = 1` is the identity: the single shard owns every entity with
//! `local == global`, no ghosts, and a graph structurally identical to the
//! global one (pinned by `tests/shard_properties.rs`).

use crate::graph::KnowledgeGraph;
use crate::ids::EntityId;
use crate::index::{NameIndex, TypeIndex};
use crate::partition::Partitioner;
use crate::triple::Triple;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique id source for [`ShardedGraph::partition_id`].
static NEXT_PARTITION_ID: AtomicU64 = AtomicU64::new(0);

/// One shard: its local CSR graph plus the local↔global entity mapping.
#[derive(Debug, Clone)]
pub struct GraphShard {
    /// The shard-local graph: owned entities first, then ghosts.
    graph: KnowledgeGraph,
    /// Number of owned entities (`local id < owned_count` ⇔ owned).
    owned_count: usize,
    /// Local id → global id, for owned entities and ghosts alike.
    to_global: Vec<EntityId>,
    /// Triples whose endpoints are owned by different shards (each such
    /// triple is also replicated into the other endpoint's shard).
    cut_edges: usize,
}

impl GraphShard {
    /// The shard-local graph (shared vocabularies, local entity ids).
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Number of entities this shard owns.
    pub fn owned_count(&self) -> usize {
        self.owned_count
    }

    /// Number of ghost entities replicated from other shards.
    pub fn ghost_count(&self) -> usize {
        self.graph.entity_count() - self.owned_count
    }

    /// Number of triples stored locally (owned-internal plus replicated cut
    /// edges).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of locally stored triples whose other endpoint lives on
    /// another shard.
    pub fn cut_edge_count(&self) -> usize {
        self.cut_edges
    }

    /// True when `local` is owned by this shard (not a ghost).
    pub fn is_owned(&self, local: EntityId) -> bool {
        local.index() < self.owned_count
    }

    /// Global id of a local entity.
    ///
    /// # Panics
    /// Panics when `local` is out of range for this shard.
    pub fn global_id(&self, local: EntityId) -> EntityId {
        self.to_global[local.index()]
    }

    /// Iterates the global ids of the entities this shard owns, in local-id
    /// order (ascending global id).
    pub fn owned_global_ids(&self) -> &[EntityId] {
        &self.to_global[..self.owned_count]
    }
}

/// Balance diagnostics of a [`ShardedGraph`], for metrics and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingStats {
    /// Partitioner that produced the assignment.
    pub partitioner: &'static str,
    /// Owned entity count per shard.
    pub owned: Vec<usize>,
    /// Ghost entity count per shard.
    pub ghosts: Vec<usize>,
    /// Locally stored triple count per shard.
    pub edges: Vec<usize>,
    /// Distinct cut triples (each stored on two shards).
    pub cut_edges: usize,
    /// Σ per-shard triples / global triples (1.0 when nothing is cut; 2.0
    /// would mean every edge is replicated).
    pub replication_factor: f64,
}

/// A knowledge graph partitioned into `K` per-shard CSR graphs.
///
/// See the [module docs](self) for the ownership / ghost / cut-edge model.
/// The global graph stays reachable through [`Self::global`]: planning and
/// n-hop path validation run against it, while per-shard work (sampling,
/// attribute and filter reads of owned entities) runs against the shard
/// graphs.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    global: Arc<KnowledgeGraph>,
    shards: Vec<GraphShard>,
    /// Global entity id → owning shard.
    assignment: Vec<u32>,
    /// Global entity id → local id within the owning shard.
    local_ids: Vec<u32>,
    partitioner: &'static str,
    cut_edges: usize,
    /// Process-unique identity of this partitioning (clones share it — they
    /// share the assignment). Lets caches keyed on derived per-shard data
    /// distinguish two partitionings of the same underlying graph.
    partition_id: u64,
}

impl ShardedGraph {
    /// Partitions `global` into `k` shards with `partitioner`.
    ///
    /// # Panics
    /// Panics when `k == 0` or when the partitioner returns an assignment of
    /// the wrong length or with out-of-range shard indices.
    pub fn new(global: Arc<KnowledgeGraph>, partitioner: &dyn Partitioner, k: usize) -> Self {
        assert!(k > 0, "cannot shard into zero shards");
        let assignment = partitioner.partition(&global, k);
        assert_eq!(
            assignment.len(),
            global.entity_count(),
            "partitioner returned {} assignments for {} entities",
            assignment.len(),
            global.entity_count()
        );
        assert!(
            assignment.iter().all(|&s| (s as usize) < k),
            "partitioner assigned a shard index >= {k}"
        );
        Self::from_assignment(global, assignment, k, partitioner.name())
    }

    /// Wraps a graph as a single-shard [`ShardedGraph`] (the identity
    /// configuration every unsharded deployment corresponds to).
    pub fn single(global: Arc<KnowledgeGraph>) -> Self {
        let n = global.entity_count();
        Self::from_assignment(global, vec![0; n], 1, "single")
    }

    fn from_assignment(
        global: Arc<KnowledgeGraph>,
        assignment: Vec<u32>,
        k: usize,
        partitioner: &'static str,
    ) -> Self {
        let n = global.entity_count();
        // Local ids of owned entities: position within the shard's owned
        // list, which is ascending-global-id order by construction.
        let mut local_ids = vec![0u32; n];
        let mut owned_per_shard: Vec<Vec<EntityId>> = vec![Vec::new(); k];
        for i in 0..n {
            let shard = assignment[i] as usize;
            local_ids[i] = owned_per_shard[shard].len() as u32;
            owned_per_shard[shard].push(EntityId::from(i));
        }

        // One pass over the global triple list buckets each triple into the
        // shard(s) owning an endpoint — a cut triple goes to both — keeping
        // global order within each bucket. (Scanning the full list once per
        // shard would be O(K·|E|).)
        let mut triples_per_shard: Vec<Vec<Triple>> = vec![Vec::new(); k];
        let mut cut_per_shard = vec![0usize; k];
        let mut cut_edges = 0usize;
        // Live triples, not the base list: a graph carrying a mutation
        // overlay ([`crate::delta`]) shards its *logical* state, so shard
        // graphs materialise pending writes.
        let live = global.live_triples();
        for t in live.iter() {
            let s = assignment[t.subject.index()] as usize;
            let o = assignment[t.object.index()] as usize;
            triples_per_shard[s].push(*t);
            if s != o {
                triples_per_shard[o].push(*t);
                cut_per_shard[s] += 1;
                cut_per_shard[o] += 1;
                cut_edges += 1;
            }
        }
        drop(live);

        let shards: Vec<GraphShard> = owned_per_shard
            .into_iter()
            .zip(triples_per_shard)
            .zip(cut_per_shard)
            .map(|((owned, triples), cut)| build_shard(&global, &local_ids, owned, triples, cut))
            .collect();

        Self {
            global,
            shards,
            assignment,
            local_ids,
            partitioner,
            cut_edges,
            partition_id: NEXT_PARTITION_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of shards `K`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by shard id.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &GraphShard {
        &self.shards[shard]
    }

    /// The full (unsharded) graph.
    pub fn global(&self) -> &Arc<KnowledgeGraph> {
        &self.global
    }

    /// The shard owning a global entity id.
    ///
    /// # Panics
    /// Panics when `global` is out of range.
    pub fn shard_of(&self, global: EntityId) -> usize {
        self.assignment[global.index()] as usize
    }

    /// Translates a global entity id to `(owning shard, local id)`.
    ///
    /// # Panics
    /// Panics when `global` is out of range.
    pub fn to_local(&self, global: EntityId) -> (usize, EntityId) {
        let shard = self.assignment[global.index()] as usize;
        (shard, EntityId::new(self.local_ids[global.index()]))
    }

    /// Translates a shard-local entity id back to the global id.
    ///
    /// # Panics
    /// Panics when `shard` or `local` is out of range.
    pub fn to_global(&self, shard: usize, local: EntityId) -> EntityId {
        self.shards[shard].global_id(local)
    }

    /// Name of the partitioning strategy that built this sharding.
    pub fn partitioner(&self) -> &'static str {
        self.partitioner
    }

    /// Process-unique identity of this partitioning. Two `ShardedGraph`s
    /// never share an id unless one is a clone of the other (clones share
    /// the assignment, so sharing the id is sound). Caches holding data
    /// derived from shard membership key on this to avoid serving strata
    /// from a different partitioning of the same graph.
    pub fn partition_id(&self) -> u64 {
        self.partition_id
    }

    /// Re-shards an updated snapshot of the same logical graph while
    /// **preserving the existing entity→shard assignment**: every entity
    /// this sharding knows keeps its shard, and — because per-shard owned
    /// lists are ascending-global-id order and entity ids are append-only —
    /// its local id too. Entities appended after this sharding was built
    /// (higher global ids) are assigned to the shard with the fewest owned
    /// entities (ties to the lowest shard id, deterministically), landing at
    /// the tail of that shard's owned list. In-flight per-stratum state
    /// therefore stays valid across a write: stratum candidates are owned
    /// entities, and their local ids do not move.
    ///
    /// # Panics
    /// Panics when `global` has fewer entities than this sharding covers —
    /// the snapshot must be a forward evolution of the same graph.
    pub fn repartition_preserving(&self, global: Arc<KnowledgeGraph>) -> Self {
        assert!(
            global.entity_count() >= self.assignment.len(),
            "repartition_preserving needs a forward snapshot: {} entities < {} assigned",
            global.entity_count(),
            self.assignment.len()
        );
        let k = self.shards.len();
        let mut assignment = self.assignment.clone();
        let mut owned_counts: Vec<usize> =
            self.shards.iter().map(GraphShard::owned_count).collect();
        for _ in assignment.len()..global.entity_count() {
            let target = (0..k).min_by_key(|&s| owned_counts[s]).unwrap_or(0);
            assignment.push(target as u32);
            owned_counts[target] += 1;
        }
        Self::from_assignment(global, assignment, k, self.partitioner)
    }

    /// Balance and replication diagnostics.
    pub fn stats(&self) -> ShardingStats {
        let total_local: usize = self.shards.iter().map(GraphShard::edge_count).sum();
        let global_edges = self.global.edge_count();
        ShardingStats {
            partitioner: self.partitioner,
            owned: self.shards.iter().map(GraphShard::owned_count).collect(),
            ghosts: self.shards.iter().map(GraphShard::ghost_count).collect(),
            edges: self.shards.iter().map(GraphShard::edge_count).collect(),
            cut_edges: self.cut_edges,
            replication_factor: if global_edges == 0 {
                1.0
            } else {
                total_local as f64 / global_edges as f64
            },
        }
    }
}

/// Builds one shard's local graph from its owned entities and its bucket of
/// incident triples (global ids, global order): ghost endpoints, triples
/// remapped to local ids, CSR via the same counting sort as
/// [`crate::GraphBuilder::build`].
fn build_shard(
    global: &KnowledgeGraph,
    owned_local_ids: &[u32],
    owned: Vec<EntityId>,
    triples: Vec<Triple>,
    cut_edges: usize,
) -> GraphShard {
    let owned_count = owned.len();
    let mut to_global: Vec<EntityId> = owned;
    // Global id → local id for entities present in this shard; ghosts are
    // discovered in deterministic order (owned entities ascending, each
    // entity's adjacency in CSR order).
    let mut local_of = vec![u32::MAX; global.entity_count()];
    for (local, &g) in to_global.iter().enumerate() {
        debug_assert_eq!(owned_local_ids[g.index()] as usize, local);
        local_of[g.index()] = local as u32;
    }
    for local in 0..owned_count {
        let g = to_global[local];
        for edge in global.neighbors(g) {
            let nbr = edge.neighbor;
            if local_of[nbr.index()] == u32::MAX {
                local_of[nbr.index()] = to_global.len() as u32;
                to_global.push(nbr);
            }
        }
    }

    // Remap the bucketed triples to local endpoint ids.
    let triples: Vec<Triple> = triples
        .into_iter()
        .map(|t| {
            Triple::new(
                EntityId::new(local_of[t.subject.index()]),
                t.predicate,
                EntityId::new(local_of[t.object.index()]),
            )
        })
        .collect();

    let entities: Vec<crate::Entity> = to_global
        .iter()
        .map(|&g| global.entity(g).clone())
        .collect();
    let (edges, offsets) = crate::builder::build_csr(entities.len(), &triples);
    let name_index = NameIndex::build(&entities);
    let type_index = TypeIndex::build(&entities);
    let graph = KnowledgeGraph {
        entities,
        edges,
        offsets,
        triples,
        predicates: global.predicates.clone(),
        types: global.types.clone(),
        attrs: global.attrs.clone(),
        name_index,
        type_index,
        delta: None,
    };
    GraphShard {
        graph,
        owned_count,
        to_global,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::DegreeBalancedPartitioner;
    use crate::GraphBuilder;

    fn chain(n: usize) -> Arc<KnowledgeGraph> {
        let mut b = GraphBuilder::new();
        let mut prev = b.add_entity("n0", &["T"]);
        for i in 1..n {
            let next = b.add_entity(&format!("n{i}"), &["T"]);
            b.add_edge(prev, "next", next);
            prev = next;
        }
        Arc::new(b.build())
    }

    #[test]
    fn id_map_round_trips() {
        let sharded = ShardedGraph::new(chain(10), &DegreeBalancedPartitioner, 3);
        for i in 0..10usize {
            let g = EntityId::from(i);
            let (shard, local) = sharded.to_local(g);
            assert_eq!(sharded.shard_of(g), shard);
            assert!(sharded.shard(shard).is_owned(local));
            assert_eq!(sharded.to_global(shard, local), g);
        }
        let owned_total: usize = sharded.shards().iter().map(GraphShard::owned_count).sum();
        assert_eq!(owned_total, 10);
    }

    #[test]
    fn cut_edges_are_replicated_on_both_sides() {
        let sharded = ShardedGraph::new(chain(12), &DegreeBalancedPartitioner, 4);
        let stats = sharded.stats();
        let local_total: usize = stats.edges.iter().sum();
        // Every global triple is stored once per shard owning an endpoint.
        assert_eq!(local_total, sharded.global().edge_count() + stats.cut_edges);
        assert!(stats.replication_factor >= 1.0);
        assert_eq!(stats.partitioner, "degree-balanced");
    }

    #[test]
    fn repartition_preserving_keeps_ids_and_materialises_writes() {
        let sharded = ShardedGraph::new(chain(10), &DegreeBalancedPartitioner, 3);
        let mut updated = (**sharded.global()).clone();
        updated.upsert_edge_by_name("n11", "next", "n0");
        let updated = Arc::new(updated);
        let re = sharded.repartition_preserving(Arc::clone(&updated));
        assert_eq!(re.shard_count(), 3);
        assert_ne!(re.partition_id(), sharded.partition_id());
        // Pre-existing entities keep both shard and local id.
        for i in 0..10usize {
            let g = EntityId::from(i);
            assert_eq!(re.to_local(g), sharded.to_local(g));
        }
        // The new entity is owned somewhere and its delta edge is sharded.
        let new_id = updated.entity_by_name("n11").unwrap();
        let (shard, local) = re.to_local(new_id);
        assert!(re.shard(shard).is_owned(local));
        let owned_total: usize = re.shards().iter().map(GraphShard::owned_count).sum();
        assert_eq!(owned_total, 11);
        let local_total: usize = re.shards().iter().map(GraphShard::edge_count).sum();
        assert_eq!(local_total, updated.edge_count() + re.stats().cut_edges);
    }

    #[test]
    fn single_is_the_identity() {
        let g = chain(6);
        let sharded = ShardedGraph::single(Arc::clone(&g));
        assert_eq!(sharded.shard_count(), 1);
        let shard = sharded.shard(0);
        assert_eq!(shard.ghost_count(), 0);
        assert_eq!(shard.graph().entity_count(), g.entity_count());
        assert_eq!(shard.graph().edge_count(), g.edge_count());
        for i in 0..g.entity_count() {
            assert_eq!(sharded.to_local(EntityId::from(i)), (0, EntityId::from(i)));
        }
    }
}
