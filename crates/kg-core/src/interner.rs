//! A small string interner mapping names to dense `u32` ids.
//!
//! Names (entity names, predicates, types, attribute names) are stored once
//! and referenced by id everywhere else. Lookup is by `HashMap`, resolution by
//! index into a `Vec<String>`.

use std::collections::HashMap;

/// Bidirectional map between strings and dense ids.
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    lookup: HashMap<String, u32>,
    strings: Vec<String>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            lookup: HashMap::with_capacity(cap),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Interns `name`, returning its id. Re-interning an existing name returns
    /// the previously assigned id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(name.to_owned());
        self.lookup.insert(name.to_owned(), id);
        id
    }

    /// Returns the id of `name` if it was previously interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.lookup.get(name).copied()
    }

    /// Resolves an id back to its string. Panics if the id was not produced by
    /// this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Resolves an id, returning `None` when it is out of range.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StringInterner::new();
        let a = i.intern("product");
        let b = i.intern("assembly");
        let a2 = i.intern("product");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = StringInterner::with_capacity(4);
        let id = i.intern("Germany");
        assert_eq!(i.resolve(id), "Germany");
        assert_eq!(i.get("Germany"), Some(id));
        assert_eq!(i.get("France"), None);
        assert_eq!(i.try_resolve(id), Some("Germany"));
        assert_eq!(i.try_resolve(99), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = StringInterner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(!i.is_empty());
    }
}
