//! Zero-copy graph snapshots: a versioned, checksummed on-disk format for
//! millisecond cold starts.
//!
//! Every `kg-serve` replica used to redo the whole build pipeline on boot:
//! re-parse triples, re-intern four vocabularies, re-run the counting sort
//! into CSR, re-prepare samplers. A snapshot freezes the *results* of that
//! work instead: the CSR arrays (`Vec<EdgeRef>` + offsets), the interned
//! string pools in id order, the attribute stores, the triple log, and —
//! via extension sections owned by downstream crates — the similarity
//! oracle and prebuilt per-component alias tables. Loading is a bounds /
//! checksum / layout validation followed by a straight reinterpretation of
//! little-endian records (`mmap` behind the off-by-default `mmap` feature;
//! a std-only aligned-read path otherwise). Either way there is no
//! re-parse, no re-sort, and no alias rebuild.
//!
//! # File layout (format version 1)
//!
//! ```text
//! offset 0    ┌──────────────────────────────────────────────┐
//!             │ header (64 B): magic "KGSNAP\r\n", version,  │
//!             │ flags, section count, TOC offset, file       │
//!             │ length, TOC crc64, header crc64              │
//! offset 64   ├──────────────────────────────────────────────┤
//!             │ TOC: one 32 B entry per section              │
//!             │   (kind, payload offset, length, crc64)      │
//!             ├──────────── 64-byte aligned ─────────────────┤
//!             │ section payloads, each zero-padded to the    │
//!             │ next 64-byte boundary                        │
//!             └──────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Section payloads are individually
//! checksummed (CRC-64/XZ) and start on 64-byte boundaries so an mmap'd
//! file presents every array cache-line aligned. The CSR edge array is
//! stored either raw (12 B per [`EdgeRef`], flag bit 0 clear) or
//! delta-varint compressed (flag bit 0 set): per adjacency row, neighbour
//! ids are zigzag-deltas from the previous neighbour (seeded with the
//! owning entity id) and `(predicate << 1) | direction` is a plain varint —
//! smaller cache footprint traded against a decode pass (benchmarked both
//! ways by the `cold_start` bench).
//!
//! # Fail-closed validation
//!
//! A truncated, corrupted or version-skewed file is rejected with a
//! structured [`KgError::Snapshot`] naming the failing section — never UB,
//! never a panic. Validation layers: magic → header checksum → version →
//! file length → TOC checksum → per-section bounds/alignment/checksum →
//! per-section structural decode (ids in range, offsets monotonic, string
//! pools well-formed). Only the sections a reader touches are decoded, but
//! [`Snapshot::open`] always verifies every checksum up front.
//!
//! # Version-skew policy
//!
//! The format version is a single `u32`. A reader accepts exactly
//! [`FORMAT_VERSION`]; anything else — older or newer — is a structured
//! error telling the operator to rebuild the snapshot with the matching
//! `kg-snap`. There is no cross-version migration: snapshots are derived
//! artifacts, cheap to regenerate from the source of truth.

use crate::builder::build_csr;
use crate::entity::Entity;
use crate::error::{KgError, KgResult};
use crate::graph::{Direction, EdgeRef, KnowledgeGraph};
use crate::ids::{AttrId, EntityId, PredicateId, TypeId};
use crate::index::{NameIndex, TypeIndex};
use crate::interner::StringInterner;
use crate::predicate::PredicateVocabulary;
use crate::triple::Triple;
use std::io::Write;
use std::path::Path;

/// The snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Section payloads (and the first payload after the TOC) start on
/// multiples of this, so mmap'd arrays are cache-line aligned.
pub const SECTION_ALIGN: usize = 64;

/// Magic bytes at offset 0. The `\r\n` catches text-mode mangling the same
/// way the PNG magic does.
pub const MAGIC: [u8; 8] = *b"KGSNAP\r\n";

/// Header flag bit 0: the CSR edge section is delta-varint compressed
/// ([`section_kind::CSR_EDGES_VARINT`] present instead of
/// [`section_kind::CSR_EDGES`]).
pub const FLAG_COMPRESSED_CSR: u32 = 1;

const HEADER_LEN: usize = 64;
const TOC_ENTRY_LEN: usize = 32;

/// Well-known section kinds. Kinds below 100 are owned by `kg-core`;
/// 100–199 are reserved for extension sections written by downstream
/// crates (similarity store, prebuilt samplers).
pub mod section_kind {
    /// Scalar counts every other section is validated against.
    pub const META: u32 = 1;
    /// Entity names, in entity-id order.
    pub const ENTITY_NAMES: u32 = 2;
    /// Type vocabulary, in type-id (interning) order.
    pub const TYPE_NAMES: u32 = 3;
    /// Predicate vocabulary, in predicate-id (interning) order.
    pub const PREDICATE_NAMES: u32 = 4;
    /// Attribute-name vocabulary, in attr-id (interning) order.
    pub const ATTR_NAMES: u32 = 5;
    /// Per-entity type-id lists (count array + flat ids).
    pub const ENTITY_TYPES: u32 = 6;
    /// Per-entity attribute sets (count array + flat `(id, f64 bits)`).
    pub const ENTITY_ATTRS: u32 = 7;
    /// The triple log, 12 B per triple, insertion order.
    pub const TRIPLES: u32 = 8;
    /// CSR offsets, `u32 × (entity_count + 1)`.
    pub const CSR_OFFSETS: u32 = 9;
    /// CSR adjacency entries, raw 12 B records.
    pub const CSR_EDGES: u32 = 10;
    /// CSR adjacency entries, delta-varint compressed.
    pub const CSR_EDGES_VARINT: u32 = 11;
    /// Predicate similarity store (written by `kg-embed`).
    pub const SIMILARITY: u32 = 100;
    /// Prebuilt per-component samplers with alias tables (written by
    /// `kg-sampling`).
    pub const SAMPLERS: u32 = 101;

    /// Human-readable section name, used in error messages and by
    /// `kg-snap inspect`/`verify`.
    pub fn name(kind: u32) -> &'static str {
        match kind {
            META => "meta",
            ENTITY_NAMES => "entity_names",
            TYPE_NAMES => "type_names",
            PREDICATE_NAMES => "predicate_names",
            ATTR_NAMES => "attr_names",
            ENTITY_TYPES => "entity_types",
            ENTITY_ATTRS => "entity_attrs",
            TRIPLES => "triples",
            CSR_OFFSETS => "csr_offsets",
            CSR_EDGES => "csr_edges",
            CSR_EDGES_VARINT => "csr_edges_varint",
            SIMILARITY => "similarity",
            SAMPLERS => "samplers",
            _ => "unknown",
        }
    }
}

// ---------------------------------------------------------------------
// CRC-64/XZ (ECMA-182 polynomial, reflected), slice-by-8. Checksum
// validation runs over every byte of a snapshot at load, so the byte-at-
// a-time table (~3 ns/byte) would dominate cold start on multi-megabyte
// files; eight tables bring it under 1 ns/byte.
// ---------------------------------------------------------------------

const fn crc64_tables() -> [[u64; 256]; 8] {
    // Reflected ECMA-182 polynomial.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC64_TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64/XZ of `bytes` — the per-section checksum of the format.
pub fn crc64(bytes: &[u8]) -> u64 {
    let t = &CRC64_TABLES;
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = crc ^ u64::from_le_bytes(chunk.try_into().unwrap());
        crc = t[7][(v & 0xFF) as usize]
            ^ t[6][((v >> 8) & 0xFF) as usize]
            ^ t[5][((v >> 16) & 0xFF) as usize]
            ^ t[4][((v >> 24) & 0xFF) as usize]
            ^ t[3][((v >> 32) & 0xFF) as usize]
            ^ t[2][((v >> 40) & 0xFF) as usize]
            ^ t[1][((v >> 48) & 0xFF) as usize]
            ^ t[0][((v >> 56) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Builds the structured snapshot error every validation path uses; public
/// so extension-section codecs report failures in the same shape.
pub fn snapshot_error(section: &str, message: impl Into<String>) -> KgError {
    KgError::Snapshot {
        section: section.to_owned(),
        message: message.into(),
    }
}

use snapshot_error as err;

// ---------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------

/// Appends a little-endian `u32` to a section payload under construction.
/// Public so extension-section writers (`kg-embed`, `kg-sampling`) share
/// the exact encoding of the core sections.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to a section payload under construction.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a section payload. Every
/// read is fallible so a structurally corrupt payload (valid checksum,
/// nonsense content) degrades to a structured [`KgError::Snapshot`], never
/// a panic. Extension crates use it to decode their own sections with the
/// same fail-closed discipline as the core sections.
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    /// A reader positioned at the start of `bytes`; `section` names the
    /// section in error messages.
    pub fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self {
            bytes,
            pos: 0,
            section,
        }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> KgResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(err(
                self.section,
                format!(
                    "payload truncated: needed {n} bytes at offset {}, section is {} bytes",
                    self.pos,
                    self.bytes.len()
                ),
            )),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> KgResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> KgResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a LEB128 varint (≤ 64 bits).
    pub fn varint(&mut self) -> KgResult<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err(err(self.section, "varint longer than 64 bits"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// True when the cursor has consumed the whole payload.
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fails when bytes remain past the decoded content.
    pub fn expect_done(&self) -> KgResult<()> {
        if self.done() {
            Ok(())
        } else {
            Err(err(
                self.section,
                format!(
                    "trailing garbage: {} bytes past the end of the encoded content",
                    self.bytes.len() - self.pos
                ),
            ))
        }
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Assembles a snapshot image: sections are added as `(kind, payload)`
/// pairs, [`SnapshotWriter::finish`] lays them out 64-byte aligned behind
/// the header + TOC and computes every checksum.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    flags: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer (no sections, no flags).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a header flag bit (e.g. [`FLAG_COMPRESSED_CSR`]).
    pub fn set_flag(&mut self, flag: u32) {
        self.flags |= flag;
    }

    /// Appends a section. Kinds must be unique within one snapshot.
    pub fn add_section(&mut self, kind: u32, payload: Vec<u8>) {
        debug_assert!(
            !self.sections.iter().any(|(k, _)| *k == kind),
            "duplicate snapshot section kind {kind}"
        );
        self.sections.push((kind, payload));
    }

    /// Produces the final byte image.
    pub fn finish(&self) -> Vec<u8> {
        let toc_offset = HEADER_LEN;
        let toc_len = self.sections.len() * TOC_ENTRY_LEN;
        let mut payload_offset = align_up(toc_offset + toc_len, SECTION_ALIGN);

        // Lay out payload offsets first so the TOC can be written in one go.
        let mut entries = Vec::with_capacity(self.sections.len());
        for (kind, payload) in &self.sections {
            entries.push((*kind, payload_offset as u64, payload.len() as u64));
            payload_offset = align_up(payload_offset + payload.len(), SECTION_ALIGN);
        }
        let file_len = payload_offset;

        let mut toc = Vec::with_capacity(toc_len);
        for ((kind, offset, len), (_, payload)) in entries.iter().zip(&self.sections) {
            put_u32(&mut toc, *kind);
            put_u32(&mut toc, 0); // reserved
            put_u64(&mut toc, *offset);
            put_u64(&mut toc, *len);
            put_u64(&mut toc, crc64(payload));
        }

        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u32(&mut header, self.flags);
        put_u32(&mut header, self.sections.len() as u32);
        put_u32(&mut header, 0); // reserved
        put_u64(&mut header, toc_offset as u64);
        put_u64(&mut header, file_len as u64);
        put_u64(&mut header, crc64(&toc));
        let header_crc = crc64(&header);
        put_u64(&mut header, header_crc);
        header.resize(HEADER_LEN, 0);

        let mut out = Vec::with_capacity(file_len);
        out.extend_from_slice(&header);
        out.extend_from_slice(&toc);
        for ((_, offset, _), (_, payload)) in entries.iter().zip(&self.sections) {
            out.resize(*offset as usize, 0);
            out.extend_from_slice(payload);
        }
        out.resize(file_len, 0);
        out
    }
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

// ---------------------------------------------------------------------
// Backing storage: owned bytes or an mmap'd region.
// ---------------------------------------------------------------------

#[cfg(feature = "mmap")]
mod mapping {
    //! A minimal read-only `mmap` wrapper over raw syscalls (the offline
    //! build has no `memmap2`; libc is already linked by std).
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    /// A read-only private mapping of a whole file.
    pub struct Mapped {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned exclusively by `Mapped`.
    unsafe impl Send for Mapped {}
    unsafe impl Sync for Mapped {}

    impl Mapped {
        pub fn of(file: &File, len: usize) -> io::Result<Self> {
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot mmap an empty file",
                ));
            }
            // SAFETY: len > 0, fd is a valid open file, and we request a
            // fresh private read-only mapping chosen by the kernel.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for the
            // lifetime of `self`; the file is opened read-only by the
            // loader so the kernel keeps the pages stable.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful mmap call.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    impl std::fmt::Debug for Mapped {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Mapped({} bytes)", self.len)
        }
    }
}

#[derive(Debug)]
enum Storage {
    Owned(Vec<u8>),
    #[cfg(feature = "mmap")]
    Mapped(mapping::Mapped),
}

impl Storage {
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Owned(v) => v,
            #[cfg(feature = "mmap")]
            Storage::Mapped(m) => m.bytes(),
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Location and checksum of one section, as recorded in the TOC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section kind (see [`section_kind`]).
    pub kind: u32,
    /// Payload offset from the start of the file (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (padding excluded).
    pub len: u64,
    /// CRC-64/XZ of the payload.
    pub checksum: u64,
}

impl SectionInfo {
    /// Human-readable section name.
    pub fn name(&self) -> &'static str {
        section_kind::name(self.kind)
    }
}

/// A validated snapshot image: header, TOC and every section checksum have
/// been verified. Section payloads are borrowed straight out of the backing
/// buffer (owned bytes, or the mapped region under the `mmap` feature).
#[derive(Debug)]
pub struct Snapshot {
    storage: Storage,
    version: u32,
    flags: u32,
    sections: Vec<SectionInfo>,
}

impl Snapshot {
    /// Opens and fully validates a snapshot file.
    ///
    /// With the `mmap` feature enabled the file is mapped instead of read;
    /// validation still walks every section once (which also pre-faults
    /// the pages the loader is about to reinterpret).
    pub fn open(path: impl AsRef<Path>) -> KgResult<Self> {
        Self::open_impl(path.as_ref())
    }

    #[cfg(feature = "mmap")]
    fn open_impl(path: &Path) -> KgResult<Self> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(err("header", "file is empty"));
        }
        let mapped = mapping::Mapped::of(&file, len).map_err(KgError::Io)?;
        Self::from_storage(Storage::Mapped(mapped))
    }

    #[cfg(not(feature = "mmap"))]
    fn open_impl(path: &Path) -> KgResult<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(bytes)
    }

    /// Validates a snapshot image held in memory.
    pub fn from_bytes(bytes: Vec<u8>) -> KgResult<Self> {
        Self::from_storage(Storage::Owned(bytes))
    }

    fn from_storage(storage: Storage) -> KgResult<Self> {
        let sections;
        let version;
        let flags;
        {
            let bytes = storage.bytes();
            if bytes.len() < HEADER_LEN {
                return Err(err(
                    "header",
                    format!(
                        "file is {} bytes, shorter than the 64-byte header",
                        bytes.len()
                    ),
                ));
            }
            if bytes[..8] != MAGIC {
                return Err(err("header", "bad magic: not a kg snapshot file"));
            }
            let stored_header_crc = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
            let computed_header_crc = crc64(&bytes[..48]);
            if stored_header_crc != computed_header_crc {
                return Err(err(
                    "header",
                    format!(
                        "header checksum mismatch: stored {stored_header_crc:#018x}, \
                         computed {computed_header_crc:#018x}"
                    ),
                ));
            }
            version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
            if version != FORMAT_VERSION {
                return Err(err(
                    "header",
                    format!(
                        "format version skew: file is v{version}, this build reads v{FORMAT_VERSION}; \
                         rebuild the snapshot with the matching kg-snap"
                    ),
                ));
            }
            flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
            let section_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
            let toc_offset = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
            let file_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
            let toc_crc = u64::from_le_bytes(bytes[40..48].try_into().unwrap());

            if file_len != bytes.len() {
                return Err(err(
                    "header",
                    format!(
                        "file length mismatch: header says {file_len} bytes, file is {} \
                         (truncated or padded)",
                        bytes.len()
                    ),
                ));
            }
            let toc_len = section_count
                .checked_mul(TOC_ENTRY_LEN)
                .ok_or_else(|| err("toc", "section count overflows"))?;
            let toc_end = toc_offset
                .checked_add(toc_len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| {
                    err(
                        "toc",
                        format!("table of contents ({section_count} entries) exceeds the file"),
                    )
                })?;
            let toc = &bytes[toc_offset..toc_end];
            let computed_toc_crc = crc64(toc);
            if toc_crc != computed_toc_crc {
                return Err(err(
                    "toc",
                    format!(
                        "toc checksum mismatch: stored {toc_crc:#018x}, \
                         computed {computed_toc_crc:#018x}"
                    ),
                ));
            }

            let mut parsed = Vec::with_capacity(section_count);
            for i in 0..section_count {
                let e = &toc[i * TOC_ENTRY_LEN..(i + 1) * TOC_ENTRY_LEN];
                let info = SectionInfo {
                    kind: u32::from_le_bytes(e[0..4].try_into().unwrap()),
                    offset: u64::from_le_bytes(e[8..16].try_into().unwrap()),
                    len: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                    checksum: u64::from_le_bytes(e[24..32].try_into().unwrap()),
                };
                let name = info.name();
                if parsed.iter().any(|s: &SectionInfo| s.kind == info.kind) {
                    return Err(err("toc", format!("duplicate section kind {name:?}")));
                }
                if info.offset as usize % SECTION_ALIGN != 0 {
                    return Err(err(
                        name,
                        format!(
                            "misaligned payload: offset {} is not a multiple of {SECTION_ALIGN}",
                            info.offset
                        ),
                    ));
                }
                let end = info
                    .offset
                    .checked_add(info.len)
                    .filter(|&e| e as usize <= bytes.len())
                    .ok_or_else(|| {
                        err(
                            name,
                            format!(
                                "payload out of bounds: offset {} + len {} exceeds file of {} bytes",
                                info.offset,
                                info.len,
                                bytes.len()
                            ),
                        )
                    })?;
                let payload = &bytes[info.offset as usize..end as usize];
                let computed = crc64(payload);
                if computed != info.checksum {
                    return Err(err(
                        name,
                        format!(
                            "checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                            info.checksum
                        ),
                    ));
                }
                parsed.push(info);
            }
            sections = parsed;
        }
        Ok(Self {
            storage,
            version,
            flags,
            sections,
        })
    }

    /// The format version of the file (always [`FORMAT_VERSION`] after a
    /// successful open).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The header flag bits.
    pub fn flags(&self) -> u32 {
        self.flags
    }

    /// True when the CSR edge section is delta-varint compressed.
    pub fn compressed_csr(&self) -> bool {
        self.flags & FLAG_COMPRESSED_CSR != 0
    }

    /// The table of contents, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// The payload of a section, if present.
    pub fn section(&self, kind: u32) -> Option<&[u8]> {
        let info = self.sections.iter().find(|s| s.kind == kind)?;
        let bytes = self.storage.bytes();
        Some(&bytes[info.offset as usize..(info.offset + info.len) as usize])
    }

    /// The payload of a section that must be present.
    fn require(&self, kind: u32) -> KgResult<&[u8]> {
        self.section(kind).ok_or_else(|| {
            err(
                section_kind::name(kind),
                "required section is missing from the snapshot",
            )
        })
    }
}

// ---------------------------------------------------------------------
// Graph section codecs
// ---------------------------------------------------------------------

/// Options controlling how a snapshot is written.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotOptions {
    /// Store the CSR edge array delta-varint compressed instead of raw.
    pub compress_csr: bool,
}

fn encode_string_pool<'a>(count: usize, strings: impl Iterator<Item = &'a str>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, count as u64);
    let mut written = 0usize;
    for s in strings {
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
        written += 1;
    }
    debug_assert_eq!(written, count, "string pool count drifted");
    out
}

fn decode_string_pool(bytes: &[u8], section: &'static str, expected: u64) -> KgResult<Vec<String>> {
    let mut c = SectionReader::new(bytes, section);
    let count = c.u64()?;
    if count != expected {
        return Err(err(
            section,
            format!("count mismatch: section holds {count} strings, meta says {expected}"),
        ));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let s = std::str::from_utf8(raw)
            .map_err(|e| err(section, format!("invalid utf-8 in string pool: {e}")))?;
        out.push(s.to_owned());
    }
    c.expect_done()?;
    Ok(out)
}

/// Per-graph counts stored in the META section; every other section is
/// validated against them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta {
    entities: u64,
    triples: u64,
    edge_entries: u64,
    types: u64,
    predicates: u64,
    attrs: u64,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        for v in [
            self.entities,
            self.triples,
            self.edge_entries,
            self.types,
            self.predicates,
            self.attrs,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    fn decode(bytes: &[u8]) -> KgResult<Self> {
        let mut c = SectionReader::new(bytes, "meta");
        let meta = Self {
            entities: c.u64()?,
            triples: c.u64()?,
            edge_entries: c.u64()?,
            types: c.u64()?,
            predicates: c.u64()?,
            attrs: c.u64()?,
        };
        c.expect_done()?;
        // The CSR capacity assert of `build_csr`, as a structured error.
        if meta.entities > u32::MAX as u64 || meta.edge_entries > u32::MAX as u64 {
            return Err(err("meta", "graph exceeds u32 id capacity"));
        }
        Ok(meta)
    }
}

fn encode_entity_types(entities: &[Entity]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entities {
        put_u32(&mut out, e.types.len() as u32);
    }
    for e in entities {
        for t in &e.types {
            put_u32(&mut out, t.raw());
        }
    }
    out
}

fn encode_entity_attrs(entities: &[Entity]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entities {
        put_u32(&mut out, e.attributes.len() as u32);
    }
    for e in entities {
        for (a, v) in e.attributes.iter() {
            put_u32(&mut out, a.raw());
            put_u64(&mut out, v.get().to_bits());
        }
    }
    out
}

fn encode_triples(triples: &[Triple]) -> Vec<u8> {
    let mut out = Vec::with_capacity(triples.len() * 12);
    for t in triples {
        put_u32(&mut out, t.subject.raw());
        put_u32(&mut out, t.predicate.raw());
        put_u32(&mut out, t.object.raw());
    }
    out
}

fn encode_offsets(offsets: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(offsets.len() * 4);
    for &o in offsets {
        put_u32(&mut out, o);
    }
    out
}

fn encode_edges_raw(edges: &[EdgeRef]) -> Vec<u8> {
    let mut out = Vec::with_capacity(edges.len() * 12);
    for e in edges {
        put_u32(&mut out, e.neighbor.raw());
        put_u32(&mut out, e.predicate.raw());
        put_u32(&mut out, (e.direction == Direction::Incoming) as u32);
    }
    out
}

/// Delta-varint CSR edge encoding: per adjacency row, the neighbour id is
/// a zigzag delta from the previous neighbour in the row (seeded with the
/// owning entity id — neighbours cluster near their owner in generated
/// graphs), and `(predicate << 1) | incoming` is a plain varint.
fn encode_edges_varint(edges: &[EdgeRef], offsets: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(edges.len() * 3);
    for entity in 0..offsets.len().saturating_sub(1) {
        let row = &edges[offsets[entity] as usize..offsets[entity + 1] as usize];
        let mut prev = entity as i64;
        for e in row {
            let n = e.neighbor.raw() as i64;
            put_varint(&mut out, zigzag(n - prev));
            prev = n;
            let tag =
                (u64::from(e.predicate.raw()) << 1) | u64::from(e.direction == Direction::Incoming);
            put_varint(&mut out, tag);
        }
    }
    out
}

fn decode_edges_varint(bytes: &[u8], offsets: &[u32], meta: &Meta) -> KgResult<Vec<EdgeRef>> {
    let section = "csr_edges_varint";
    let mut c = SectionReader::new(bytes, section);
    let mut edges = Vec::with_capacity(meta.edge_entries as usize);
    for entity in 0..offsets.len().saturating_sub(1) {
        let degree = (offsets[entity + 1] - offsets[entity]) as usize;
        let mut prev = entity as i64;
        for _ in 0..degree {
            let n = prev + unzigzag(c.varint()?);
            if n < 0 || n as u64 >= meta.entities {
                return Err(err(
                    section,
                    format!(
                        "neighbour id {n} out of range for {} entities",
                        meta.entities
                    ),
                ));
            }
            prev = n;
            let tag = c.varint()?;
            let predicate = tag >> 1;
            if predicate >= meta.predicates {
                return Err(err(
                    section,
                    format!(
                        "predicate id {predicate} out of range for {} predicates",
                        meta.predicates
                    ),
                ));
            }
            edges.push(EdgeRef {
                neighbor: EntityId::new(n as u32),
                predicate: PredicateId::new(predicate as u32),
                direction: if tag & 1 == 1 {
                    Direction::Incoming
                } else {
                    Direction::Outgoing
                },
            });
        }
    }
    c.expect_done()?;
    Ok(edges)
}

fn decode_edges_raw(bytes: &[u8], meta: &Meta) -> KgResult<Vec<EdgeRef>> {
    let section = "csr_edges";
    if bytes.len() != meta.edge_entries as usize * 12 {
        return Err(err(
            section,
            format!(
                "length mismatch: {} bytes for {} adjacency entries (12 bytes each)",
                bytes.len(),
                meta.edge_entries
            ),
        ));
    }
    let mut edges = Vec::with_capacity(meta.edge_entries as usize);
    for rec in bytes.chunks_exact(12) {
        let neighbor = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let predicate = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let dir = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        if u64::from(neighbor) >= meta.entities {
            return Err(err(
                section,
                format!(
                    "neighbour id {neighbor} out of range for {} entities",
                    meta.entities
                ),
            ));
        }
        if u64::from(predicate) >= meta.predicates {
            return Err(err(
                section,
                format!(
                    "predicate id {predicate} out of range for {} predicates",
                    meta.predicates
                ),
            ));
        }
        let direction = match dir {
            0 => Direction::Outgoing,
            1 => Direction::Incoming,
            other => {
                return Err(err(section, format!("invalid direction tag {other}")));
            }
        };
        edges.push(EdgeRef {
            neighbor: EntityId::new(neighbor),
            predicate: PredicateId::new(predicate),
            direction,
        });
    }
    Ok(edges)
}

fn interner_from_strings(strings: Vec<String>) -> StringInterner {
    let mut interner = StringInterner::with_capacity(strings.len());
    for s in &strings {
        interner.intern(s);
    }
    interner
}

impl KnowledgeGraph {
    /// Encodes this graph's core sections (everything `kg-core` owns) into
    /// a [`SnapshotWriter`]. Downstream crates append their extension
    /// sections (similarity store, prebuilt samplers) before `finish`.
    ///
    /// # Errors
    /// Fails when the graph carries a pending delta overlay — snapshots
    /// capture frozen CSR state, so call [`KnowledgeGraph::compact`] first.
    pub fn snapshot_writer(&self, options: &SnapshotOptions) -> KgResult<SnapshotWriter> {
        if self.delta.is_some() {
            return Err(err(
                "meta",
                "graph has a pending delta overlay; compact() before writing a snapshot",
            ));
        }
        let meta = Meta {
            entities: self.entities.len() as u64,
            triples: self.triples.len() as u64,
            edge_entries: self.edges.len() as u64,
            types: self.types.len() as u64,
            predicates: self.predicates.len() as u64,
            attrs: self.attrs.len() as u64,
        };
        let mut w = SnapshotWriter::new();
        w.add_section(section_kind::META, meta.encode());
        w.add_section(
            section_kind::ENTITY_NAMES,
            encode_string_pool(
                self.entities.len(),
                self.entities.iter().map(|e| e.name.as_str()),
            ),
        );
        w.add_section(
            section_kind::TYPE_NAMES,
            encode_string_pool(self.types.len(), self.types.iter().map(|(_, s)| s)),
        );
        w.add_section(
            section_kind::PREDICATE_NAMES,
            encode_string_pool(
                self.predicates.len(),
                self.predicates.iter().map(|(_, s)| s),
            ),
        );
        w.add_section(
            section_kind::ATTR_NAMES,
            encode_string_pool(self.attrs.len(), self.attrs.iter().map(|(_, s)| s)),
        );
        w.add_section(
            section_kind::ENTITY_TYPES,
            encode_entity_types(&self.entities),
        );
        w.add_section(
            section_kind::ENTITY_ATTRS,
            encode_entity_attrs(&self.entities),
        );
        w.add_section(section_kind::TRIPLES, encode_triples(&self.triples));
        w.add_section(section_kind::CSR_OFFSETS, encode_offsets(&self.offsets));
        if options.compress_csr {
            w.set_flag(FLAG_COMPRESSED_CSR);
            w.add_section(
                section_kind::CSR_EDGES_VARINT,
                encode_edges_varint(&self.edges, &self.offsets),
            );
        } else {
            w.add_section(section_kind::CSR_EDGES, encode_edges_raw(&self.edges));
        }
        Ok(w)
    }

    /// The snapshot image of this graph as bytes (no extension sections).
    pub fn snapshot_bytes(&self, options: &SnapshotOptions) -> KgResult<Vec<u8>> {
        Ok(self.snapshot_writer(options)?.finish())
    }

    /// Writes a snapshot of this graph to `path` (default options, no
    /// extension sections). The file is written to a temporary sibling and
    /// atomically renamed into place so a crashed writer never leaves a
    /// half-written snapshot behind.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> KgResult<()> {
        self.write_snapshot_with(path, &SnapshotOptions::default())
    }

    /// [`KnowledgeGraph::write_snapshot`] with explicit options.
    pub fn write_snapshot_with(
        &self,
        path: impl AsRef<Path>,
        options: &SnapshotOptions,
    ) -> KgResult<()> {
        write_snapshot_file(path.as_ref(), &self.snapshot_bytes(options)?)
    }

    /// Opens a snapshot file and reconstructs the graph: checksum/layout
    /// validation plus a linear reinterpretation of the stored arrays — no
    /// re-parse, no re-sort. The two hash indexes (name → entity,
    /// type → entities) are rebuilt from the decoded arrays; both builds
    /// are deterministic functions of the entity table, so the result is
    /// bitwise-identical to the freshly built graph.
    pub fn open_snapshot(path: impl AsRef<Path>) -> KgResult<Self> {
        Self::from_snapshot(&Snapshot::open(path)?)
    }

    /// Reconstructs a graph from an already-validated [`Snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> KgResult<Self> {
        let meta = Meta::decode(snap.require(section_kind::META)?)?;

        let entity_names = decode_string_pool(
            snap.require(section_kind::ENTITY_NAMES)?,
            "entity_names",
            meta.entities,
        )?;
        let type_names = decode_string_pool(
            snap.require(section_kind::TYPE_NAMES)?,
            "type_names",
            meta.types,
        )?;
        let predicate_names = decode_string_pool(
            snap.require(section_kind::PREDICATE_NAMES)?,
            "predicate_names",
            meta.predicates,
        )?;
        let attr_names = decode_string_pool(
            snap.require(section_kind::ATTR_NAMES)?,
            "attr_names",
            meta.attrs,
        )?;

        // Per-entity types.
        let mut c = SectionReader::new(snap.require(section_kind::ENTITY_TYPES)?, "entity_types");
        let mut type_counts = Vec::with_capacity(meta.entities as usize);
        for _ in 0..meta.entities {
            type_counts.push(c.u32()? as usize);
        }
        let mut entity_types = Vec::with_capacity(meta.entities as usize);
        for &n in &type_counts {
            let mut types = Vec::with_capacity(n);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let t = c.u32()?;
                if u64::from(t) >= meta.types {
                    return Err(err(
                        "entity_types",
                        format!("type id {t} out of range for {} types", meta.types),
                    ));
                }
                // Entity type lists are sorted + deduped by construction.
                if prev.is_some_and(|p| p >= t) {
                    return Err(err(
                        "entity_types",
                        format!("type list not strictly ascending at id {t}"),
                    ));
                }
                prev = Some(t);
                types.push(TypeId::new(t));
            }
            entity_types.push(types);
        }
        c.expect_done()?;

        // Per-entity attributes.
        let mut c = SectionReader::new(snap.require(section_kind::ENTITY_ATTRS)?, "entity_attrs");
        let mut attr_counts = Vec::with_capacity(meta.entities as usize);
        for _ in 0..meta.entities {
            attr_counts.push(c.u32()? as usize);
        }
        let mut entity_attrs: Vec<Vec<(AttrId, f64)>> = Vec::with_capacity(meta.entities as usize);
        for &n in &attr_counts {
            let mut attrs = Vec::with_capacity(n);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let a = c.u32()?;
                if u64::from(a) >= meta.attrs {
                    return Err(err(
                        "entity_attrs",
                        format!(
                            "attribute id {a} out of range for {} attributes",
                            meta.attrs
                        ),
                    ));
                }
                if prev.is_some_and(|p| p >= a) {
                    return Err(err(
                        "entity_attrs",
                        format!("attribute list not strictly ascending at id {a}"),
                    ));
                }
                prev = Some(a);
                let bits = c.u64()?;
                attrs.push((AttrId::new(a), f64::from_bits(bits)));
            }
            entity_attrs.push(attrs);
        }
        c.expect_done()?;

        // Triples.
        let triple_bytes = snap.require(section_kind::TRIPLES)?;
        if triple_bytes.len() != meta.triples as usize * 12 {
            return Err(err(
                "triples",
                format!(
                    "length mismatch: {} bytes for {} triples (12 bytes each)",
                    triple_bytes.len(),
                    meta.triples
                ),
            ));
        }
        let mut triples = Vec::with_capacity(meta.triples as usize);
        for rec in triple_bytes.chunks_exact(12) {
            let s = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let p = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let o = u32::from_le_bytes(rec[8..12].try_into().unwrap());
            if u64::from(s) >= meta.entities || u64::from(o) >= meta.entities {
                return Err(err(
                    "triples",
                    format!("entity id out of range in triple ({s}, {p}, {o})"),
                ));
            }
            if u64::from(p) >= meta.predicates {
                return Err(err(
                    "triples",
                    format!(
                        "predicate id {p} out of range for {} predicates",
                        meta.predicates
                    ),
                ));
            }
            triples.push(Triple::new(
                EntityId::new(s),
                PredicateId::new(p),
                EntityId::new(o),
            ));
        }

        // CSR offsets.
        let offset_bytes = snap.require(section_kind::CSR_OFFSETS)?;
        if offset_bytes.len() != (meta.entities as usize + 1) * 4 {
            return Err(err(
                "csr_offsets",
                format!(
                    "length mismatch: {} bytes for {} entities (+1 sentinel, 4 bytes each)",
                    offset_bytes.len(),
                    meta.entities
                ),
            ));
        }
        let mut offsets = Vec::with_capacity(meta.entities as usize + 1);
        for rec in offset_bytes.chunks_exact(4) {
            offsets.push(u32::from_le_bytes(rec.try_into().unwrap()));
        }
        if offsets.first() != Some(&0) {
            return Err(err("csr_offsets", "first offset must be 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("csr_offsets", "offsets must be non-decreasing"));
        }
        if u64::from(*offsets.last().unwrap()) != meta.edge_entries {
            return Err(err(
                "csr_offsets",
                format!(
                    "last offset {} disagrees with meta edge count {}",
                    offsets.last().unwrap(),
                    meta.edge_entries
                ),
            ));
        }

        // CSR edges: raw or delta-varint, selected by the header flag.
        let edges = if snap.compressed_csr() {
            decode_edges_varint(
                snap.require(section_kind::CSR_EDGES_VARINT)?,
                &offsets,
                &meta,
            )?
        } else {
            decode_edges_raw(snap.require(section_kind::CSR_EDGES)?, &meta)?
        };

        // Assemble entities and rebuild the two hash indexes (deterministic
        // functions of the entity table — hash iteration order is never
        // observable through the graph API).
        let mut entities = Vec::with_capacity(meta.entities as usize);
        for ((name, types), attrs) in entity_names.into_iter().zip(entity_types).zip(entity_attrs) {
            let mut e = Entity::new(name, types);
            for (a, v) in attrs {
                e.attributes.set(a, v);
            }
            entities.push(e);
        }
        let name_index = NameIndex::build(&entities);
        if name_index.len() != entities.len() {
            return Err(err(
                "entity_names",
                "duplicate entity names: the name index must be a bijection",
            ));
        }
        let type_index = TypeIndex::build(&entities);

        Ok(KnowledgeGraph {
            entities,
            edges,
            offsets,
            triples,
            predicates: {
                let mut p = PredicateVocabulary::new();
                for name in &predicate_names {
                    p.intern(name);
                }
                p
            },
            types: interner_from_strings(type_names),
            attrs: interner_from_strings(attr_names),
            name_index,
            type_index,
            delta: None,
        })
    }
}

/// Writes `bytes` to `path` via a temporary sibling + atomic rename, so
/// readers never observe a torn snapshot.
pub fn write_snapshot_file(path: &Path, bytes: &[u8]) -> KgResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Consistency check used by `kg-snap verify` beyond the checksum walk of
/// [`Snapshot::open`]: structurally decodes the graph sections and — the
/// deep invariant — re-runs the counting sort over the stored triples and
/// compares it against the stored CSR arrays, proving `neighbors()` will
/// serve exactly what a from-scratch build would.
pub fn verify_graph_sections(snap: &Snapshot) -> KgResult<()> {
    let graph = KnowledgeGraph::from_snapshot(snap)?;
    let (edges, offsets) = build_csr(graph.entities.len(), &graph.triples);
    if offsets != graph.offsets {
        return Err(err(
            "csr_offsets",
            "stored offsets disagree with a counting-sort rebuild of the stored triples",
        ));
    }
    if edges != graph.edges {
        return Err(err(
            if snap.compressed_csr() {
                "csr_edges_varint"
            } else {
                "csr_edges"
            },
            "stored adjacency disagrees with a counting-sort rebuild of the stored triples",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_entity("Germany", &["Country"]);
        let vw = b.add_entity("Volkswagen", &["Company"]);
        let bmw = b.add_entity("BMW_320", &["Automobile", "MeanOfTransportation"]);
        let audi = b.add_entity("Audi_TT", &["Automobile"]);
        b.set_attribute(bmw, "price", 41_500.0);
        b.set_attribute(bmw, "horsepower", 184.0);
        b.set_attribute(audi, "price", 52_000.0);
        b.add_edge(bmw, "assembly", de);
        b.add_edge(audi, "assembly", vw);
        b.add_edge(vw, "country", de);
        b.add_edge(de, "product", bmw);
        b.add_edge(de, "self", de); // self-loop
        b.build()
    }

    fn assert_graphs_bitwise_equal(a: &KnowledgeGraph, b: &KnowledgeGraph) {
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.triples, b.triples);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.offsets, b.offsets);
        for (ea, eb) in a.entities.iter().zip(&b.entities) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.types, eb.types);
            let av: Vec<(u32, u64)> = ea
                .attributes
                .iter()
                .map(|(k, v)| (k.raw(), v.get().to_bits()))
                .collect();
            let bv: Vec<(u32, u64)> = eb
                .attributes
                .iter()
                .map(|(k, v)| (k.raw(), v.get().to_bits()))
                .collect();
            assert_eq!(av, bv);
        }
        let names =
            |g: &KnowledgeGraph| -> Vec<String> { g.types().map(|(_, s)| s.to_owned()).collect() };
        assert_eq!(names(a), names(b));
    }

    #[test]
    fn round_trip_is_bitwise_identical_raw_and_compressed() {
        let g = sample_graph();
        for compress in [false, true] {
            let bytes = g
                .snapshot_bytes(&SnapshotOptions {
                    compress_csr: compress,
                })
                .unwrap();
            let snap = Snapshot::from_bytes(bytes).unwrap();
            assert_eq!(snap.version(), FORMAT_VERSION);
            assert_eq!(snap.compressed_csr(), compress);
            let loaded = KnowledgeGraph::from_snapshot(&snap).unwrap();
            assert_graphs_bitwise_equal(&g, &loaded);
            verify_graph_sections(&snap).unwrap();
            // The snapshot of the loaded graph is byte-identical too.
            let rebytes = loaded
                .snapshot_bytes(&SnapshotOptions {
                    compress_csr: compress,
                })
                .unwrap();
            let original = g
                .snapshot_bytes(&SnapshotOptions {
                    compress_csr: compress,
                })
                .unwrap();
            assert_eq!(rebytes, original);
        }
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join(format!("kg-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.kgsnap");
        g.write_snapshot(&path).unwrap();
        let loaded = KnowledgeGraph::open_snapshot(&path).unwrap();
        assert_graphs_bitwise_equal(&g, &loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let bytes = g.snapshot_bytes(&SnapshotOptions::default()).unwrap();
        let loaded = KnowledgeGraph::from_snapshot(&Snapshot::from_bytes(bytes).unwrap()).unwrap();
        assert_eq!(loaded.entity_count(), 0);
        assert_eq!(loaded.edge_count(), 0);
    }

    #[test]
    fn sections_are_aligned() {
        let g = sample_graph();
        let bytes = g.snapshot_bytes(&SnapshotOptions::default()).unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        for s in snap.sections() {
            assert_eq!(s.offset as usize % SECTION_ALIGN, 0, "{}", s.name());
        }
    }

    #[test]
    fn truncated_file_fails_closed() {
        let g = sample_graph();
        let bytes = g.snapshot_bytes(&SnapshotOptions::default()).unwrap();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            let e = Snapshot::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            match e {
                KgError::Snapshot { .. } => {}
                other => panic!("expected structured snapshot error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_skew_fail_closed() {
        let g = sample_graph();
        let mut bytes = g.snapshot_bytes(&SnapshotOptions::default()).unwrap();
        let mut mangled = bytes.clone();
        mangled[0] ^= 0xFF;
        let e = Snapshot::from_bytes(mangled).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");

        // A future version with a correct header checksum is a skew error.
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let crc = crc64(&bytes[..48]);
        bytes[48..56].copy_from_slice(&crc.to_le_bytes());
        let e = Snapshot::from_bytes(bytes).unwrap_err();
        assert!(e.to_string().contains("version skew"), "{e}");
    }

    #[test]
    fn every_section_flip_is_detected_and_named() {
        let g = sample_graph();
        for compress in [false, true] {
            let bytes = g
                .snapshot_bytes(&SnapshotOptions {
                    compress_csr: compress,
                })
                .unwrap();
            let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
            let sections: Vec<SectionInfo> = snap.sections().to_vec();
            for s in sections {
                if s.len == 0 {
                    continue;
                }
                let mut corrupt = bytes.clone();
                corrupt[s.offset as usize] ^= 0x01;
                let e = Snapshot::from_bytes(corrupt).unwrap_err();
                let msg = e.to_string();
                assert!(
                    msg.contains(s.name()),
                    "flip in {} reported as: {msg}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn pending_delta_refuses_to_snapshot() {
        let mut g = sample_graph();
        g.upsert_edge_by_name("Germany", "product", "Audi_TT");
        let e = g.snapshot_bytes(&SnapshotOptions::default()).unwrap_err();
        assert!(e.to_string().contains("delta"), "{e}");
        g.compact();
        g.snapshot_bytes(&SnapshotOptions::default()).unwrap();
    }

    #[test]
    fn valid_checksum_but_inconsistent_content_fails_closed() {
        // Hand-build a snapshot whose triple section references an entity
        // that does not exist: checksums pass, structural decode must not.
        let g = sample_graph();
        let mut w = g.snapshot_writer(&SnapshotOptions::default()).unwrap();
        let bad_triple = {
            let mut out = Vec::new();
            put_u32(&mut out, 999); // subject out of range
            put_u32(&mut out, 0);
            put_u32(&mut out, 0);
            out
        };
        // Rebuild the writer with a poisoned triple section.
        let mut poisoned = SnapshotWriter::new();
        for (kind, payload) in std::mem::take(&mut w.sections) {
            if kind == section_kind::TRIPLES {
                poisoned.add_section(kind, bad_triple.clone());
            } else {
                poisoned.add_section(kind, payload);
            }
        }
        let snap = Snapshot::from_bytes(poisoned.finish()).unwrap();
        let e = KnowledgeGraph::from_snapshot(&snap).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("triples"), "{msg}");
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX / 2, i64::MIN / 2] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut c = SectionReader::new(&buf, "test");
            assert_eq!(unzigzag(c.varint().unwrap()), v);
            assert!(c.done());
        }
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn compressed_snapshot_is_smaller() {
        // Build a chain graph with local neighbours so deltas stay small.
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..200)
            .map(|i| b.add_entity(&format!("n{i}"), &["T"]))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], "next", w[1]);
        }
        let g = b.build();
        let raw = g
            .snapshot_bytes(&SnapshotOptions {
                compress_csr: false,
            })
            .unwrap();
        let compressed = g
            .snapshot_bytes(&SnapshotOptions { compress_csr: true })
            .unwrap();
        assert!(
            compressed.len() < raw.len(),
            "compressed {} !< raw {}",
            compressed.len(),
            raw.len()
        );
    }
}
