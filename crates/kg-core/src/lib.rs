//! # kg-core — knowledge graph storage substrate
//!
//! This crate provides the in-memory knowledge graph that every other crate in
//! the workspace builds on. It corresponds to the *data model* of Definition 1
//! in the paper ("Aggregate Queries on Knowledge Graphs: Fast Approximation
//! with Semantic-aware Sampling", ICDE 2022):
//!
//! * a node is an **entity** with a unique name, one or more **types** and a
//!   set of **numerical attributes** (e.g. `price`, `horsepower`);
//! * an edge carries a **predicate** (e.g. `product`, `assembly`);
//! * the graph is schema-flexible: the same information can be represented by
//!   many structurally different substructures.
//!
//! The main entry points are [`KnowledgeGraph`] (immutable, query-optimised)
//! and [`GraphBuilder`] (mutable construction). Neighbourhood exploration
//! helpers used by the sampling and baseline crates live in [`neighborhood`].
//!
//! ```
//! use kg_core::{GraphBuilder, AttrValue};
//!
//! let mut b = GraphBuilder::new();
//! let germany = b.add_entity("Germany", &["Country"]);
//! let bmw = b.add_entity("BMW_320", &["Automobile"]);
//! b.set_attribute(bmw, "price", 41_500.0);
//! b.add_edge(germany, "product", bmw);
//! let g = b.build();
//! assert_eq!(g.entity_count(), 2);
//! assert_eq!(g.attribute(bmw, g.attr_id("price").unwrap()), Some(AttrValue(41_500.0)));
//! ```

#![warn(missing_docs)]

pub mod attributes;
pub mod builder;
pub mod delta;
pub mod entity;
pub mod error;
pub mod frame;
pub mod graph;
pub mod ids;
pub mod index;
pub mod interner;
pub mod loader;
pub mod neighborhood;
pub mod partition;
pub mod predicate;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod triple;

pub use attributes::{AttrValue, AttributeSet};
pub use builder::GraphBuilder;
pub use delta::{DeltaOp, GraphDelta};
pub use entity::Entity;
pub use error::{KgError, KgResult};
pub use frame::{
    read_frame, write_frame, ByteReader, ByteWriter, Codec, DecodeError, FrameError, FRAME_MAGIC,
    MAX_FRAME_LEN,
};
pub use graph::{Direction, EdgeRef, KnowledgeGraph};
pub use ids::{AttrId, EntityId, PredicateId, TypeId};
pub use index::{NameIndex, TypeIndex};
pub use interner::StringInterner;
pub use loader::{load_tsv, save_tsv};
pub use neighborhood::{
    bounded_nodes, bounded_subgraph, enumerate_paths, enumerate_paths_filtered, enumerate_paths_to,
    BoundedSubgraph, Path,
};
pub use partition::{DegreeBalancedPartitioner, HashPartitioner, Partitioner};
pub use predicate::PredicateVocabulary;
pub use shard::{GraphShard, ShardedGraph, ShardingStats};
pub use snapshot::{SectionInfo, Snapshot, SnapshotOptions, SnapshotWriter, FORMAT_VERSION};
pub use stats::GraphStats;
pub use triple::Triple;
