//! Differential property suite for the mutation overlay (`kg_core::delta`).
//!
//! For random interleaved upsert/delete/compact schedules, a graph mutated
//! through the overlay must be **bitwise indistinguishable** from a graph
//! built from scratch by replaying the same schedule through
//! [`GraphBuilder`] — adjacency (entry order included), live triple list,
//! ids, name/type indexes, and derived statistics. Compaction at arbitrary
//! points must not change any observable either. Self-loops, duplicate
//! parallel edges, tombstoned-then-revived edges, and touched-but-empty
//! nodes all arise from the schedule space and are additionally pinned by
//! directed regression tests.

use kg_core::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;

/// Name universe: wider than any base prefix so schedules create entities
/// both before and after the CSR freeze.
fn entity_name(i: u8) -> String {
    format!("e{}", i % 12)
}

fn predicate_name(i: u8) -> String {
    format!("p{}", i % 4)
}

fn type_name(i: u8) -> String {
    format!("T{}", i % 3)
}

/// One schedule step, decoded from a generated `(code, s, p, o)` tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    InsertEdge(u8, u8, u8),
    DeleteEdge(u8, u8, u8),
    UpsertEntity(u8, u8),
    Compact,
}

fn decode(steps: &[(u8, u8, u8, u8)]) -> Vec<Op> {
    steps
        .iter()
        .map(|&(code, s, p, o)| match code {
            0..=4 => Op::InsertEdge(s, p, o),
            5 | 6 => Op::DeleteEdge(s, p, o),
            7 => Op::UpsertEntity(s, p),
            8 => Op::Compact,
            // Forced self-loop insert, so loops are not rare events.
            _ => Op::InsertEdge(s, p, s),
        })
        .collect()
}

/// Applies one op to the from-scratch reference builder. `Compact` is a
/// physical reorganisation only, so it is a logical no-op here.
fn apply_to_builder(b: &mut GraphBuilder, op: Op) {
    match op {
        Op::InsertEdge(s, p, o) => {
            b.add_edge_by_name(&entity_name(s), &predicate_name(p), &entity_name(o));
        }
        Op::DeleteEdge(s, p, o) => {
            b.remove_edge_by_name(&entity_name(s), &predicate_name(p), &entity_name(o));
        }
        Op::UpsertEntity(s, p) => {
            b.add_entity(&entity_name(s), &[&type_name(p)]);
        }
        Op::Compact => {}
    }
}

/// Applies one op to the live overlay graph.
fn apply_to_graph(g: &mut KnowledgeGraph, op: Op) {
    match op {
        Op::InsertEdge(s, p, o) => {
            g.upsert_edge_by_name(&entity_name(s), &predicate_name(p), &entity_name(o));
        }
        Op::DeleteEdge(s, p, o) => {
            g.delete_edge_by_name(&entity_name(s), &predicate_name(p), &entity_name(o));
        }
        Op::UpsertEntity(s, p) => {
            g.upsert_entity(&entity_name(s), &[&type_name(p)]);
        }
        Op::Compact => g.compact(),
    }
}

/// Asserts every observable of `overlay` matches the from-scratch
/// `reference`, bitwise.
fn assert_equivalent(overlay: &KnowledgeGraph, reference: &KnowledgeGraph) {
    assert_eq!(overlay.entity_count(), reference.entity_count());
    assert_eq!(overlay.edge_count(), reference.edge_count());
    assert_eq!(overlay.predicate_count(), reference.predicate_count());
    assert_eq!(overlay.type_count(), reference.type_count());
    assert_eq!(overlay.live_triples().as_ref(), reference.triples());
    assert_eq!(
        overlay.average_degree().to_bits(),
        reference.average_degree().to_bits(),
        "average_degree must be bitwise identical"
    );
    for id in reference.entity_ids() {
        assert_eq!(
            overlay.neighbors(id),
            reference.neighbors(id),
            "adjacency of entity {id:?} diverged"
        );
        assert_eq!(overlay.degree(id), reference.degree(id));
        assert_eq!(overlay.entity(id).name, reference.entity(id).name);
        assert_eq!(overlay.entity(id).types, reference.entity(id).types);
        assert_eq!(
            overlay.entity_by_name(&reference.entity(id).name),
            Some(id),
            "name index diverged for {:?}",
            reference.entity(id).name
        );
    }
    for (ty, name) in reference.types() {
        assert_eq!(overlay.type_id(name), Some(ty));
        assert_eq!(
            overlay.entities_with_type(ty),
            reference.entities_with_type(ty),
            "type index diverged for type {name:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random schedule, split at a random point: the prefix becomes the
    /// frozen base CSR, the suffix runs through the overlay (with compaction
    /// interleaved wherever the schedule says). At every step boundary the
    /// overlay graph must equal the reference builder's from-scratch build,
    /// and a final forced compaction must change nothing.
    #[test]
    fn overlay_matches_from_scratch_rebuild(
        steps in prop::collection::vec((0u8..10, 0u8..12, 0u8..6, 0u8..12), 0..48),
        split in 0usize..24,
    ) {
        let ops = decode(&steps);
        let split = split.min(ops.len());

        // Both worlds ingest the base prefix identically.
        let mut reference = GraphBuilder::new();
        let mut base = GraphBuilder::new();
        for &op in &ops[..split] {
            apply_to_builder(&mut reference, op);
            apply_to_builder(&mut base, op);
        }
        let mut overlay = base.build();

        // The suffix is live write traffic against the frozen base.
        for &op in &ops[split..] {
            apply_to_builder(&mut reference, op);
            apply_to_graph(&mut overlay, op);
            assert_equivalent(&overlay, &reference.clone().build());
        }

        // Compaction folds the overlay away without observable change.
        overlay.compact();
        assert!(!overlay.has_pending_delta());
        assert_equivalent(&overlay, &reference.build());
    }
}

#[test]
fn touched_but_empty_node_reads_as_isolated() {
    let mut b = GraphBuilder::new();
    b.add_edge_by_name("a", "p0", "b");
    let mut g = b.build();
    let a = g.entity_by_name("a").unwrap();
    let b_id = g.entity_by_name("b").unwrap();
    // Deleting a's only edge leaves a touched node with an empty merged row —
    // it must read exactly like a never-connected entity.
    assert_eq!(g.delete_edge(a, "p0", b_id), 1);
    assert_eq!(g.neighbors(a), &[]);
    assert_eq!(g.degree(a), 0);
    assert_eq!(g.edge_count(), 0);
    g.compact();
    assert_eq!(g.neighbors(a), &[]);
    assert_eq!(g.degree(a), 0);
}

#[test]
fn self_loops_and_duplicates_round_trip_through_overlay_and_compaction() {
    let mut reference = GraphBuilder::new();
    let mut base = GraphBuilder::new();
    for b in [&mut reference, &mut base] {
        b.add_entity("u", &["T0"]);
        b.add_edge_by_name("u", "loop", "u");
    }
    let mut overlay = base.build();

    // Duplicate self-loop plus duplicate parallel edges through the overlay.
    overlay.upsert_edge_by_name("u", "loop", "u");
    reference.add_edge_by_name("u", "loop", "u");
    overlay.upsert_edge_by_name("u", "p0", "v");
    reference.add_edge_by_name("u", "p0", "v");
    overlay.upsert_edge_by_name("u", "p0", "v");
    reference.add_edge_by_name("u", "p0", "v");
    assert_equivalent(&overlay, &reference.clone().build());

    // One tombstone kills both parallel copies; both worlds agree.
    assert_eq!(overlay.delete_edge_by_name("u", "p0", "v"), 2);
    reference.remove_edge_by_name("u", "p0", "v");
    assert_equivalent(&overlay, &reference.clone().build());

    overlay.compact();
    assert_equivalent(&overlay, &reference.build());
}

#[test]
fn entity_upsert_after_freeze_is_immediately_queryable() {
    let mut b = GraphBuilder::new();
    b.add_edge_by_name("a", "p0", "b");
    let mut g = b.build();
    let c = g.upsert_entity("c", &["T0", "T1"]);
    assert_eq!(g.neighbors(c), &[]);
    assert_eq!(g.entity_by_name("c"), Some(c));
    let t0 = g.type_id("T0").unwrap();
    assert_eq!(g.entities_with_type(t0), &[c]);
    // First edge through the new entity wires both endpoints.
    g.upsert_edge_by_name("c", "p0", "a");
    assert_eq!(g.degree(c), 1);
    let a = g.entity_by_name("a").unwrap();
    assert_eq!(g.degree(a), 2);
    g.compact();
    assert_eq!(g.degree(c), 1);
    assert_eq!(g.degree(a), 2);
}
