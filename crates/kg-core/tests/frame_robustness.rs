//! Property tests hardening the length-prefixed frame decoder against
//! hostile or corrupt peers: arbitrary byte soup, truncation at every
//! boundary, and adversarial length prefixes must all yield a structured
//! [`FrameError`] — never a panic, and never an allocation driven by a
//! length the peer merely *declared* rather than sent.

use kg_core::{read_frame, write_frame, Codec, FrameError, FRAME_MAGIC, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::io::Cursor;

/// Builds a well-formed frame for `payload` under `codec`.
fn encode(codec: Codec, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, codec, payload).unwrap();
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the decoder: every outcome is either a
    /// successfully decoded frame (possible when the soup happens to start
    /// with a valid header) or one of the structured error variants.
    #[test]
    fn arbitrary_bytes_decode_to_structured_outcomes(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok((_, payload)) => prop_assert!(payload.len() <= bytes.len()),
            Err(
                FrameError::BadMagic(_)
                | FrameError::UnknownCodec(_)
                | FrameError::Oversized { .. }
                | FrameError::Truncated { .. },
            ) => {}
            Err(FrameError::Io(e)) => {
                prop_assert!(false, "in-memory reads cannot fail with i/o: {e}");
            }
        }
    }

    /// A well-formed frame cut anywhere before its end is always reported
    /// as `Truncated`, and the error's byte accounting is consistent:
    /// fewer bytes arrived than the decoder still expected.
    #[test]
    fn truncation_at_every_boundary_is_structured(
        payload in prop::collection::vec(0u8..=255, 0..256),
        binary in 0u8..2,
        cut_pick in 0usize..1 << 20,
    ) {
        let codec = if binary == 1 { Codec::Binary } else { Codec::Json };
        let wire = encode(codec, &payload);
        let cut = cut_pick % wire.len(); // 0..wire.len(): always short
        match read_frame(&mut Cursor::new(&wire[..cut])) {
            Err(FrameError::Truncated { expected, got }) => {
                prop_assert!(got < expected, "{got} >= {expected}");
            }
            other => prop_assert!(false, "cut at {cut}: expected Truncated, got {other:?}"),
        }
    }

    /// A round trip through write + read is lossless for both codecs.
    #[test]
    fn round_trip_is_lossless(
        payload in prop::collection::vec(0u8..=255, 0..2048),
        binary in 0u8..2,
    ) {
        let codec = if binary == 1 { Codec::Binary } else { Codec::Json };
        let wire = encode(codec, &payload);
        let (got_codec, got_payload) = read_frame(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(got_codec, codec);
        prop_assert_eq!(got_payload, payload);
    }

    /// A hostile length prefix (any value past the cap) is rejected from
    /// the 9 header bytes alone — before any payload allocation — even when
    /// the stream carries no payload at all.
    #[test]
    fn oversized_length_prefix_is_rejected_from_the_header(
        declared in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX,
        codec_byte in 0u8..2,
    ) {
        let mut wire = Vec::from(FRAME_MAGIC);
        wire.push(codec_byte);
        wire.extend_from_slice(&declared.to_le_bytes());
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Oversized { declared: d, max }) => {
                prop_assert_eq!(d, u64::from(declared));
                prop_assert_eq!(max, MAX_FRAME_LEN as u64);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// An in-cap length prefix that overstates the bytes actually sent
    /// yields `Truncated` whose byte accounting tracks received bytes:
    /// the decoder stops at what arrived rather than trusting the header.
    #[test]
    fn overstated_length_cannot_allocate_past_received_bytes(
        sent in prop::collection::vec(0u8..=255, 0..128),
        extra in 1u32..4096,
    ) {
        let declared = sent.len() as u32 + extra;
        let mut wire = Vec::from(FRAME_MAGIC);
        wire.push(Codec::Binary.to_byte());
        wire.extend_from_slice(&declared.to_le_bytes());
        wire.extend_from_slice(&sent);
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Truncated { expected, got }) => {
                prop_assert!(got <= sent.len());
                prop_assert!(expected <= declared as usize);
            }
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }

    /// Garbage in the codec position is always `UnknownCodec` naming the
    /// byte, provided the magic matched and the header is complete.
    #[test]
    fn unknown_codec_byte_is_named(
        codec_byte in 2u8..=u8::MAX,
        len in 0u32..1024,
    ) {
        let mut wire = Vec::from(FRAME_MAGIC);
        wire.push(codec_byte);
        wire.extend_from_slice(&len.to_le_bytes());
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::UnknownCodec(b)) => prop_assert_eq!(b, codec_byte),
            other => prop_assert!(false, "expected UnknownCodec, got {other:?}"),
        }
    }

    /// Any corruption of the four magic bytes is detected as `BadMagic`
    /// echoing exactly what was received. (The 2^-32 case where the random
    /// bytes spell the real magic is skipped rather than assumed away.)
    #[test]
    fn corrupted_magic_is_echoed(
        magic in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
        rest in prop::collection::vec(0u8..=255, 5..64),
    ) {
        let magic = [magic.0, magic.1, magic.2, magic.3];
        if magic != FRAME_MAGIC {
            let mut wire = Vec::from(magic);
            wire.extend_from_slice(&rest);
            match read_frame(&mut Cursor::new(&wire)) {
                Err(FrameError::BadMagic(got)) => prop_assert_eq!(got, magic),
                other => prop_assert!(false, "expected BadMagic, got {other:?}"),
            }
        }
    }
}
