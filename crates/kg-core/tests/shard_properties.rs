//! Property tests for partitioned storage: partitioner determinism, the
//! global↔local id map, cut-edge replication, and the K=1 identity.

use kg_core::{
    DegreeBalancedPartitioner, EntityId, GraphBuilder, HashPartitioner, KnowledgeGraph,
    Partitioner, ShardedGraph,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a deterministic pseudo-random graph from a compact description:
/// `n` entities, edges derived from a seed with a splitmix-style generator.
fn synthetic_graph(n: usize, edges: usize, seed: u64) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let types = ["Car", "Country", "Company"];
    let ids: Vec<EntityId> = (0..n)
        .map(|i| b.add_entity(&format!("e{i}"), &[types[i % types.len()]]))
        .collect();
    let mut x = seed | 1;
    let mut next = || {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let predicates = ["product", "assembly", "country"];
    for e in 0..edges {
        let s = ids[(next() % n as u64) as usize];
        let o = ids[(next() % n as u64) as usize];
        b.add_edge(s, predicates[e % predicates.len()], o);
    }
    for (i, &id) in ids.iter().enumerate() {
        if i % 2 == 0 {
            b.set_attribute(id, "price", 1_000.0 + i as f64);
        }
    }
    b.build()
}

/// Satellite: the degree-balanced partitioner must be deterministic
/// run-to-run, including under degree ties, because shard assignment seeds
/// the per-shard sampling RNG streams.
#[test]
fn degree_balanced_assignment_is_deterministic_under_ties() {
    // 12 entities of identical degree (a 12-cycle): every assignment
    // decision is a tie, resolved by entity id then shard index.
    let mut b = GraphBuilder::new();
    let ids: Vec<EntityId> = (0..12)
        .map(|i| b.add_entity(&format!("v{i}"), &["T"]))
        .collect();
    for i in 0..12 {
        b.add_edge(ids[i], "next", ids[(i + 1) % 12]);
    }
    let g = b.build();
    let first = DegreeBalancedPartitioner.partition(&g, 4);
    for _ in 0..5 {
        assert_eq!(DegreeBalancedPartitioner.partition(&g, 4), first);
    }
    // With all degrees equal, the id tie-break visits entities in id order
    // and the load tie-break round-robins the shards: 0,1,2,3,0,1,2,3,…
    let expected: Vec<u32> = (0..12).map(|i| (i % 4) as u32).collect();
    assert_eq!(first, expected);
}

#[test]
fn partitioners_are_deterministic_on_irregular_graphs() {
    let g = synthetic_graph(60, 150, 0xDEAD_BEEF);
    for p in [
        &HashPartitioner as &dyn Partitioner,
        &DegreeBalancedPartitioner,
    ] {
        let first = p.partition(&g, 7);
        assert_eq!(p.partition(&g, 7), first, "{} not deterministic", p.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of the sharded view, for arbitrary graph shapes
    /// and shard counts.
    #[test]
    fn sharded_view_preserves_the_graph(
        n in 1usize..40,
        edges in 0usize..120,
        seed in 0u64..u64::MAX,
        k in 1usize..6,
    ) {
        let global = Arc::new(synthetic_graph(n, edges, seed));
        let sharded = ShardedGraph::new(Arc::clone(&global), &DegreeBalancedPartitioner, k);
        prop_assert_eq!(sharded.shard_count(), k);

        // Every entity is owned by exactly one shard, and the id map
        // round-trips.
        let mut owned_seen = vec![0usize; global.entity_count()];
        for (s, shard) in sharded.shards().iter().enumerate() {
            for (local_idx, &g) in shard.owned_global_ids().iter().enumerate() {
                owned_seen[g.index()] += 1;
                prop_assert_eq!(sharded.to_local(g), (s, EntityId::from(local_idx)));
            }
        }
        prop_assert!(owned_seen.iter().all(|&c| c == 1));

        // Within a shard, an owned entity's adjacency is the same slice of
        // edges (predicates, directions, neighbors-as-global-ids, order) it
        // has in the global graph — the cut-edge replication invariant.
        for shard in sharded.shards() {
            for (local_idx, &g) in shard.owned_global_ids().iter().enumerate() {
                let local = EntityId::from(local_idx);
                let local_edges = shard.graph().neighbors(local);
                let global_edges = global.neighbors(g);
                prop_assert_eq!(local_edges.len(), global_edges.len());
                for (le, ge) in local_edges.iter().zip(global_edges) {
                    prop_assert_eq!(le.predicate, ge.predicate);
                    prop_assert_eq!(le.direction, ge.direction);
                    prop_assert_eq!(shard.global_id(le.neighbor), ge.neighbor);
                }
                // Entity payload (name, types, attributes) is replicated.
                prop_assert_eq!(
                    &shard.graph().entity(local).name,
                    &global.entity(g).name
                );
            }
        }

        // Vocabularies are shared: ids line up across shards.
        for shard in sharded.shards() {
            prop_assert_eq!(shard.graph().predicate_count(), global.predicate_count());
            prop_assert_eq!(shard.graph().type_count(), global.type_count());
            prop_assert_eq!(shard.graph().attribute_count(), global.attribute_count());
        }

        // Edge accounting: Σ local triples = global triples + cut triples.
        let stats = sharded.stats();
        let local_total: usize = stats.edges.iter().sum();
        prop_assert_eq!(local_total, global.edge_count() + stats.cut_edges);
    }

    /// K = 1 is the identity refactor: the single shard's graph is
    /// structurally identical to the global graph.
    #[test]
    fn single_shard_is_structurally_identical(
        n in 1usize..30,
        edges in 0usize..80,
        seed in 0u64..u64::MAX,
    ) {
        let global = Arc::new(synthetic_graph(n, edges, seed));
        let sharded = ShardedGraph::new(Arc::clone(&global), &DegreeBalancedPartitioner, 1);
        let shard = sharded.shard(0);
        prop_assert_eq!(shard.ghost_count(), 0);
        prop_assert_eq!(shard.cut_edge_count(), 0);
        prop_assert_eq!(shard.graph().entity_count(), global.entity_count());
        prop_assert_eq!(shard.graph().edge_count(), global.edge_count());
        for i in 0..global.entity_count() {
            let id = EntityId::from(i);
            prop_assert_eq!(shard.global_id(id), id);
            prop_assert_eq!(shard.graph().neighbors(id), global.neighbors(id));
        }
        prop_assert_eq!(shard.graph().triples(), global.triples());
    }
}
