//! Property tests for the CSR adjacency construction: for arbitrary triple
//! sets, the flat edge array + offsets must expose exactly the adjacency the
//! straightforward nested-`Vec` construction would (the representation the
//! workspace used before the CSR refactor), entry order included.

use kg_core::{Direction, EdgeRef, EntityId, GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;

/// Reference adjacency: the pre-CSR nested-`Vec` construction, rebuilt from
/// the frozen graph's triple list.
fn reference_adjacency(g: &KnowledgeGraph) -> Vec<Vec<EdgeRef>> {
    let mut adjacency: Vec<Vec<EdgeRef>> = vec![Vec::new(); g.entity_count()];
    for t in g.triples() {
        adjacency[t.subject.index()].push(EdgeRef {
            neighbor: t.object,
            predicate: t.predicate,
            direction: Direction::Outgoing,
        });
        // A self-loop contributes a single adjacency entry.
        if t.subject != t.object {
            adjacency[t.object.index()].push(EdgeRef {
                neighbor: t.subject,
                predicate: t.predicate,
                direction: Direction::Incoming,
            });
        }
    }
    adjacency
}

/// Builds a graph over `entities` isolated nodes plus the given
/// `(subject, predicate, object)` triples (indices taken modulo `entities`).
fn build(entities: usize, triples: &[(usize, usize, usize)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::with_capacity(entities, triples.len());
    let ids: Vec<EntityId> = (0..entities)
        .map(|i| b.add_entity(&format!("e{i}"), &["T"]))
        .collect();
    for &(s, p, o) in triples {
        b.add_edge(ids[s % entities], &format!("p{}", p % 5), ids[o % entities]);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR `neighbors(id)` returns exactly the same edge sequence (hence the
    /// same multiset) as the nested-Vec reference, for every entity.
    #[test]
    fn csr_matches_nested_vec_reference(
        entities in 1usize..40,
        triples in prop::collection::vec((0usize..40, 0usize..5, 0usize..40), 0..160),
    ) {
        let g = build(entities, &triples);
        let reference = reference_adjacency(&g);
        for id in g.entity_ids() {
            let csr = g.neighbors(id);
            let expected = &reference[id.index()];
            prop_assert_eq!(csr.len(), g.degree(id));
            prop_assert_eq!(csr, expected.as_slice());
            // Multiset equality follows from sequence equality; assert it
            // independently of entry order anyway, as the documented contract.
            let mut a: Vec<EdgeRef> = csr.to_vec();
            let mut b = expected.clone();
            let key = |e: &EdgeRef| (e.neighbor.raw(), e.predicate.raw(), e.direction == Direction::Outgoing);
            a.sort_by_key(key);
            b.sort_by_key(key);
            prop_assert_eq!(a, b);
        }
    }

    /// Total CSR entries equal 2·|E| minus the number of self-loops, and the
    /// offsets are a monotone prefix-sum of degrees.
    #[test]
    fn csr_degree_sum_accounts_for_every_entry(
        entities in 1usize..40,
        triples in prop::collection::vec((0usize..40, 0usize..5, 0usize..40), 0..160),
    ) {
        let g = build(entities, &triples);
        let self_loops = g
            .triples()
            .iter()
            .filter(|t| t.subject == t.object)
            .count();
        let degree_sum: usize = g.entity_ids().map(|id| g.degree(id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count() - self_loops);
    }
}

#[test]
fn empty_graph_builds_and_has_no_adjacency() {
    let g = GraphBuilder::new().build();
    assert_eq!(g.entity_count(), 0);
    assert_eq!(g.edge_count(), 0);
    assert_eq!(g.average_degree(), 0.0);
}

#[test]
fn isolated_entities_have_empty_neighbor_slices() {
    let mut b = GraphBuilder::new();
    let lone = b.add_entity("lone", &["T"]);
    let u = b.add_entity("u", &["T"]);
    let v = b.add_entity("v", &["T"]);
    b.add_edge(u, "p", v);
    let also_lone = b.add_entity("also_lone", &[]);
    let g = b.build();
    for id in [lone, also_lone] {
        assert_eq!(g.degree(id), 0);
        assert!(g.neighbors(id).is_empty());
    }
    assert_eq!(g.degree(u), 1);
    assert_eq!(g.neighbors(u)[0].neighbor, v);
    assert_eq!(g.neighbors(u)[0].direction, Direction::Outgoing);
    assert_eq!(g.neighbors(v)[0].direction, Direction::Incoming);
}
